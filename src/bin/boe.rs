//! `boe` — command-line front-end to the enrichment workflow.
//!
//! ```text
//! boe extract  <corpus.txt> [--lang en|fr|es] [--measure NAME] [--top N]
//! boe senses   <corpus.txt> <term> [--lang ..]
//! boe link     <corpus.txt> <ontology.boe> <term> [--top N]
//! boe pipeline <corpus.txt> <ontology.boe> [--top N] [--strict]
//!              [--deadline-ms N] [--stage-deadline-ms N] [--max-alloc-mb N]
//! boe demo
//! ```
//!
//! Corpus files are plain text; blank lines separate documents. Ontology
//! files use the `boe-ontology` text format (`! name lang` header, then
//! `C`/`S`/`L` records — see `boe_ontology::io`).
//!
//! Exit codes are stable per error class: 0 success, 1 I/O error,
//! 2 usage error, 3 invalid/empty input, 4 language mismatch, 5 unknown
//! term, 6 stage failure, 7 degraded run under `--strict`, 8 deadline
//! exceeded, 9 cancelled, 10 memory budget exhausted. Warnings and
//! degradations always go to stderr; a budget-truncated report is still
//! printed before the governed exit code is returned.

use bio_onto_enrich::corpus::corpus::{Corpus, CorpusBuilder};
use bio_onto_enrich::ontology::{io as onto_io, Ontology};
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::error::EnrichError;
use bio_onto_enrich::workflow::governor::{self, BudgetConfig, TripKind};
use bio_onto_enrich::workflow::linkage::{LinkerConfig, SemanticLinker};
use bio_onto_enrich::workflow::senses::{SenseInducer, SenseInducerConfig};
use bio_onto_enrich::workflow::termex::candidates::CandidateOptions;
use bio_onto_enrich::workflow::termex::{TermExtractor, TermMeasure};
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt;
use std::process::ExitCode;

/// A counting allocator shim: delegates every call to [`System`] and
/// feeds byte deltas into the workflow governor's approximate allocation
/// accounting, enabling `--max-alloc-mb`. Library crates forbid `unsafe`,
/// so the shim lives here in the binary.
struct CountingAlloc;

// SAFETY: all allocation is delegated verbatim to `System`; the shim
// only adds relaxed atomic counter updates around it.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            governor::mem::note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        governor::mem::note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            governor::mem::note_dealloc(layout.size());
            governor::mem::note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() -> ExitCode {
    governor::mem::mark_tracking_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("boe: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "usage:
  boe extract  <corpus.txt> [--lang en|fr|es] [--measure NAME] [--top N]
  boe senses   <corpus.txt> <term> [--lang en|fr|es]
  boe link     <corpus.txt> <ontology.boe> <term> [--top N]
  boe pipeline <corpus.txt> <ontology.boe> [--top N] [--strict]
               [--deadline-ms N] [--stage-deadline-ms N] [--max-alloc-mb N]
  boe demo

measures: c-value tf-idf okapi f-tfidf-c f-ocapi lidf-value tergraph

exit codes: 0 ok · 1 i/o · 2 usage · 3 invalid input · 4 language
mismatch · 5 unknown term · 6 stage failure · 7 degraded (--strict) ·
8 deadline exceeded · 9 cancelled · 10 memory budget exhausted";

/// A CLI failure, mapped onto a stable exit code.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown subcommand/flag, missing arguments.
    Usage(String),
    /// The OS said no: unreadable files and similar.
    Io(String),
    /// A typed workflow error.
    Enrich(EnrichError),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 1,
            CliError::Enrich(e) => e.exit_code(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) => f.write_str(m),
            CliError::Enrich(e) => write!(f, "{e}"),
        }
    }
}

impl From<EnrichError> for CliError {
    fn from(e: EnrichError) -> Self {
        CliError::Enrich(e)
    }
}

/// The flags one subcommand accepts.
struct FlagSpec {
    /// Flags that consume the next argument as a value.
    valued: &'static [&'static str],
    /// Boolean switches.
    boolean: &'static [&'static str],
}

impl FlagSpec {
    fn describe(&self) -> String {
        let all: Vec<String> = self
            .valued
            .iter()
            .chain(self.boolean)
            .map(|n| format!("--{n}"))
            .collect();
        if all.is_empty() {
            "this subcommand takes no flags".to_owned()
        } else {
            format!("valid flags: {}", all.join(", "))
        }
    }
}

/// Parsed argv of one subcommand: positional arguments plus recognized
/// flags. Unknown or misspelled flags are rejected against the spec.
struct Flags {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], spec: &FlagSpec) -> Result<Flags, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if spec.boolean.contains(&name) {
                    switches.push(name.to_owned());
                } else if spec.valued.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                    flags.push((name.to_owned(), value.clone()));
                } else {
                    return Err(CliError::Usage(format!(
                        "unknown flag --{name} ({})",
                        spec.describe()
                    )));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags {
            positional,
            flags,
            switches,
        })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn lang(&self) -> Result<Language, CliError> {
        self.get("lang")
            .unwrap_or("en")
            .parse()
            .map_err(|e| CliError::Usage(format!("{e}")))
    }

    fn top(&self, default: usize) -> Result<usize, CliError> {
        match self.get("top") {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --top value {v:?}"))),
        }
    }

    fn budget_u64(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("bad --{name} value {v:?}"))),
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    match cmd.as_str() {
        "extract" => cmd_extract(&Flags::parse(
            rest,
            &FlagSpec {
                valued: &["lang", "measure", "top"],
                boolean: &[],
            },
        )?),
        "senses" => cmd_senses(&Flags::parse(
            rest,
            &FlagSpec {
                valued: &["lang"],
                boolean: &[],
            },
        )?),
        "link" => cmd_link(&Flags::parse(
            rest,
            &FlagSpec {
                valued: &["top"],
                boolean: &[],
            },
        )?),
        "pipeline" => cmd_pipeline(&Flags::parse(
            rest,
            &FlagSpec {
                valued: &["top", "deadline-ms", "stage-deadline-ms", "max-alloc-mb"],
                boolean: &["strict"],
            },
        )?),
        "demo" => {
            Flags::parse(
                rest,
                &FlagSpec {
                    valued: &[],
                    boolean: &[],
                },
            )?;
            cmd_demo()
        }
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

fn load_corpus(path: &str, lang: Language) -> Result<Corpus, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path:?}: {e}")))?;
    let mut builder = CorpusBuilder::new(lang);
    // Batch ingestion: tokenize + tag every document in parallel, then
    // intern serially in order — same corpus as a per-document loop.
    let docs: Vec<&str> = text
        .split("\n\n")
        .filter(|d| !d.trim().is_empty())
        .collect();
    builder.add_texts(&docs);
    if builder.is_empty() {
        return Err(EnrichError::InvalidInput(format!("{path:?} contains no documents")).into());
    }
    Ok(builder.build())
}

fn load_ontology(path: &str) -> Result<Ontology, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path:?}: {e}")))?;
    onto_io::from_str(&text)
        .map_err(|e| EnrichError::InvalidInput(format!("cannot parse {path:?}: {e}")).into())
}

fn parse_measure(name: &str) -> Result<TermMeasure, CliError> {
    TermMeasure::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| CliError::Usage(format!("unknown measure {name:?}")))
}

fn cmd_extract(flags: &Flags) -> Result<(), CliError> {
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "extract needs exactly one corpus file".into(),
        ));
    };
    let lang = flags.lang()?;
    let measure = parse_measure(flags.get("measure").unwrap_or("lidf-value"))?;
    let top = flags.top(20)?;
    let corpus = load_corpus(path, lang)?;
    let extractor = TermExtractor::new(&corpus, CandidateOptions::default());
    println!(
        "{} candidates from {} documents; top {top} by {measure}:",
        extractor.candidates().len(),
        corpus.len()
    );
    for (i, t) in extractor.top(&corpus, measure, top).iter().enumerate() {
        println!("{:>3}. {:<32} {:.4}", i + 1, t.surface, t.score);
    }
    Ok(())
}

fn cmd_senses(flags: &Flags) -> Result<(), CliError> {
    let [path, term] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "senses needs a corpus file and a term".into(),
        ));
    };
    let corpus = load_corpus(path, flags.lang()?)?;
    let ids = corpus
        .phrase_ids(term)
        .ok_or_else(|| EnrichError::UnknownTerm(term.clone()))?;
    let inducer = SenseInducer::new(&corpus, SenseInducerConfig::default());
    let senses = inducer.induce(&ids, true);
    println!("term {term:?}: {} sense(s)", senses.k);
    for concept in &senses.concepts {
        let labels: Vec<&str> = concept
            .features
            .iter()
            .filter_map(|&(d, _)| inducer.feature_label(d))
            .take(8)
            .collect();
        println!(
            "  sense {} ({} contexts): {}",
            concept.cluster,
            concept.support,
            labels.join(", ")
        );
    }
    Ok(())
}

fn cmd_link(flags: &Flags) -> Result<(), CliError> {
    let [corpus_path, onto_path, term] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "link needs a corpus file, an ontology file and a term".into(),
        ));
    };
    let ontology = load_ontology(onto_path)?;
    let corpus = load_corpus(corpus_path, ontology.language())?;
    if corpus.phrase_ids(term).is_none() {
        return Err(EnrichError::UnknownTerm(term.clone()).into());
    }
    let top = flags.top(10)?;
    let linker = SemanticLinker::new(
        &corpus,
        &ontology,
        LinkerConfig {
            top_n: top,
            ..Default::default()
        },
    );
    let props = linker.propose(term);
    if props.is_empty() {
        println!("no propositions — {term:?} has no ontology neighbourhood in this corpus");
        return Ok(());
    }
    println!("where to add {term:?}:");
    for (i, p) in props.iter().enumerate() {
        println!(
            "{:>3}. {:<32} cosine {:.4}  via {}",
            i + 1,
            p.term,
            p.cosine,
            p.origin.name()
        );
    }
    Ok(())
}

fn cmd_pipeline(flags: &Flags) -> Result<(), CliError> {
    let [corpus_path, onto_path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(
            "pipeline needs a corpus file and an ontology file".into(),
        ));
    };
    let ontology = load_ontology(onto_path)?;
    let corpus = load_corpus(corpus_path, ontology.language())?;
    let pipeline = EnrichmentPipeline::new(PipelineConfig {
        top_terms: flags.top(50)?,
        budget: BudgetConfig {
            deadline_ms: flags.budget_u64("deadline-ms")?,
            stage_deadline_ms: flags.budget_u64("stage-deadline-ms")?,
            max_alloc_mb: flags.budget_u64("max-alloc-mb")?,
        },
        ..Default::default()
    });
    let report = pipeline.run(&corpus, &ontology)?;
    for w in &report.diagnostics.warnings {
        eprintln!("boe: warning: {w}");
    }
    for d in &report.diagnostics.degraded {
        eprintln!(
            "boe: warning: {:?} degraded at {}: {}",
            d.term, d.stage, d.reason
        );
    }
    for t in &report.diagnostics.trips {
        eprintln!(
            "boe: budget trip: {} during {} — {}",
            t.kind, t.stage, t.detail
        );
    }
    print!("{report}");
    // A hard budget trip produced a truncated report; surface it as the
    // matching governed exit code. Takes precedence over --strict.
    if let Some(trip) = report.diagnostics.hard_trip() {
        let err = match trip.kind {
            TripKind::Deadline => Some(EnrichError::DeadlineExceeded {
                elapsed_ms: trip.measured,
                budget_ms: trip.limit,
            }),
            TripKind::Cancelled => Some(EnrichError::Cancelled),
            TripKind::AllocBudget => Some(EnrichError::BudgetExhausted {
                allocated_mb: trip.measured,
                budget_mb: trip.limit,
            }),
            TripKind::StageDeadline => None,
        };
        if let Some(e) = err {
            return Err(e.into());
        }
    }
    if flags.has("strict") && report.is_degraded() {
        return Err(EnrichError::Degraded {
            warnings: report.diagnostics.warning_count(),
        }
        .into());
    }
    Ok(())
}

fn cmd_demo() -> Result<(), CliError> {
    use bio_onto_enrich::eval::exp_linkage_case;
    use bio_onto_enrich::eval::world::{World, WorldConfig};
    let world = World::generate(&WorldConfig {
        n_concepts: 100,
        n_holdout: 8,
        abstracts_per_concept: 5,
        ..Default::default()
    });
    println!(
        "generated a {}-concept MeSH-like ontology and a {}-abstract corpus;",
        world.full_ontology.len(),
        world.corpus.len()
    );
    println!("re-placing held-out term {:?}:\n", world.holdout[0].surface);
    let case = exp_linkage_case::run(&world, 0, 150);
    println!("{}", exp_linkage_case::render(&case));
    Ok(())
}
