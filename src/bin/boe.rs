//! `boe` — command-line front-end to the enrichment workflow.
//!
//! ```text
//! boe extract  <corpus.txt> [--lang en|fr|es] [--measure NAME] [--top N]
//! boe senses   <corpus.txt> <term> [--lang ..]
//! boe link     <corpus.txt> <ontology.boe> <term> [--top N]
//! boe pipeline <corpus.txt> <ontology.boe> [--top N]
//! boe demo
//! ```
//!
//! Corpus files are plain text; blank lines separate documents. Ontology
//! files use the `boe-ontology` text format (`! name lang` header, then
//! `C`/`S`/`L` records — see `boe_ontology::io`).

use bio_onto_enrich::corpus::corpus::{Corpus, CorpusBuilder};
use bio_onto_enrich::ontology::{io as onto_io, Ontology};
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::linkage::{LinkerConfig, SemanticLinker};
use bio_onto_enrich::workflow::senses::{SenseInducer, SenseInducerConfig};
use bio_onto_enrich::workflow::termex::candidates::CandidateOptions;
use bio_onto_enrich::workflow::termex::{TermExtractor, TermMeasure};
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("boe: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  boe extract  <corpus.txt> [--lang en|fr|es] [--measure NAME] [--top N]
  boe senses   <corpus.txt> <term> [--lang en|fr|es]
  boe link     <corpus.txt> <ontology.boe> <term> [--top N]
  boe pipeline <corpus.txt> <ontology.boe> [--top N]
  boe demo

measures: c-value tf-idf okapi f-tfidf-c f-ocapi lidf-value tergraph";

/// Minimal flag parser: returns (positional, flag lookup).
struct Flags {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_owned(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn lang(&self) -> Result<Language, String> {
        self.get("lang")
            .unwrap_or("en")
            .parse()
            .map_err(|e| format!("{e}"))
    }

    fn top(&self, default: usize) -> Result<usize, String> {
        match self.get("top") {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --top value {v:?}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "extract" => cmd_extract(&flags),
        "senses" => cmd_senses(&flags),
        "link" => cmd_link(&flags),
        "pipeline" => cmd_pipeline(&flags),
        "demo" => cmd_demo(),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load_corpus(path: &str, lang: Language) -> Result<Corpus, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut builder = CorpusBuilder::new(lang);
    for doc in text.split("\n\n").filter(|d| !d.trim().is_empty()) {
        builder.add_text(doc);
    }
    if builder.is_empty() {
        return Err(format!("{path:?} contains no documents"));
    }
    Ok(builder.build())
}

fn load_ontology(path: &str) -> Result<Ontology, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    onto_io::from_str(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))
}

fn parse_measure(name: &str) -> Result<TermMeasure, String> {
    TermMeasure::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| format!("unknown measure {name:?}"))
}

fn cmd_extract(flags: &Flags) -> Result<(), String> {
    let [path] = flags.positional.as_slice() else {
        return Err("extract needs exactly one corpus file".into());
    };
    let lang = flags.lang()?;
    let measure = parse_measure(flags.get("measure").unwrap_or("lidf-value"))?;
    let top = flags.top(20)?;
    let corpus = load_corpus(path, lang)?;
    let extractor = TermExtractor::new(&corpus, CandidateOptions::default());
    println!(
        "{} candidates from {} documents; top {top} by {measure}:",
        extractor.candidates().len(),
        corpus.len()
    );
    for (i, t) in extractor.top(&corpus, measure, top).iter().enumerate() {
        println!("{:>3}. {:<32} {:.4}", i + 1, t.surface, t.score);
    }
    Ok(())
}

fn cmd_senses(flags: &Flags) -> Result<(), String> {
    let [path, term] = flags.positional.as_slice() else {
        return Err("senses needs a corpus file and a term".into());
    };
    let corpus = load_corpus(path, flags.lang()?)?;
    let ids = corpus
        .phrase_ids(term)
        .ok_or_else(|| format!("term {term:?} does not occur in the corpus"))?;
    let inducer = SenseInducer::new(&corpus, SenseInducerConfig::default());
    let senses = inducer.induce(&ids, true);
    println!("term {term:?}: {} sense(s)", senses.k);
    for concept in &senses.concepts {
        let labels: Vec<&str> = concept
            .features
            .iter()
            .filter_map(|&(d, _)| inducer.feature_label(d))
            .take(8)
            .collect();
        println!(
            "  sense {} ({} contexts): {}",
            concept.cluster,
            concept.support,
            labels.join(", ")
        );
    }
    Ok(())
}

fn cmd_link(flags: &Flags) -> Result<(), String> {
    let [corpus_path, onto_path, term] = flags.positional.as_slice() else {
        return Err("link needs a corpus file, an ontology file and a term".into());
    };
    let ontology = load_ontology(onto_path)?;
    let corpus = load_corpus(corpus_path, ontology.language())?;
    let top = flags.top(10)?;
    let linker = SemanticLinker::new(
        &corpus,
        &ontology,
        LinkerConfig {
            top_n: top,
            ..Default::default()
        },
    );
    let props = linker.propose(term);
    if props.is_empty() {
        println!("no propositions — {term:?} has no ontology neighbourhood in this corpus");
        return Ok(());
    }
    println!("where to add {term:?}:");
    for (i, p) in props.iter().enumerate() {
        println!(
            "{:>3}. {:<32} cosine {:.4}  via {}",
            i + 1,
            p.term,
            p.cosine,
            p.origin.name()
        );
    }
    Ok(())
}

fn cmd_pipeline(flags: &Flags) -> Result<(), String> {
    let [corpus_path, onto_path] = flags.positional.as_slice() else {
        return Err("pipeline needs a corpus file and an ontology file".into());
    };
    let ontology = load_ontology(onto_path)?;
    let corpus = load_corpus(corpus_path, ontology.language())?;
    let pipeline = EnrichmentPipeline::new(PipelineConfig {
        top_terms: flags.top(50)?,
        ..Default::default()
    });
    let report = pipeline.run(&corpus, &ontology);
    print!("{report}");
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    use bio_onto_enrich::eval::exp_linkage_case;
    use bio_onto_enrich::eval::world::{World, WorldConfig};
    let world = World::generate(&WorldConfig {
        n_concepts: 100,
        n_holdout: 8,
        abstracts_per_concept: 5,
        ..Default::default()
    });
    println!(
        "generated a {}-concept MeSH-like ontology and a {}-abstract corpus;",
        world.full_ontology.len(),
        world.corpus.len()
    );
    println!("re-placing held-out term {:?}:\n", world.holdout[0].surface);
    let case = exp_linkage_case::run(&world, 0, 150);
    println!("{}", exp_linkage_case::render(&case));
    Ok(())
}
