//! # bio-onto-enrich
//!
//! Facade crate for the EDBT-2016 "A Way to Automatically Enrich Biomedical
//! Ontologies" reproduction. Re-exports the public API of every workspace
//! crate under stable module names:
//!
//! ```
//! use bio_onto_enrich::textkit::Language;
//! let tk = bio_onto_enrich::textkit::Tokenizer::new(Language::English);
//! assert_eq!(tk.tokenize("corneal injuries").len(), 2);
//! ```
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-experiment index.

#![forbid(unsafe_code)]

pub use boe_chaos as chaos;
pub use boe_cluster as cluster;
pub use boe_core as workflow;
pub use boe_corpus as corpus;
pub use boe_eval as eval;
pub use boe_graph as graph;
pub use boe_ml as ml;
pub use boe_ontology as ontology;
pub use boe_par as par;
pub use boe_textkit as textkit;
