//! Randomized serial-vs-parallel Step I equality: for synthetic raw
//! corpora in all three supported languages, the batch ingestion path
//! ([`CorpusBuilder::add_texts`]) and the parallel extraction kernels
//! must reproduce the serial reference **byte for byte** — same interned
//! vocabulary (ids and order), same documents, same candidate set, same
//! co-occurrence graph, same TeRGraph score bits — at 1 and 8 threads.
//!
//! One `#[test]` because [`boe_par::set_threads`] is process-global and
//! the harness runs `#[test]`s of one binary concurrently.

use bio_onto_enrich::corpus::corpus::{Corpus, CorpusBuilder};
use bio_onto_enrich::par as boe_par;
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::termex::candidates::CandidateOptions;
use bio_onto_enrich::workflow::termex::{
    extract_candidates, extract_candidates_serial, tergraph_scores, tergraph_scores_serial,
    term_cooccurrence_graph, term_cooccurrence_graph_serial,
};
use boe_rng::StdRng;

/// Word pools with the orthography that stresses the tokenizer: accents,
/// elisions, hyphens, digits. Repetition is deliberate — candidates need
/// `min_freq >= 2` to survive, so a small pool yields a dense inventory.
fn pool(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::English => &[
            "corneal",
            "injury",
            "retinal",
            "degeneration",
            "gene-expression",
            "covid-19",
            "epithelium",
            "chronic",
            "disease",
            "biopsy",
            "the",
            "of",
            "in",
            "severe",
            "lesion",
        ],
        Language::French => &[
            "l'épithélium",
            "cornée",
            "maladie",
            "dégénérescence",
            "l'œil",
            "anti-inflammatoire",
            "chronique",
            "lésion",
            "sévère",
            "d'une",
            "la",
            "de",
            "et",
            "greffe",
            "rétine",
        ],
        Language::Spanish => &[
            "córnea",
            "enfermedad",
            "inflamación",
            "señal",
            "crónica",
            "lesión",
            "degeneración",
            "epitelio",
            "niño",
            "año",
            "la",
            "de",
            "en",
            "grave",
            "biopsia",
        ],
    }
}

/// A synthetic raw document: 1–5 sentences of 3–12 pooled words with
/// commas sprinkled in and varied terminators.
fn synth_doc(rng: &mut StdRng, words: &[&str]) -> String {
    let n_sentences = rng.gen_range(1..=5usize);
    let mut doc = String::new();
    for s in 0..n_sentences {
        if s > 0 {
            doc.push(' ');
        }
        let n_words = rng.gen_range(3..=12usize);
        for w in 0..n_words {
            if w > 0 {
                doc.push(if rng.gen_bool(0.1) { ',' } else { ' ' });
                if doc.ends_with(',') {
                    doc.push(' ');
                }
            }
            doc.push_str(words[rng.gen_range(0..words.len())]);
        }
        doc.push(match rng.gen_range(0..4u32) {
            0 => '?',
            1 => '!',
            _ => '.',
        });
    }
    doc
}

fn ingest_serial(lang: Language, texts: &[String]) -> Corpus {
    let mut b = CorpusBuilder::new(lang);
    for t in texts {
        b.add_text(t);
    }
    b.build()
}

fn ingest_batch(lang: Language, texts: &[String]) -> Corpus {
    let mut b = CorpusBuilder::new(lang);
    b.add_texts(texts);
    b.build()
}

/// Byte-level corpus equality: vocabulary (same ids in the same order,
/// same surfaces, same stop flags) and documents (sentence token ids).
fn assert_corpora_identical(a: &Corpus, b: &Corpus, ctx: &str) {
    let va: Vec<_> = a.vocab().iter().collect();
    let vb: Vec<_> = b.vocab().iter().collect();
    assert_eq!(va, vb, "{ctx}: vocabulary diverged");
    for (id, _) in va {
        assert_eq!(a.is_stopword(id), b.is_stopword(id), "{ctx}: stop flag");
    }
    assert_eq!(a.docs(), b.docs(), "{ctx}: documents diverged");
}

#[test]
fn randomized_step1_is_bit_identical_across_paths_and_threads() {
    let mut rng = StdRng::seed_from_u64(0x57E9_1EAF);
    for lang in [Language::English, Language::French, Language::Spanish] {
        let words = pool(lang);
        let texts: Vec<String> = (0..40).map(|_| synth_doc(&mut rng, words)).collect();

        // Ingestion: serial add_text loop is the reference.
        boe_par::set_threads(Some(1));
        let reference = ingest_serial(lang, &texts);
        let batch_1t = ingest_batch(lang, &texts);
        boe_par::set_threads(Some(8));
        let batch_8t = ingest_batch(lang, &texts);
        assert_corpora_identical(&reference, &batch_1t, &format!("{lang:?} 1t"));
        assert_corpora_identical(&reference, &batch_8t, &format!("{lang:?} 8t"));

        // Extraction: serial kernel is the reference; the parallel kernel
        // must match it at both thread counts, byte for byte.
        let opts = CandidateOptions::default();
        boe_par::set_threads(Some(1));
        let set_ref = extract_candidates_serial(&reference, opts);
        let set_1t = extract_candidates(&reference, opts);
        boe_par::set_threads(Some(8));
        let set_8t = extract_candidates(&reference, opts);
        assert_eq!(set_ref.terms, set_1t.terms, "{lang:?}: candidates 1t");
        assert_eq!(set_ref.terms, set_8t.terms, "{lang:?}: candidates 8t");
        assert!(
            !set_ref.terms.is_empty(),
            "{lang:?}: vacuous corpus — no candidates extracted"
        );

        // Graph + TeRGraph scores.
        boe_par::set_threads(Some(1));
        let g_ref = term_cooccurrence_graph_serial(&reference, &set_ref);
        let s_ref: Vec<u64> = tergraph_scores_serial(&g_ref)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for threads in [1usize, 8] {
            boe_par::set_threads(Some(threads));
            let g = term_cooccurrence_graph(&reference, &set_ref);
            assert_eq!(g.node_count(), g_ref.node_count(), "{lang:?} {threads}t");
            let ea: Vec<_> = g_ref.edges().collect();
            let eb: Vec<_> = g.edges().collect();
            assert_eq!(ea, eb, "{lang:?}: graph edges {threads}t");
            let s: Vec<u64> = tergraph_scores(&g).iter().map(|v| v.to_bits()).collect();
            assert_eq!(s_ref, s, "{lang:?}: tergraph score bits {threads}t");
        }
    }
    boe_par::set_threads(None);
}
