//! Integration: synthetic ontology generation → text serialization →
//! reload → enrichment edits, across `boe-ontology` and `boe-textkit`.

use bio_onto_enrich::ontology::edit::{apply, EnrichmentOp};
use bio_onto_enrich::ontology::io;
use bio_onto_enrich::ontology::polysemy::PolysemyStats;
use bio_onto_enrich::ontology::synth::mesh::{MeshConfig, MeshGenerator};
use bio_onto_enrich::ontology::{query, ConceptId};
use bio_onto_enrich::textkit::Language;

#[test]
fn generated_mesh_round_trips_through_text_format() {
    for lang in Language::ALL {
        let (onto, _) = MeshGenerator::new(
            lang,
            MeshConfig {
                n_concepts: 120,
                seed: 5,
                ..Default::default()
            },
        )
        .generate();
        let text = io::to_string(&onto);
        let reloaded = io::from_str(&text).expect("parse back");
        assert_eq!(reloaded.len(), onto.len(), "{lang}");
        assert_eq!(reloaded.language(), lang);
        for (a, b) in onto.concepts().iter().zip(reloaded.concepts()) {
            assert_eq!(a.preferred, b.preferred);
            assert_eq!(a.synonyms, b.synonyms);
            assert_eq!(a.parents, b.parents);
        }
        // Statistics identical after the round trip.
        assert_eq!(
            PolysemyStats::compute(&onto),
            PolysemyStats::compute(&reloaded)
        );
    }
}

#[test]
fn edits_survive_serialization() {
    let (onto, _) = MeshGenerator::new(
        Language::English,
        MeshConfig {
            n_concepts: 40,
            seed: 8,
            ..Default::default()
        },
    )
    .generate();
    let leaf = *onto.leaves().first().expect("leaves exist");
    let (enriched, log) = apply(
        &onto,
        &[
            EnrichmentOp::AddSynonym {
                concept: leaf,
                term: "brand new synonym".into(),
            },
            EnrichmentOp::AddChild {
                parent: leaf,
                preferred: "brand new child".into(),
                synonyms: vec!["brand new child variant".into()],
            },
        ],
    )
    .expect("edits apply");
    assert_eq!(log.len(), 2);
    let text = io::to_string(&enriched);
    let reloaded = io::from_str(&text).expect("parse back");
    assert!(reloaded.contains_term("brand new synonym"));
    assert!(reloaded.contains_term("brand new child variant"));
    let child = reloaded.concepts_of_term("brand new child")[0];
    assert_eq!(query::fathers(&reloaded, child), &[leaf]);
}

#[test]
fn hierarchy_queries_are_consistent_after_reload() {
    let (onto, _) = MeshGenerator::new(
        Language::English,
        MeshConfig {
            n_concepts: 100,
            seed: 13,
            ..Default::default()
        },
    )
    .generate();
    let reloaded = io::from_str(&io::to_string(&onto)).expect("parse");
    for i in 0..onto.len() {
        let c = ConceptId(i as u32);
        assert_eq!(
            query::ancestors(&onto, c),
            query::ancestors(&reloaded, c),
            "ancestors of {c}"
        );
        assert_eq!(query::siblings(&onto, c), query::siblings(&reloaded, c));
    }
}
