//! Integration: drive the `boe` CLI binary end to end through its real
//! argv interface (compiled binary via `CARGO_BIN_EXE_boe`).

use std::io::Write;
use std::process::Command;

fn boe(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_boe"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("boe-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const CORPUS: &str = "Corneal injuries damage the epithelium stroma tissue. \
Corneal injuries resemble corneal diseases of the epithelium.\n\
\n\
Corneal diseases affect the epithelium stroma tissue. \
Corneal injuries heal in the epithelium stroma tissue.\n\
\n\
Eye diseases involve the retina nerve. Corneal diseases worsen.\n";

const ONTOLOGY: &str = "! demo en\nC 0 eye diseases\nC 1 corneal diseases\nL 1 0\n";

#[test]
fn extract_lists_ranked_terms() {
    let corpus = write_temp("c1.txt", CORPUS);
    let out = boe(&["extract", corpus.to_str().expect("utf8"), "--top", "5"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("corneal injuries"), "{stdout}");
    assert!(stdout.contains("top 5 by lidf-value"), "{stdout}");
}

#[test]
fn link_proposes_ontology_positions() {
    let corpus = write_temp("c2.txt", CORPUS);
    let onto = write_temp("o2.boe", ONTOLOGY);
    let out = boe(&[
        "link",
        corpus.to_str().expect("utf8"),
        onto.to_str().expect("utf8"),
        "corneal injuries",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("corneal diseases"), "{stdout}");
    assert!(stdout.contains("cosine"), "{stdout}");
}

#[test]
fn pipeline_prints_a_report() {
    let corpus = write_temp("c3.txt", CORPUS);
    let onto = write_temp("o3.boe", ONTOLOGY);
    let out = boe(&[
        "pipeline",
        corpus.to_str().expect("utf8"),
        onto.to_str().expect("utf8"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("enrichment report"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let out = boe(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = boe(&[]);
    assert!(!out.status.success());

    let out = boe(&["extract", "/nonexistent/file.txt"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_flag_is_rejected_listing_valid_flags() {
    let corpus = write_temp("c5.txt", CORPUS);
    let out = boe(&["extract", corpus.to_str().expect("utf8"), "--topp", "5"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --topp"), "{stderr}");
    assert!(stderr.contains("--top"), "must list valid flags: {stderr}");
    assert!(stderr.contains("--measure"), "{stderr}");
}

#[test]
fn exit_codes_distinguish_error_classes() {
    // Usage error: 2.
    assert_eq!(boe(&["frobnicate"]).status.code(), Some(2));
    // I/O error: 1.
    let out = boe(&["extract", "/nonexistent/file.txt"]);
    assert_eq!(out.status.code(), Some(1));
    // Invalid input (no documents): 3.
    let empty = write_temp("empty.txt", "\n\n\n");
    let out = boe(&["extract", empty.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(3));
    // Unknown term: 5.
    let corpus = write_temp("c6.txt", CORPUS);
    let out = boe(&["senses", corpus.to_str().expect("utf8"), "zyzzyva"]);
    assert_eq!(out.status.code(), Some(5));
    assert!(String::from_utf8_lossy(&out.stderr).contains("zyzzyva"));
}

#[test]
fn strict_mode_promotes_warnings_to_errors() {
    // A single-document corpus triggers a validation warning; --strict
    // turns the degraded run into exit code 7.
    let one_doc = "Corneal injuries damage the epithelium stroma tissue. \
                   Corneal diseases affect the epithelium stroma tissue.\n";
    let corpus = write_temp("c7.txt", one_doc);
    let onto = write_temp("o7.boe", ONTOLOGY);
    let c = corpus.to_str().expect("utf8");
    let o = onto.to_str().expect("utf8");

    let lenient = boe(&["pipeline", c, o]);
    assert!(lenient.status.success(), "lenient run must pass");
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(
        stderr.contains("warning"),
        "warnings go to stderr: {stderr}"
    );

    let strict = boe(&["pipeline", c, o, "--strict"]);
    assert_eq!(strict.status.code(), Some(7), "degraded under --strict");
    assert!(String::from_utf8_lossy(&strict.stderr).contains("strict"));
}

#[test]
fn zero_deadline_exits_8_after_printing_the_truncated_report() {
    let corpus = write_temp("c8.txt", CORPUS);
    let onto = write_temp("o8.boe", ONTOLOGY);
    let out = boe(&[
        "pipeline",
        corpus.to_str().expect("utf8"),
        onto.to_str().expect("utf8"),
        "--deadline-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(8), "deadline trips exit 8");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("truncated stages"),
        "the truncated report is still printed: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline exceeded"), "{stderr}");
}

#[test]
fn zero_memory_budget_exits_10() {
    // The binary installs the counting allocator, so any allocation
    // past the governor's baseline exhausts a 0 MiB budget.
    let corpus = write_temp("c9.txt", CORPUS);
    let onto = write_temp("o9.boe", ONTOLOGY);
    let out = boe(&[
        "pipeline",
        corpus.to_str().expect("utf8"),
        onto.to_str().expect("utf8"),
        "--max-alloc-mb",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(10), "alloc budget trips exit 10");
    assert!(String::from_utf8_lossy(&out.stderr).contains("memory budget"));
}

#[test]
fn bad_budget_flag_value_is_a_usage_error() {
    let corpus = write_temp("c10.txt", CORPUS);
    let onto = write_temp("o10.boe", ONTOLOGY);
    let out = boe(&[
        "pipeline",
        corpus.to_str().expect("utf8"),
        onto.to_str().expect("utf8"),
        "--deadline-ms",
        "soon",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--deadline-ms"));
}

#[test]
fn unknown_measure_is_rejected() {
    let corpus = write_temp("c4.txt", CORPUS);
    let out = boe(&[
        "extract",
        corpus.to_str().expect("utf8"),
        "--measure",
        "made-up",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown measure"));
}
