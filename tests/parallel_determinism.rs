//! Determinism across thread counts: the parallel runtime must make the
//! pipeline's output bit-identical to the serial run, not merely "close".
//!
//! The whole check lives in one `#[test]` because the thread-count
//! override ([`boe_par::set_threads`]) is process-global and the test
//! harness runs `#[test]`s of one binary concurrently.

use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::par as boe_par;
use bio_onto_enrich::workflow::linkage::{LinkerConfig, SemanticLinker};
use bio_onto_enrich::workflow::report::EnrichmentReport;
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};

fn world() -> World {
    World::generate(&WorldConfig {
        n_concepts: 60,
        n_holdout: 10,
        abstracts_per_concept: 4,
        seed: 0xD17E,
        ..Default::default()
    })
}

/// Full-report equality, down to float bit patterns.
fn assert_reports_identical(a: &EnrichmentReport, b: &EnrichmentReport) {
    assert_eq!(a.already_known, b.already_known);
    assert_eq!(a.terms.len(), b.terms.len());
    for (x, y) in a.terms.iter().zip(&b.terms) {
        assert_eq!(x.surface, y.surface);
        assert_eq!(
            x.term_score.to_bits(),
            y.term_score.to_bits(),
            "{}",
            x.surface
        );
        assert_eq!(x.polysemic, y.polysemic, "{}", x.surface);
        assert_eq!(x.senses.k, y.senses.k, "{}", x.surface);
        assert_eq!(x.senses.assignments, y.senses.assignments, "{}", x.surface);
        assert_eq!(x.propositions.len(), y.propositions.len(), "{}", x.surface);
        for (p, q) in x.propositions.iter().zip(&y.propositions) {
            assert_eq!(p.term, q.term, "{}", x.surface);
            assert_eq!(p.concepts, q.concepts, "{}", x.surface);
            assert_eq!(p.origin, q.origin, "{}", x.surface);
            assert_eq!(
                p.cosine.to_bits(),
                q.cosine.to_bits(),
                "{} -> {}: {} vs {}",
                x.surface,
                p.term,
                p.cosine,
                q.cosine
            );
        }
    }
    // Degradations must come back in the same (term) order, too.
    let deg = |r: &EnrichmentReport| {
        r.diagnostics
            .degraded
            .iter()
            .map(|d| (d.term.clone(), d.stage, d.reason.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(deg(a), deg(b));
}

#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let w = world();
    let pipeline = EnrichmentPipeline::new(PipelineConfig {
        top_terms: 120,
        ..Default::default()
    });

    boe_par::set_threads(Some(1));
    let serial = pipeline
        .run(&w.corpus, &w.reduced_ontology)
        .expect("valid input");

    boe_par::set_threads(Some(8));
    let parallel = pipeline
        .run(&w.corpus, &w.reduced_ontology)
        .expect("valid input");

    // Step-IV kernels: the inverted-index scorer must return exactly the
    // naive scan's top-10 (order, terms, cosine bits), still at 8 threads.
    let linker = SemanticLinker::new(&w.corpus, &w.reduced_ontology, LinkerConfig::default());
    for h in &w.holdout {
        let fast = linker.propose(&h.surface);
        let naive = linker.propose_naive(&h.surface);
        assert_eq!(fast.len(), naive.len(), "{}", h.surface);
        for (f, n) in fast.iter().zip(&naive) {
            assert_eq!(f.term, n.term, "{}", h.surface);
            assert_eq!(f.cosine.to_bits(), n.cosine.to_bits(), "{}", h.surface);
        }
    }

    // Step-III kernel: the row-range-chunked similarity matrix must stay
    // bit-identical across thread counts (chunk boundaries move with the
    // worker count; cell values must not).
    use bio_onto_enrich::cluster::similarity::similarity_matrix;
    use bio_onto_enrich::corpus::SparseVector;
    let unit: Vec<SparseVector> = (0..97u32)
        .map(|i| {
            SparseVector::from_pairs([
                (i % 13, 1.0 + f64::from(i) * 0.37),
                (i % 7, 0.25),
                ((i * 31) % 401, 0.11),
            ])
            .normalized()
        })
        .collect();
    boe_par::set_threads(Some(1));
    let m1 = similarity_matrix(&unit);
    boe_par::set_threads(Some(8));
    let m8 = similarity_matrix(&unit);
    assert_eq!(m1, m8, "similarity matrix diverges across thread counts");

    boe_par::set_threads(None);
    assert_reports_identical(&serial, &parallel);
    assert!(!serial.terms.is_empty(), "nothing analysed — vacuous test");
}
