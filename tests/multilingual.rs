//! Integration: the workflow runs end to end in all three languages the
//! paper targets (EN/FR/ES) — synthetic world generation, term
//! extraction and semantic linkage are language-parametric throughout.

use bio_onto_enrich::eval::exp_linkage_precision;
use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::termex::candidates::CandidateOptions;
use bio_onto_enrich::workflow::termex::{TermExtractor, TermMeasure};

fn world(lang: Language) -> World {
    World::generate(&WorldConfig {
        lang,
        n_concepts: 70,
        n_holdout: 8,
        abstracts_per_concept: 4,
        seed: 0xFADE,
        ..Default::default()
    })
}

#[test]
fn extraction_finds_concept_labels_in_every_language() {
    for lang in Language::ALL {
        let w = world(lang);
        let extractor = TermExtractor::new(&w.corpus, CandidateOptions::default());
        let top: Vec<String> = extractor
            .top(&w.corpus, TermMeasure::LidfValue, 300)
            .into_iter()
            .map(|t| t.surface)
            .collect();
        // A decent share of ontology concept labels must surface among
        // the extracted candidates.
        let found = w
            .full_ontology
            .concepts()
            .iter()
            .filter(|c| top.contains(&c.preferred))
            .count();
        assert!(
            found >= w.full_ontology.len() / 4,
            "{lang}: only {found}/{} labels extracted",
            w.full_ontology.len()
        );
    }
}

#[test]
fn linkage_precision_holds_in_french_and_spanish() {
    for lang in [Language::French, Language::Spanish] {
        let w = world(lang);
        let r = exp_linkage_precision::run(&w, 200, true);
        assert!(
            r.at[3] >= 0.5,
            "{lang}: top-10 precision {} too low",
            r.at[3]
        );
        assert!(r.at[0] <= r.at[3], "{lang}: non-monotone");
    }
}

#[test]
fn romance_labels_follow_noun_adjective_order() {
    let w = world(Language::French);
    for h in &w.holdout {
        let words: Vec<&str> = h.surface.split(' ').collect();
        assert_eq!(words.len(), 2, "{}", h.surface);
        // The generator composes FR labels as "<noun> <adjective>"; the
        // noun carries a nominal suffix.
        assert!(
            !words[0].ends_with("ique") && !words[0].ends_with("eux"),
            "adjective-first label {:?}",
            h.surface
        );
    }
}
