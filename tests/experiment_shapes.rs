//! Integration: the paper's evaluation *shapes* hold at test scale
//! (EXPERIMENTS.md records the full-scale numbers).

use bio_onto_enrich::cluster::InternalIndex;
use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::eval::{exp_linkage_precision, exp_polysemy, exp_sense_number, exp_table1};

#[test]
fn table1_counts_match_calibration_exactly() {
    let (umls, mesh) = exp_table1::run(100);
    assert_eq!(umls.rows[0], [542, 77, 18, 16]);
    assert_eq!(mesh.rows[0], [178, 1, 0, 0]);
    // Shape: decay in k, EN ≫ ES ≫ FR for UMLS.
    assert!(umls.rows[0][0] > umls.rows[2][0]);
    assert!(umls.rows[2][0] > umls.rows[1][0]);
}

#[test]
fn sense_number_best_index_beats_majority_baseline() {
    let cfg = exp_sense_number::SenseNumberConfig::quick();
    let res = exp_sense_number::run(&cfg);
    let best = res.best();
    assert!(
        best.accuracy > res.majority_baseline,
        "best {} <= baseline {}",
        best.accuracy,
        res.majority_baseline
    );
    assert!(best.accuracy > 0.85, "best accuracy {}", best.accuracy);
    // The literal Table-2 f_k tracks the majority baseline (it almost
    // always picks k = 2) — the reproduction finding EXPERIMENTS.md
    // discusses.
    let fk = res.best_for_index(InternalIndex::Fk);
    assert!(
        (fk - res.majority_baseline).abs() < 0.15,
        "fk {} vs baseline {}",
        fk,
        res.majority_baseline
    );
}

#[test]
fn polysemy_f_measure_is_high() {
    let cfg = exp_polysemy::PolysemyExpConfig::quick();
    let results = exp_polysemy::run(&cfg);
    let best = exp_polysemy::best_f1(&results);
    assert!(best > 0.85, "best F1 {best} (paper: 0.98)");
}

#[test]
fn linkage_precision_shape_holds() {
    let w = World::generate(&WorldConfig {
        n_concepts: 100,
        n_holdout: 12,
        abstracts_per_concept: 5,
        seed: 4,
        ..Default::default()
    });
    let r = exp_linkage_precision::run(&w, 200, true);
    // Monotone in N with a meaningful top-10 — the paper's shape
    // (0.333 → 0.583).
    assert!(r.at[0] <= r.at[1] && r.at[1] <= r.at[2] && r.at[2] <= r.at[3]);
    assert!(r.at[3] >= 0.5, "top-10 precision {}", r.at[3]);
    assert!(r.at[0] > 0.0, "top-1 precision should be nonzero");
}
