//! End-to-end equivalence of the two occurrence-resolution paths: a
//! pipeline run resolving phrase occurrences through the shared
//! positional [`OccurrenceIndex`] must produce an [`EnrichmentReport`]
//! bit-identical to the full-corpus naive scans — at one thread and at
//! eight.
//!
//! One `#[test]` because the thread-count override
//! ([`boe_par::set_threads`]) is process-global and the test harness
//! runs `#[test]`s of one binary concurrently.

use bio_onto_enrich::corpus::occurrence::OccurrenceResolution;
use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::par as boe_par;
use bio_onto_enrich::workflow::report::EnrichmentReport;
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};

fn world() -> World {
    World::generate(&WorldConfig {
        n_concepts: 60,
        n_holdout: 10,
        abstracts_per_concept: 4,
        seed: 0x10DE,
        ..Default::default()
    })
}

/// Full-report equality, down to float bit patterns.
fn assert_reports_identical(a: &EnrichmentReport, b: &EnrichmentReport) {
    assert_eq!(a.already_known, b.already_known);
    assert_eq!(a.terms.len(), b.terms.len());
    for (x, y) in a.terms.iter().zip(&b.terms) {
        assert_eq!(x.surface, y.surface);
        assert_eq!(
            x.term_score.to_bits(),
            y.term_score.to_bits(),
            "{}",
            x.surface
        );
        assert_eq!(x.polysemic, y.polysemic, "{}", x.surface);
        assert_eq!(x.senses.k, y.senses.k, "{}", x.surface);
        assert_eq!(x.senses.assignments, y.senses.assignments, "{}", x.surface);
        assert_eq!(x.propositions.len(), y.propositions.len(), "{}", x.surface);
        for (p, q) in x.propositions.iter().zip(&y.propositions) {
            assert_eq!(p.term, q.term, "{}", x.surface);
            assert_eq!(p.concepts, q.concepts, "{}", x.surface);
            assert_eq!(p.origin, q.origin, "{}", x.surface);
            assert_eq!(
                p.cosine.to_bits(),
                q.cosine.to_bits(),
                "{} -> {}: {} vs {}",
                x.surface,
                p.term,
                p.cosine,
                q.cosine
            );
        }
    }
    let deg = |r: &EnrichmentReport| {
        r.diagnostics
            .degraded
            .iter()
            .map(|d| (d.term.clone(), d.stage, d.reason.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(deg(a), deg(b));
}

#[test]
fn indexed_and_naive_resolution_yield_identical_reports() {
    let w = world();
    let config = PipelineConfig {
        top_terms: 120,
        ..Default::default()
    };
    assert_eq!(config.resolution, OccurrenceResolution::Indexed);
    let indexed = EnrichmentPipeline::new(config);
    let naive = EnrichmentPipeline::new(PipelineConfig {
        resolution: OccurrenceResolution::NaiveScan,
        ..config
    });

    for threads in [1usize, 8] {
        boe_par::set_threads(Some(threads));
        let a = indexed
            .run(&w.corpus, &w.reduced_ontology)
            .expect("valid input");
        let b = naive
            .run(&w.corpus, &w.reduced_ontology)
            .expect("valid input");
        assert_reports_identical(&a, &b);
        assert!(!a.terms.is_empty(), "nothing analysed — vacuous test");
    }
    boe_par::set_threads(None);
}
