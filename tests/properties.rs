//! Property-based tests on the core data structures and invariants,
//! spanning the workspace crates.

use bio_onto_enrich::cluster::Algorithm;
use bio_onto_enrich::corpus::corpus::CorpusBuilder;
use bio_onto_enrich::corpus::SparseVector;
use bio_onto_enrich::graph::{Graph, NodeId};
use bio_onto_enrich::textkit::normalize::match_key;
use bio_onto_enrich::textkit::stem;
use bio_onto_enrich::textkit::{Language, Tokenizer};
use proptest::prelude::*;

fn sparse_vec() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..64, -5.0f64..5.0), 0..12)
        .prop_map(SparseVector::from_pairs)
}

proptest! {
    // --- sparse vector algebra -------------------------------------

    #[test]
    fn cosine_is_symmetric_and_bounded(a in sparse_vec(), b in sparse_vec()) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    #[test]
    fn dot_distributes_over_addition(a in sparse_vec(), b in sparse_vec(), c in sparse_vec()) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.dot(&bc);
        let rhs = a.dot(&b) + a.dot(&c);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn normalized_is_unit_or_zero(a in sparse_vec()) {
        let n = a.normalized().norm();
        prop_assert!(n.abs() < 1e-12 || (n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn entries_stay_sorted_and_unique(a in sparse_vec(), b in sparse_vec()) {
        let mut s = a.clone();
        s.add_assign(&b);
        let dims: Vec<u32> = s.entries().iter().map(|(d, _)| *d).collect();
        prop_assert!(dims.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.entries().iter().all(|(_, v)| *v != 0.0));
    }

    // --- tokenizer --------------------------------------------------

    #[test]
    fn token_spans_index_into_source(s in "[ -~éàñçü]{0,60}") {
        let toks = Tokenizer::new(Language::English).tokenize(&s);
        for t in &toks {
            prop_assert!(t.span.end <= s.len());
            prop_assert_eq!(s[t.span.clone()].to_lowercase(), t.text.clone());
        }
    }

    #[test]
    fn tokens_never_contain_whitespace(s in "[a-zA-Z0-9 .,;()-]{0,80}") {
        let toks = Tokenizer::new(Language::English).tokenize(&s);
        for t in toks {
            prop_assert!(!t.text.chars().any(char::is_whitespace), "{:?}", t.text);
        }
    }

    // --- normalization & stemming ------------------------------------

    #[test]
    fn match_key_is_idempotent(s in "[ -~éàñçÉœ]{0,40}") {
        let once = match_key(&s);
        prop_assert_eq!(match_key(&once), once);
    }

    // Note: Porter is NOT idempotent by design ("ease" → "eas" → "ea"),
    // so the properties checked are output sanity, not fixpoints.
    #[test]
    fn porter_stem_output_is_sane(w in "[a-z]{1,15}") {
        let s = stem::porter::stem(&w);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= w.len() + 1, "{w} -> {s}");
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn stemming_never_lengthens_ascii_words(w in "[a-z]{3,15}") {
        for lang in Language::ALL {
            prop_assert!(stem::stem(lang, &w).len() <= w.len() + 1, "{lang} {w}");
        }
    }

    // --- clustering invariants ----------------------------------------

    #[test]
    fn cluster_solutions_partition_objects(
        n in 2usize..24,
        k in 1usize..5,
        seed in 0u64..50,
    ) {
        let k = k.min(n);
        let vs: Vec<SparseVector> = (0..n)
            .map(|i| SparseVector::from_pairs([((i % 6) as u32, 1.0), ((i / 6) as u32 + 10, 0.5)]))
            .collect();
        for alg in Algorithm::ALL {
            let sol = alg.cluster(&vs, k, seed);
            prop_assert_eq!(sol.k(), k, "{}", alg);
            prop_assert_eq!(sol.len(), n);
            let sizes = sol.sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
            prop_assert!(sizes.iter().all(|&s| s > 0), "{} empty cluster", alg);
        }
    }

    // --- graph invariants ----------------------------------------------

    #[test]
    fn graph_edges_are_symmetric(edges in proptest::collection::vec((0u32..12, 0u32..12, 0.1f64..5.0), 0..30)) {
        let mut g = Graph::with_nodes(12);
        for (a, b, w) in edges {
            if a != b {
                g.add_edge(NodeId(a), NodeId(b), w);
            }
        }
        for v in g.nodes() {
            for &(u, w) in g.neighbours(v) {
                prop_assert_eq!(g.edge_weight(u, v), Some(w));
            }
        }
        let sum_deg: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum_deg, 2 * g.edge_count());
    }

    // --- corpus invariants ----------------------------------------------

    #[test]
    fn corpus_interning_is_consistent(texts in proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,6}\\.", 1..6)) {
        let mut b = CorpusBuilder::new(Language::English);
        for t in &texts {
            b.add_text(t);
        }
        let c = b.build();
        for doc in c.docs() {
            for s in &doc.sentences {
                prop_assert_eq!(s.tokens.len(), s.tags.len());
                for &t in &s.tokens {
                    prop_assert!(c.vocab().try_text(t).is_some());
                }
            }
        }
    }
}
