//! Property-based tests on the core data structures and invariants,
//! spanning the workspace crates.
//!
//! Driven by the workspace's own deterministic PRNG (no external
//! dependencies); each test sweeps seeded random cases.

use bio_onto_enrich::cluster::Algorithm;
use bio_onto_enrich::corpus::corpus::CorpusBuilder;
use bio_onto_enrich::corpus::SparseVector;
use bio_onto_enrich::graph::{Graph, NodeId};
use bio_onto_enrich::textkit::normalize::match_key;
use bio_onto_enrich::textkit::stem;
use bio_onto_enrich::textkit::{Language, Tokenizer};
use boe_rng::StdRng;

const CASES: usize = 120;

fn rand_sparse_vec(rng: &mut StdRng) -> SparseVector {
    let nnz = rng.gen_range(0usize..12);
    let pairs: Vec<(u32, f64)> = (0..nnz)
        .map(|_| (rng.gen_range(0u32..64), rng.gen::<f64>() * 10.0 - 5.0))
        .collect();
    SparseVector::from_pairs(pairs)
}

fn rand_string(rng: &mut StdRng, charset: &str, max_len: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

fn rand_word(rng: &mut StdRng, min_len: usize, max_len: usize) -> String {
    let len = rng.gen_range(min_len..=max_len);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0u32..26) as u8))
        .collect()
}

// --- sparse vector algebra -------------------------------------

#[test]
fn cosine_is_symmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(50);
    for _ in 0..CASES {
        let a = rand_sparse_vec(&mut rng);
        let b = rand_sparse_vec(&mut rng);
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((-1.0..=1.0).contains(&ab));
    }
}

#[test]
fn dot_distributes_over_addition() {
    let mut rng = StdRng::seed_from_u64(51);
    for _ in 0..CASES {
        let a = rand_sparse_vec(&mut rng);
        let b = rand_sparse_vec(&mut rng);
        let c = rand_sparse_vec(&mut rng);
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.dot(&bc);
        let rhs = a.dot(&b) + a.dot(&c);
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }
}

#[test]
fn normalized_is_unit_or_zero() {
    let mut rng = StdRng::seed_from_u64(52);
    for _ in 0..CASES {
        let a = rand_sparse_vec(&mut rng);
        let n = a.normalized().norm();
        assert!(n.abs() < 1e-12 || (n - 1.0).abs() < 1e-9);
    }
}

#[test]
fn entries_stay_sorted_and_unique() {
    let mut rng = StdRng::seed_from_u64(53);
    for _ in 0..CASES {
        let a = rand_sparse_vec(&mut rng);
        let b = rand_sparse_vec(&mut rng);
        let mut s = a.clone();
        s.add_assign(&b);
        let dims: Vec<u32> = s.entries().iter().map(|(d, _)| *d).collect();
        assert!(dims.windows(2).all(|w| w[0] < w[1]));
        assert!(s.entries().iter().all(|(_, v)| *v != 0.0));
    }
}

// --- tokenizer --------------------------------------------------

#[test]
fn token_spans_index_into_source() {
    let mut rng = StdRng::seed_from_u64(54);
    let printable: String = (' '..='~').collect::<String>() + "éàñçü";
    for _ in 0..CASES {
        let s = rand_string(&mut rng, &printable, 60);
        let toks = Tokenizer::new(Language::English).tokenize(&s);
        for t in &toks {
            assert!(t.span.end <= s.len());
            assert_eq!(s[t.span.clone()].to_lowercase(), t.text.clone());
        }
    }
}

#[test]
fn tokens_never_contain_whitespace() {
    let mut rng = StdRng::seed_from_u64(55);
    for _ in 0..CASES {
        let s = rand_string(
            &mut rng,
            "abcdefghijklmnopqrstuvwxyzABCDEF0123456789 .,;()-",
            80,
        );
        let toks = Tokenizer::new(Language::English).tokenize(&s);
        for t in toks {
            assert!(!t.text.chars().any(char::is_whitespace), "{:?}", t.text);
        }
    }
}

// --- normalization & stemming ------------------------------------

#[test]
fn match_key_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(56);
    let printable: String = (' '..='~').collect::<String>() + "éàñçÉœ";
    for _ in 0..CASES {
        let s = rand_string(&mut rng, &printable, 40);
        let once = match_key(&s);
        assert_eq!(match_key(&once), once);
    }
}

// Note: Porter is NOT idempotent by design ("ease" → "eas" → "ea"),
// so the properties checked are output sanity, not fixpoints.
#[test]
fn porter_stem_output_is_sane() {
    let mut rng = StdRng::seed_from_u64(57);
    for _ in 0..CASES {
        let w = rand_word(&mut rng, 1, 15);
        let s = stem::porter::stem(&w);
        assert!(!s.is_empty());
        assert!(s.len() <= w.len() + 1, "{w} -> {s}");
        assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }
}

#[test]
fn stemming_never_lengthens_ascii_words() {
    let mut rng = StdRng::seed_from_u64(58);
    for _ in 0..CASES {
        let w = rand_word(&mut rng, 3, 15);
        for lang in Language::ALL {
            assert!(stem::stem(lang, &w).len() <= w.len() + 1, "{lang} {w}");
        }
    }
}

// --- clustering invariants ----------------------------------------

#[test]
fn cluster_solutions_partition_objects() {
    let mut rng = StdRng::seed_from_u64(59);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..24);
        let k = rng.gen_range(1usize..5).min(n);
        let seed = rng.gen_range(0u64..50);
        let vs: Vec<SparseVector> = (0..n)
            .map(|i| SparseVector::from_pairs([((i % 6) as u32, 1.0), ((i / 6) as u32 + 10, 0.5)]))
            .collect();
        for alg in Algorithm::ALL {
            let sol = alg.cluster(&vs, k, seed);
            assert_eq!(sol.k(), k, "{alg}");
            assert_eq!(sol.len(), n);
            let sizes = sol.sizes();
            assert_eq!(sizes.iter().sum::<usize>(), n);
            assert!(sizes.iter().all(|&s| s > 0), "{alg} empty cluster");
        }
    }
}

// --- graph invariants ----------------------------------------------

#[test]
fn graph_edges_are_symmetric() {
    let mut rng = StdRng::seed_from_u64(60);
    for _ in 0..CASES {
        let mut g = Graph::with_nodes(12);
        for _ in 0..rng.gen_range(0usize..30) {
            let a = rng.gen_range(0u32..12);
            let b = rng.gen_range(0u32..12);
            let w = 0.1 + rng.gen::<f64>() * 4.9;
            if a != b {
                g.add_edge(NodeId(a), NodeId(b), w);
            }
        }
        for v in g.nodes() {
            for &(u, w) in g.neighbours(v) {
                assert_eq!(g.edge_weight(u, v), Some(w));
            }
        }
        let sum_deg: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(sum_deg, 2 * g.edge_count());
    }
}

// --- corpus invariants ----------------------------------------------

#[test]
fn corpus_interning_is_consistent() {
    let mut rng = StdRng::seed_from_u64(61);
    for _ in 0..CASES {
        let mut b = CorpusBuilder::new(Language::English);
        for _ in 0..rng.gen_range(1usize..6) {
            let words = rng.gen_range(1usize..=7);
            let mut text = String::new();
            for w in 0..words {
                if w > 0 {
                    text.push(' ');
                }
                text.push_str(&rand_word(&mut rng, 1, 8));
            }
            text.push('.');
            b.add_text(&text);
        }
        let c = b.build();
        for doc in c.docs() {
            for s in &doc.sentences {
                assert_eq!(s.tokens.len(), s.tags.len());
                for &t in &s.tokens {
                    assert!(c.vocab().try_text(t).is_some());
                }
            }
        }
    }
}
