//! Integration: Steps II + III on a world with *real* polysemy — shared
//! synonyms inside the ontology (the weak supervision the pipeline trains
//! Step II on) and ambiguous new terms spanning two concepts' contexts.

use bio_onto_enrich::cluster::{Algorithm, InternalIndex};
use bio_onto_enrich::corpus::context::ContextScope;
use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::workflow::polysemy::detector::{
    FeatureContext, PolysemyDetector, PolysemyModel,
};
use bio_onto_enrich::workflow::senses::{Representation, SenseInducer, SenseInducerConfig};

fn poly_world() -> World {
    World::generate(&WorldConfig {
        n_concepts: 80,
        n_holdout: 8,
        abstracts_per_concept: 5,
        n_shared_synonyms: 10,
        n_ambiguous_new: 6,
        seed: 42,
        ..Default::default()
    })
}

/// Train a detector on the ontology's own polysemy (shared synonyms vs a
/// sample of monosemic terms), then check it flags the ambiguous *new*
/// terms, which it never saw.
#[test]
fn detector_trained_on_ontology_flags_ambiguous_new_terms() {
    let w = poly_world();
    let features = FeatureContext::build(&w.corpus);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (surface, concepts) in w.reduced_ontology.terms() {
        let Some(ids) = w.corpus.phrase_ids(surface) else {
            continue;
        };
        if bio_onto_enrich::corpus::context::find_occurrences_naive(&w.corpus, &ids).is_empty() {
            continue;
        }
        rows.push(features.features(&ids, surface));
        labels.push(concepts.len() >= 2);
    }
    let positives = labels.iter().filter(|&&l| l).count();
    assert!(positives >= 8, "only {positives} polysemic training terms");
    let detector = PolysemyDetector::train(PolysemyModel::Forest, rows, labels);

    let flagged = w
        .ambiguous_new
        .iter()
        .filter(|t| {
            let ids = w.corpus.phrase_ids(&t.surface).expect("interned");
            detector.is_polysemic(&features.features(&ids, &t.surface))
        })
        .count();
    assert!(
        flagged * 2 >= w.ambiguous_new.len(),
        "only {flagged}/{} ambiguous terms flagged",
        w.ambiguous_new.len()
    );
    // Held-out (monosemic) terms should mostly not be flagged.
    let false_flags = w
        .holdout
        .iter()
        .filter(|h| {
            let ids = w.corpus.phrase_ids(&h.surface).expect("interned");
            detector.is_polysemic(&features.features(&ids, &h.surface))
        })
        .count();
    assert!(
        false_flags * 2 <= w.holdout.len(),
        "{false_flags}/{} monosemic held-out terms misflagged",
        w.holdout.len()
    );
}

/// Step III should induce k = 2 for the planted two-sense terms.
#[test]
fn sense_induction_recovers_two_senses_for_ambiguous_new_terms() {
    let w = poly_world();
    // Document scope: each abstract covers exactly one concept, so the
    // whole abstract is the natural context of a mention (sentence-level
    // contexts are too sparse for a reliable k sweep).
    let inducer = SenseInducer::new(
        &w.corpus,
        SenseInducerConfig {
            representation: Representation::BagOfWords,
            scope: ContextScope::Document,
            algorithm: Algorithm::Rbr,
            index: InternalIndex::Ek,
            ..Default::default()
        },
    );
    let mut correct = 0;
    for t in &w.ambiguous_new {
        let ids = w.corpus.phrase_ids(&t.surface).expect("interned");
        let senses = inducer.induce(&ids, true);
        if senses.k == 2 {
            correct += 1;
        }
    }
    assert!(
        correct * 3 >= w.ambiguous_new.len() * 2,
        "k = 2 recovered for only {correct}/{}",
        w.ambiguous_new.len()
    );
}
