//! Integration: the full four-step pipeline over the synthetic world,
//! spanning every crate in the workspace.

use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};

fn world() -> World {
    World::generate(&WorldConfig {
        n_concepts: 80,
        n_holdout: 8,
        abstracts_per_concept: 4,
        seed: 99,
        ..Default::default()
    })
}

#[test]
fn pipeline_analyses_new_terms_and_links_them() {
    let w = world();
    // The synthetic corpus has ~10 high-frequency topic unigrams per
    // concept, so a wide candidate budget is needed before the held-out
    // bigram labels surface.
    let pipeline = EnrichmentPipeline::new(PipelineConfig {
        top_terms: 600,
        ..Default::default()
    });
    let report = pipeline
        .run(&w.corpus, &w.reduced_ontology)
        .expect("valid input");
    assert!(!report.is_empty(), "no candidates analysed");
    assert!(
        !report.already_known.is_empty(),
        "ontology terms should be recognized in the corpus"
    );
    // Held-out terms are genuinely new to the reduced ontology; the
    // extractor should surface at least some of them among its analysed
    // candidates, and those should come back with propositions.
    let analysed_holdout: Vec<_> = w
        .holdout
        .iter()
        .filter_map(|h| report.get(&h.surface))
        .collect();
    assert!(
        !analysed_holdout.is_empty(),
        "no held-out term was analysed; candidates: {:?}",
        report
            .terms
            .iter()
            .map(|t| t.surface.as_str())
            .take(20)
            .collect::<Vec<_>>()
    );
    for t in &analysed_holdout {
        assert!((1..=5).contains(&t.senses.k));
        assert!(
            !t.propositions.is_empty(),
            "{} got no propositions",
            t.surface
        );
    }
}

#[test]
fn pipeline_is_deterministic() {
    let w = world();
    let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
    let a = pipeline
        .run(&w.corpus, &w.reduced_ontology)
        .expect("valid input");
    let b = pipeline
        .run(&w.corpus, &w.reduced_ontology)
        .expect("valid input");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.terms.iter().zip(&b.terms) {
        assert_eq!(x.surface, y.surface);
        assert_eq!(x.polysemic, y.polysemic);
        assert_eq!(x.senses.k, y.senses.k);
        assert_eq!(x.propositions.len(), y.propositions.len());
    }
}

#[test]
fn known_terms_never_reappear_as_candidates() {
    let w = world();
    let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
    let report = pipeline
        .run(&w.corpus, &w.reduced_ontology)
        .expect("valid input");
    for t in &report.terms {
        assert!(
            !w.reduced_ontology.contains_term(&t.surface),
            "{} is already in the ontology",
            t.surface
        );
    }
}
