//! Adversarial inputs: the pipeline must return typed errors or degraded
//! reports — never panic — on empty, degenerate or inconsistent input.

use bio_onto_enrich::corpus::corpus::{Corpus, CorpusBuilder};
use bio_onto_enrich::ontology::{Ontology, OntologyBuilder};
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::error::EnrichError;
use bio_onto_enrich::workflow::senses::{SenseInducer, SenseInducerConfig};
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};

fn small_ontology(lang: Language) -> Ontology {
    let mut ob = OntologyBuilder::new("t", lang);
    let eye = ob.add_concept("eye diseases", vec![]);
    let cd = ob.add_concept("corneal diseases", vec!["keratitis".to_owned()]);
    ob.add_is_a(cd, eye);
    ob.build().expect("valid")
}

fn small_corpus(lang: Language) -> Corpus {
    let mut cb = CorpusBuilder::new(lang);
    for _ in 0..3 {
        cb.add_text("corneal injuries resemble corneal diseases of the epithelium stroma.");
        cb.add_text("keratitis damages the epithelium stroma tissue.");
        cb.add_text("eye diseases involve the retina nerve.");
    }
    cb.build()
}

fn pipeline() -> EnrichmentPipeline {
    EnrichmentPipeline::new(PipelineConfig::default())
}

#[test]
fn empty_corpus_is_rejected_with_a_typed_error() {
    let corpus = CorpusBuilder::new(Language::English).build();
    let onto = small_ontology(Language::English);
    let err = pipeline().run(&corpus, &onto).expect_err("must fail");
    assert!(matches!(err, EnrichError::EmptyCorpus), "{err:?}");
    assert_eq!(err.exit_code(), 3);
}

#[test]
fn empty_ontology_is_rejected_with_a_typed_error() {
    let corpus = small_corpus(Language::English);
    let onto = OntologyBuilder::new("empty", Language::English)
        .build()
        .expect("an empty ontology builds");
    let err = pipeline().run(&corpus, &onto).expect_err("must fail");
    assert!(matches!(err, EnrichError::EmptyOntology), "{err:?}");
}

#[test]
fn one_document_corpus_degrades_with_a_warning() {
    let mut cb = CorpusBuilder::new(Language::English);
    cb.add_text(
        "corneal injuries resemble corneal diseases of the epithelium stroma. \
         keratitis damages the epithelium stroma tissue.",
    );
    let corpus = cb.build();
    let onto = small_ontology(Language::English);
    let report = pipeline().run(&corpus, &onto).expect("usable input");
    assert!(report.is_degraded());
    assert!(
        report
            .diagnostics
            .warnings
            .iter()
            .any(|w| w.contains("single-document")),
        "{:?}",
        report.diagnostics.warnings
    );
}

#[test]
fn language_mismatch_is_rejected_with_both_languages_named() {
    let corpus = small_corpus(Language::English);
    let onto = small_ontology(Language::French);
    let err = pipeline().run(&corpus, &onto).expect_err("must fail");
    match err {
        EnrichError::LanguageMismatch {
            corpus: c,
            ontology: o,
        } => {
            assert_eq!(c, Language::English);
            assert_eq!(o, Language::French);
        }
        other => panic!("expected LanguageMismatch, got {other:?}"),
    }
    assert_eq!(
        pipeline()
            .run(&corpus, &small_ontology(Language::French))
            .expect_err("must fail")
            .exit_code(),
        4
    );
}

#[test]
fn term_absent_from_vocabulary_never_panics() {
    let corpus = small_corpus(Language::English);
    assert!(corpus.phrase_ids("nonexistent term").is_none());
    // A phrase of known tokens that never occur adjacently: sense
    // induction must degrade to a single empty sense, not panic.
    let a = corpus.vocab().get("retina").expect("known");
    let b = corpus.vocab().get("keratitis").expect("known");
    let inducer = SenseInducer::new(&corpus, SenseInducerConfig::default());
    let senses = inducer.induce(&[a, b], true);
    assert_eq!(senses.k, 1);
    assert!(senses.concepts.is_empty());
}

#[test]
fn single_concept_ontology_degrades_with_a_warning() {
    let mut ob = OntologyBuilder::new("solo", Language::English);
    ob.add_concept("corneal diseases", vec![]);
    let onto = ob.build().expect("valid");
    let corpus = small_corpus(Language::English);
    let report = pipeline().run(&corpus, &onto).expect("usable input");
    assert!(
        report
            .diagnostics
            .warnings
            .iter()
            .any(|w| w.contains("single-concept")),
        "{:?}",
        report.diagnostics.warnings
    );
    // The run still analyses candidates; linkage just has little to say.
    for t in &report.terms {
        assert!((1..=5).contains(&t.senses.k));
    }
}

#[test]
fn degradations_always_carry_a_reason() {
    // Whatever gets degraded across these adversarial runs, the record
    // must say which term, which stage, and why.
    let corpus = small_corpus(Language::English);
    let onto = small_ontology(Language::English);
    let report = pipeline().run(&corpus, &onto).expect("usable input");
    for d in &report.diagnostics.degraded {
        assert!(!d.term.is_empty());
        assert!(!d.reason.is_empty());
    }
    // Detector outcome is always recorded on a completed run.
    assert_ne!(
        report.diagnostics.detector,
        bio_onto_enrich::workflow::diagnostics::DetectorOutcome::NotAttempted
    );
}
