//! The chaos matrix: every injection site × every fault mode × {1, 8}
//! threads. The contract under test is the robustness invariant of the
//! governed pipeline:
//!
//! 1. **No abort.** Whatever the fault, `run` returns either a
//!    structured report (with the failure in its diagnostics) or a typed
//!    [`EnrichError`] — a panic never escapes to the caller.
//! 2. **Thread determinism.** For a fixed chaos plan (site, mode, seed)
//!    the outcome is bit-identical at 1 and 8 threads: same term
//!    reports (float bits included), same degradations in the same
//!    order, same trips, same truncations.
//!
//! Stall faults are paired with a wall-clock deadline so the stall
//! (1200 ms) trips the budget (400 ms) while the natural run (< 100 ms
//! on this world) never does. Per-term stalls are keyed to the first
//! processed term so both thread counts keep the identical one-term
//! prefix. Everything lives in one `#[test]` because the chaos plan and
//! the thread-count override are process-global.

use bio_onto_enrich::chaos::{self, sites, ChaosPlan, FaultMode};
use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::par as boe_par;
use bio_onto_enrich::workflow::error::EnrichError;
use bio_onto_enrich::workflow::governor::BudgetConfig;
use bio_onto_enrich::workflow::report::EnrichmentReport;
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Stall duration; must comfortably exceed [`DEADLINE_MS`].
const STALL_MS: u64 = 1200;
/// Wall-clock budget for stall combinations; must comfortably exceed
/// the natural (un-stalled) runtime of the matrix world.
const DEADLINE_MS: u64 = 400;

fn world() -> World {
    World::generate(&WorldConfig {
        n_concepts: 24,
        n_holdout: 10,
        abstracts_per_concept: 2,
        seed: 0xC4A0,
        ..Default::default()
    })
}

fn pipeline(budget: BudgetConfig) -> EnrichmentPipeline {
    EnrichmentPipeline::new(PipelineConfig {
        top_terms: 40,
        budget,
        ..Default::default()
    })
}

/// Everything observable about an outcome except wall-clock noise:
/// timings and trip measurements are excluded, float payloads go in as
/// exact bit patterns.
fn signature(res: &Result<EnrichmentReport, EnrichError>) -> String {
    let mut s = String::new();
    match res {
        Err(e) => {
            let _ = writeln!(s, "error[{}]: {e}", e.exit_code());
        }
        Ok(r) => {
            let _ = writeln!(s, "known: {}", r.already_known.join("|"));
            for t in &r.terms {
                let _ = write!(
                    s,
                    "term {} score={:016x} poly={} k={} repaired={} truncated={} asg={:?}",
                    t.surface,
                    t.term_score.to_bits(),
                    t.polysemic,
                    t.senses.k,
                    t.senses.repaired,
                    t.truncated,
                    t.senses.assignments,
                );
                for p in &t.propositions {
                    let _ = write!(s, " p:{}:{:016x}", p.term, p.cosine.to_bits());
                }
                s.push('\n');
            }
            for w in &r.diagnostics.warnings {
                let _ = writeln!(s, "warn: {w}");
            }
            for d in &r.diagnostics.degraded {
                let _ = writeln!(s, "degraded: {}|{}|{}", d.term, d.stage, d.reason);
            }
            for t in &r.diagnostics.trips {
                let _ = writeln!(s, "trip: {}|{}|{}", t.kind, t.stage, t.detail);
            }
            let trunc: Vec<&str> = r.diagnostics.truncated.iter().map(|st| st.name()).collect();
            let _ = writeln!(s, "truncated-stages: {}", trunc.join("|"));
            let _ = writeln!(s, "detector: {:?}", r.diagnostics.detector);
        }
    }
    s
}

#[test]
fn every_site_and_mode_degrades_cleanly_and_deterministically() {
    let w = world();

    // Baseline without chaos: sizes the fan-out and names the first
    // processed term (per-term stalls key on it).
    chaos::install(None);
    let clean = pipeline(BudgetConfig::default())
        .run(&w.corpus, &w.reduced_ontology)
        .expect("clean run must succeed");
    assert!(
        clean.terms.len() > 8,
        "world too small ({} terms) for a meaningful 8-way fan-out",
        clean.terms.len()
    );
    let first_term = clean.terms[0].surface.clone();

    // Injected panics are expected by the dozen; silence the default
    // hook's backtrace spam for the duration of the sweep.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut failures: Vec<String> = Vec::new();
    for site in sites::ALL {
        for mode in FaultMode::ALL {
            let mut plan = ChaosPlan::new(site, mode);
            plan.seed = 0xBEEF;
            let budget = if mode == FaultMode::Stall {
                plan.stall_ms = STALL_MS;
                if site.starts_with("term.") {
                    // Stall exactly one term (the first processed one) so
                    // the interrupted prefix is the same at any thread
                    // count.
                    plan.key = Some(chaos::key_for(&first_term));
                }
                BudgetConfig {
                    deadline_ms: Some(DEADLINE_MS),
                    ..Default::default()
                }
            } else {
                BudgetConfig::default()
            };

            let p = pipeline(budget);
            let mut sigs: Vec<String> = Vec::new();
            for threads in [1usize, 8] {
                let combo = format!("{site}/{} at {threads} thread(s)", mode.name());
                boe_par::set_threads(Some(threads));
                chaos::install(Some(plan.clone()));
                let caught =
                    catch_unwind(AssertUnwindSafe(|| p.run(&w.corpus, &w.reduced_ontology)));
                chaos::install(None);
                let Ok(outcome) = caught else {
                    failures.push(format!("{combo}: a panic escaped the pipeline"));
                    continue;
                };
                match (&outcome, mode) {
                    (Ok(report), FaultMode::Panic) if !report.is_degraded() => {
                        failures.push(format!("{combo}: injected panic left no diagnostic trace"));
                    }
                    (Ok(report), FaultMode::Stall) if report.diagnostics.hard_trip().is_none() => {
                        failures.push(format!("{combo}: stall did not trip the deadline"));
                    }
                    (Err(e), FaultMode::Stall) | (Err(e), FaultMode::Corrupt) => {
                        failures.push(format!("{combo}: unexpected error {e}"));
                    }
                    _ => {}
                }
                sigs.push(signature(&outcome));
            }
            if sigs.len() == 2 && sigs[0] != sigs[1] {
                failures.push(format!(
                    "{site}/{}: outcome diverges across thread counts\n--- 1 thread ---\n{}--- 8 threads ---\n{}",
                    mode.name(),
                    sigs[0],
                    sigs[1]
                ));
            }
        }
    }

    boe_par::set_threads(None);
    std::panic::set_hook(hook);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
