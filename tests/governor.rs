//! Resource-governance integration tests: budgets trip, the pipeline
//! degrades, and the process never sees an abort.
//!
//! Hard trips (deadline, cancellation, allocation budget) truncate the
//! remaining work into score-only term reports; the soft per-stage
//! deadline downgrades Step III to its cheapest configuration and skips
//! linkage. In every case `run` returns `Ok(report)` — exit codes are
//! the CLI's business (see `tests/cli.rs`).

use bio_onto_enrich::chaos::{self, sites, ChaosPlan, FaultMode};
use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::workflow::governor::{mem, BudgetConfig, CancelToken, Governor, TripKind};
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};

fn world() -> World {
    World::generate(&WorldConfig {
        n_concepts: 40,
        n_holdout: 6,
        abstracts_per_concept: 3,
        seed: 0x60BE,
        ..Default::default()
    })
}

fn pipeline(budget: BudgetConfig) -> EnrichmentPipeline {
    EnrichmentPipeline::new(PipelineConfig {
        top_terms: 60,
        budget,
        ..Default::default()
    })
}

#[test]
fn zero_deadline_truncates_instead_of_aborting() {
    let w = world();
    let report = pipeline(BudgetConfig {
        deadline_ms: Some(0),
        ..Default::default()
    })
    .run(&w.corpus, &w.reduced_ontology)
    .expect("a tripped run still returns a report");

    let trip = report
        .diagnostics
        .hard_trip()
        .expect("a 0 ms deadline must trip");
    assert_eq!(trip.kind, TripKind::Deadline);
    assert!(trip.limit == 0, "limit echoes the configured budget");
    // The trip fires at the first checkpoint, before Step I: every step
    // is truncated and no term made it into the report.
    assert_eq!(report.diagnostics.truncated.len(), 4);
    assert!(report.terms.is_empty());
    assert!(report.is_degraded());
    let shown = report.to_string();
    assert!(shown.contains("truncated stages"), "{shown}");
}

#[test]
fn pre_cancelled_token_winds_down_with_a_cancelled_trip() {
    let w = world();
    let token = CancelToken::new();
    token.cancel();
    let report = pipeline(BudgetConfig::default())
        .run_with_token(&w.corpus, &w.reduced_ontology, token)
        .expect("cancellation is a trip, not an error");

    let trip = report.diagnostics.hard_trip().expect("must trip");
    assert_eq!(trip.kind, TripKind::Cancelled);
    assert!(!report.diagnostics.truncated.is_empty());
    assert!(report.terms.is_empty());
}

#[test]
fn exhausted_allocation_budget_trips_at_the_next_checkpoint() {
    let w = world();
    // The test binary has no counting allocator; simulate one. The
    // governor snapshots its baseline at construction, so allocations
    // noted *after* `Governor::new` count against the budget.
    mem::mark_tracking_installed();
    let p = pipeline(BudgetConfig {
        max_alloc_mb: Some(1),
        ..Default::default()
    });
    let gov = Governor::new(p.config().budget);
    mem::note_alloc(8 * 1024 * 1024);
    let report = p
        .run_governed(&w.corpus, &w.reduced_ontology, gov)
        .expect("budget exhaustion is a trip, not an error");
    mem::note_dealloc(8 * 1024 * 1024);

    let trip = report.diagnostics.hard_trip().expect("must trip");
    assert_eq!(trip.kind, TripKind::AllocBudget);
    assert!(
        trip.measured >= trip.limit,
        "measured {} MiB vs limit {} MiB",
        trip.measured,
        trip.limit
    );
    assert!(report.terms.is_empty());
}

#[test]
fn soft_stage_deadline_degrades_to_the_cheapest_induction() {
    let w = world();
    let report = pipeline(BudgetConfig {
        stage_deadline_ms: Some(0),
        ..Default::default()
    })
    .run(&w.corpus, &w.reduced_ontology)
    .expect("a soft trip never fails the run");

    // Soft trip: recorded, but not hard — no truncation, exit code 0.
    assert!(report.diagnostics.hard_trip().is_none());
    assert!(report
        .diagnostics
        .trips
        .iter()
        .any(|t| t.kind == TripKind::StageDeadline));
    assert!(report.diagnostics.truncated.is_empty());
    assert!(report
        .diagnostics
        .degraded
        .iter()
        .any(|d| d.reason.contains("cheapest induction")));
    // The cheap pass still analyses every term (degraded, not
    // truncated), but linkage is skipped wholesale.
    assert!(!report.terms.is_empty(), "cheap pass still reports terms");
    for t in &report.terms {
        assert!(!t.truncated, "{}", t.surface);
        assert!(t.propositions.is_empty(), "{}", t.surface);
    }
}

/// Step-I-heavy trip case: a stall injected *inside* candidate
/// extraction (the `termex.candidates` site) must be caught by the
/// governor checkpoints that Step I now polls — before this PR the
/// deadline could only trip at the next stage boundary, after the whole
/// serial extraction had run to completion.
///
/// The armed stall plan is benign for the tests running concurrently in
/// this binary: they either trip before Step I (never reaching the
/// site) or carry no deadline (the stall only slows them down).
#[test]
fn step1_stall_trips_the_deadline_mid_extraction() {
    let w = world();
    let mut plan = ChaosPlan::new(sites::TERMEX_CANDIDATES, FaultMode::Stall);
    plan.stall_ms = 300;
    chaos::install(Some(plan));
    let report = pipeline(BudgetConfig {
        deadline_ms: Some(100),
        ..Default::default()
    })
    .run(&w.corpus, &w.reduced_ontology)
    .expect("a mid-step-I trip still returns a report");
    chaos::install(None);

    let trip = report
        .diagnostics
        .hard_trip()
        .expect("the stalled extraction must trip the deadline");
    assert_eq!(trip.kind, TripKind::Deadline);
    // An interrupted extraction yields no terms at all (partial
    // candidate statistics would be prefix-dependent): all four steps
    // are truncated and the report is empty but structured.
    assert!(report.terms.is_empty());
    assert!(report.already_known.is_empty());
    assert_eq!(report.diagnostics.truncated.len(), 4);
    assert!(report.is_degraded());
}

#[test]
fn unlimited_budget_reports_nothing() {
    let w = world();
    let report = pipeline(BudgetConfig::default())
        .run(&w.corpus, &w.reduced_ontology)
        .expect("valid input");
    assert!(report.diagnostics.trips.is_empty());
    assert!(report.diagnostics.truncated.is_empty());
    assert!(report.terms.iter().all(|t| !t.truncated));
}
