//! The paper's future-work extension: typing the relation between a
//! candidate term and its proposed positions from the verbs that link
//! them in text.
//!
//! ```text
//! cargo run --example relation_extraction
//! ```

use bio_onto_enrich::corpus::corpus::CorpusBuilder;
use bio_onto_enrich::corpus::occurrence::OccurrenceIndex;
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::relation::extract_relation;

fn main() {
    let mut b = CorpusBuilder::new(Language::English);
    b.add_text("Chemical burns cause corneal injuries. Chemical burns caused corneal injuries in most patients.");
    b.add_text("Amniotic membrane grafts treat corneal injuries. The amniotic membrane heals corneal injuries.");
    b.add_text("Ulcerative keratitis is corneal ulcer.");
    b.add_text("Corneal injuries involve the epithelium.");
    let corpus = b.build();
    let occ = OccurrenceIndex::build(&corpus);

    let pairs = [
        ("chemical burns", "corneal injuries"),
        ("amniotic membrane", "corneal injuries"),
        ("ulcerative keratitis", "corneal ulcer"),
        ("corneal injuries", "epithelium"),
    ];
    for (a, b_term) in pairs {
        let ta = corpus.phrase_ids(a).expect("known");
        let tb = corpus.phrase_ids(b_term).expect("known");
        match extract_relation(&corpus, &occ, &ta, &tb) {
            Some(ev) => {
                let verbs: Vec<String> = ev.verbs.iter().map(|(v, c)| format!("{v}×{c}")).collect();
                println!(
                    "{a:<22} —[{}]→ {b_term:<18} (from {} shared sentences; verbs: {})",
                    ev.relation.name(),
                    ev.sentences,
                    verbs.join(", ")
                );
            }
            None => println!("{a:<22} and {b_term} never share a sentence"),
        }
    }
}
