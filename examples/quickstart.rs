//! Quickstart: run the full four-step enrichment workflow on a small
//! hand-written corpus against a toy MeSH-like ontology.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bio_onto_enrich::corpus::corpus::CorpusBuilder;
use bio_onto_enrich::ontology::OntologyBuilder;
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::{EnrichmentPipeline, PipelineConfig};

fn main() {
    // A toy ontology: eye diseases ⊃ corneal diseases; "keratitis" is
    // polysemic (cornea inflammation vs skin condition).
    let mut ob = OntologyBuilder::new("toy-mesh", Language::English);
    let eye = ob.add_concept("eye diseases", vec![]);
    let cd = ob.add_concept("corneal diseases", vec!["keratitis".to_owned()]);
    let _skin = ob.add_concept("skin inflammation", vec!["keratitis".to_owned()]);
    ob.add_is_a(cd, eye);
    let ontology = ob.build().expect("valid ontology");

    // A miniature "PubMed" corpus mentioning a term the ontology lacks.
    let mut cb = CorpusBuilder::new(Language::English);
    for _ in 0..3 {
        cb.add_text(
            "Corneal injuries resemble corneal diseases of the epithelium stroma tissue. \
             Corneal injuries heal in the epithelium stroma tissue.",
        );
        cb.add_text("Keratitis damages the epithelium stroma tissue.");
        cb.add_text("Keratitis irritates the dermis follicle layer.");
        cb.add_text("Eye diseases involve the retina nerve.");
    }
    let corpus = cb.build();

    // Steps I–IV. `run` is fallible: degenerate input (empty corpus,
    // language mismatch, ...) comes back as a typed `EnrichError`.
    let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
    let report = pipeline
        .run(&corpus, &ontology)
        .expect("toy inputs are valid");

    println!("{report}");
    if let Some(term) = report.get("corneal injuries") {
        println!("--- focus: {:?} ---", term.surface);
        println!("step I  score     : {:.3}", term.term_score);
        println!("step II polysemic : {}", term.polysemic);
        println!("step III senses   : k = {}", term.senses.k);
        println!("step IV positions :");
        for (i, p) in term.propositions.iter().enumerate() {
            println!(
                "  {}. {:<24} cosine {:.4}  via {}",
                i + 1,
                p.term,
                p.cosine,
                p.origin.name()
            );
        }
    }
}
