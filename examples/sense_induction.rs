//! Sense induction on an MSH-WSD-like ambiguous term: predict how many
//! senses it has (Step III-a) and label each induced concept with its
//! most important context features (Step III-b).
//!
//! ```text
//! cargo run --release --example sense_induction
//! ```

use bio_onto_enrich::cluster::{Algorithm, InternalIndex};
use bio_onto_enrich::corpus::context::ContextScope;
use bio_onto_enrich::corpus::synth::mshwsd::{MshWsdConfig, MshWsdDataset};
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::senses::{Representation, SenseInducer, SenseInducerConfig};

fn main() {
    let data = MshWsdDataset::generate(
        Language::English,
        &MshWsdConfig {
            n_entities: 12,
            snippets_per_sense: 40,
            ..Default::default()
        },
    );
    let inducer = SenseInducer::new(
        &data.corpus,
        SenseInducerConfig {
            representation: Representation::BagOfWords,
            scope: ContextScope::Document,
            algorithm: Algorithm::Rbr,
            index: InternalIndex::Ek,
            ..Default::default()
        },
    );

    let mut correct = 0;
    for entity in &data.entities {
        let id = data
            .corpus
            .vocab()
            .get(entity.surface_text())
            .expect("interned");
        let senses = inducer.induce(&[id], true);
        let mark = if senses.k == entity.k { "ok " } else { "MISS" };
        println!(
            "[{mark}] {:<12} gold k = {}  predicted k = {}",
            entity.surface_text(),
            entity.k,
            senses.k
        );
        for concept in &senses.concepts {
            let labels: Vec<&str> = concept
                .features
                .iter()
                .filter_map(|&(dim, _)| inducer.feature_label(dim))
                .take(5)
                .collect();
            println!(
                "       sense {} ({} contexts): {}",
                concept.cluster,
                concept.support,
                labels.join(", ")
            );
        }
        if senses.k == entity.k {
            correct += 1;
        }
    }
    println!(
        "\naccuracy: {}/{} = {:.1}% (paper reports 93.1% on MSH WSD)",
        correct,
        data.entities.len(),
        100.0 * correct as f64 / data.entities.len() as f64
    );
}
