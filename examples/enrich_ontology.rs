//! Re-place held-out "new" terms in a MeSH-like ontology — the paper's
//! §3(ii) scenario end to end, including applying the winning proposition
//! as an actual enrichment edit.
//!
//! ```text
//! cargo run --release --example enrich_ontology
//! ```

use bio_onto_enrich::eval::exp_linkage_case;
use bio_onto_enrich::eval::world::{World, WorldConfig};
use bio_onto_enrich::ontology::edit::{apply, EnrichmentOp};
use bio_onto_enrich::workflow::linkage::{LinkerConfig, SemanticLinker};
use bio_onto_enrich::workflow::termex::candidates::CandidateOptions;
use bio_onto_enrich::workflow::termex::{TermExtractor, TermMeasure};

fn main() {
    let world = World::generate(&WorldConfig {
        n_concepts: 150,
        n_holdout: 10,
        abstracts_per_concept: 5,
        ..Default::default()
    });
    println!(
        "world: {} concepts ({} held out), corpus of {} abstracts / {} tokens\n",
        world.full_ontology.len(),
        world.holdout.len(),
        world.corpus.len(),
        world.corpus.token_count()
    );

    // Table-3 style case study for the first held-out term.
    let case = exp_linkage_case::run(&world, 0, 200);
    println!("{}", exp_linkage_case::render(&case));

    // Apply the best concept-bearing proposition as a real edit: add the
    // candidate as a son of the proposed concept.
    let extractor = TermExtractor::new(&world.corpus, CandidateOptions::default());
    let candidates: Vec<String> = extractor
        .top(&world.corpus, TermMeasure::LidfValue, 200)
        .into_iter()
        .map(|t| t.surface)
        .collect();
    let linker = SemanticLinker::with_candidates(
        &world.corpus,
        &world.reduced_ontology,
        LinkerConfig::default(),
        &candidates,
    );
    let held = &world.holdout[0];
    let props = linker.propose(&held.surface);
    let Some(best) = props.iter().find(|p| !p.concepts.is_empty()) else {
        println!("no concept-bearing proposition for {:?}", held.surface);
        return;
    };
    let op = EnrichmentOp::AddChild {
        parent: best.concepts[0],
        preferred: held.surface.clone(),
        synonyms: vec![],
    };
    let (enriched, log) = apply(&world.reduced_ontology, &[op]).expect("edit applies");
    println!(
        "applied: added {:?} under {:?} (new concept {}, ontology now {} concepts)",
        held.surface,
        best.term,
        log[0].concept,
        enriched.len()
    );
    assert!(enriched.contains_term(&held.surface));
}
