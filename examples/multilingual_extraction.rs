//! Biomedical term extraction in English, French and Spanish — the
//! lexical/syntactic half of the workflow (BIOTEX measures over the
//! language-specific linguistic patterns).
//!
//! ```text
//! cargo run --example multilingual_extraction
//! ```

use bio_onto_enrich::corpus::corpus::CorpusBuilder;
use bio_onto_enrich::textkit::Language;
use bio_onto_enrich::workflow::termex::candidates::CandidateOptions;
use bio_onto_enrich::workflow::termex::{TermExtractor, TermMeasure};

fn main() {
    let samples = [
        (
            Language::English,
            vec![
                "Acute corneal injuries damage the epithelium. Corneal injuries require \
                 amniotic membrane grafts. The amniotic membrane supports healing.",
                "Chronic corneal injuries scar the epithelium. Amniotic membrane grafts \
                 restore vision after corneal injuries.",
            ],
        ),
        (
            Language::French,
            vec![
                "L'hépatite chronique touche le foie. L'hépatite chronique provoque une \
                 cirrhose du foie. La cirrhose du foie reste grave.",
                "Une hépatite chronique entraîne la cirrhose du foie. Le traitement de \
                 l'hépatite chronique progresse.",
            ],
        ),
        (
            Language::Spanish,
            vec![
                "La infección crónica afecta el hígado. La infección crónica produce \
                 cirrosis del hígado. La cirrosis del hígado es grave.",
                "Una infección crónica causa la cirrosis del hígado. El tratamiento de la \
                 infección crónica mejora.",
            ],
        ),
    ];

    for (lang, texts) in samples {
        println!("=== {} ===", lang.name());
        let mut b = CorpusBuilder::new(lang);
        for t in &texts {
            b.add_text(t);
        }
        let corpus = b.build();
        let extractor = TermExtractor::new(&corpus, CandidateOptions::default());
        for measure in [TermMeasure::CValue, TermMeasure::LidfValue] {
            let top = extractor.top(&corpus, measure, 5);
            println!("  top-5 by {}:", measure.name());
            for t in top {
                println!("    {:<28} {:.3}", t.surface, t.score);
            }
        }
        println!();
    }
}
