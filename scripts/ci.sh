#!/usr/bin/env bash
# Offline-safe CI gate: everything here runs without network access.
# The workspace has no external dependencies, so no `cargo fetch` step
# is needed — `--offline` guards against accidental registry lookups.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# A hung test run must fail CI, not stall it: the tier-1 suites run
# under a generous wall-clock cap (the chaos matrix sleeps through its
# stall faults, so the cap stays far above the honest runtime).
TEST_TIMEOUT="${BOE_CI_TEST_TIMEOUT:-1800}"

run cargo build --release --offline
run timeout "$TEST_TIMEOUT" cargo test -q --offline
run timeout "$TEST_TIMEOUT" cargo test -q --workspace --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo fmt --check

# Parallel-runtime gates: bit-identical output across thread counts
# (full pipeline + similarity matrix), the randomized Step I
# serial-vs-parallel equality sweep (EN/FR/ES raw corpora, 1 vs 8
# threads, byte-level vocabulary/candidate/graph comparison), and a
# small perf-report smoke run with the runtime forced to 2 threads.
# Benches always run with chaos explicitly disarmed — an inherited
# BOE_CHAOS plan would poison the timings (perf_report refuses anyway).
run cargo test -q --offline --test parallel_determinism
run timeout "$TEST_TIMEOUT" cargo test -q --offline --test step1_parallel_equality
run env BOE_THREADS=2 BOE_CHAOS=off cargo run --release --offline -p boe-bench --bin perf_report -- --smoke --out target/BENCH_smoke.json

# Resource-governance gates: budgets trip into truncated reports (never
# aborts), `boe-par` early exit keeps a deterministic prefix, and the
# full chaos matrix (every site × mode × {1,8} threads) stays
# bit-identical across thread counts.
run timeout "$TEST_TIMEOUT" cargo test -q --offline --test governor
run timeout "$TEST_TIMEOUT" cargo test -q --offline -p boe-par --test early_exit
run timeout "$TEST_TIMEOUT" cargo test -q --offline --test chaos_matrix

# Occurrence-index gates: the positional index must reproduce the naive
# corpus scan bit for bit — at the resolver level (randomized corpora,
# accented surfaces) and at the EnrichmentReport level (1 and 8 threads).
run cargo test -q --offline -p boe-corpus --test occurrence_index_equality
run cargo test -q --offline --test occurrence_equality

echo "ci: all checks passed"
