#!/usr/bin/env bash
# Offline-safe CI gate: everything here runs without network access.
# The workspace has no external dependencies, so no `cargo fetch` step
# is needed — `--offline` guards against accidental registry lookups.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo test -q --workspace --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo fmt --check

# Parallel-runtime gates: bit-identical output across thread counts, and
# a small perf-report smoke run with the runtime forced to 2 threads
# (covers the indexed inventory/occurrence-resolution bench stages).
run cargo test -q --offline --test parallel_determinism
run env BOE_THREADS=2 cargo run --release --offline -p boe-bench --bin perf_report -- --smoke --out target/BENCH_smoke.json

# Occurrence-index gates: the positional index must reproduce the naive
# corpus scan bit for bit — at the resolver level (randomized corpora,
# accented surfaces) and at the EnrichmentReport level (1 and 8 threads).
run cargo test -q --offline -p boe-corpus --test occurrence_index_equality
run cargo test -q --offline --test occurrence_equality

echo "ci: all checks passed"
