#!/usr/bin/env bash
# Offline-safe CI gate: everything here runs without network access.
# The workspace has no external dependencies, so no `cargo fetch` step
# is needed — `--offline` guards against accidental registry lookups.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo test -q --workspace --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo fmt --check

echo "ci: all checks passed"
