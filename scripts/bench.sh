#!/usr/bin/env bash
# Build the release workspace and write the machine-readable perf report
# (BENCH_5.json) for the Step I–IV hot paths: the parallel Step I
# kernels (corpus_ingest_*, term_extraction_*, tergraph_*), the indexed
# vs naive occurrence-resolution and inventory-build stages, and the
# Step III/IV scoring kernels.
#
# Usage:
#   scripts/bench.sh            # full run, writes BENCH_5.json at repo root
#   scripts/bench.sh --smoke    # small corpus + short thread sweep (CI)
#
# Any extra arguments are passed through to the perf_report binary
# (e.g. `--out PATH`). Thread-scaling stages are only meaningful on
# hosts with more than one core; the JSON records `threads_available`
# and omits the `speedup_*_Nt` keys entirely on single-core hosts.
set -euo pipefail
cd "$(dirname "$0")/.."

# Never bench with a chaos plan armed: injected faults poison timings,
# and perf_report refuses to run if it sees one.
export BOE_CHAOS=off

cargo build --release --offline -p boe-bench
cargo run --release --offline -p boe-bench --bin perf_report -- "$@"
