#!/usr/bin/env bash
# Build the release workspace and write the machine-readable perf report
# (BENCH_3.json) for the Step I–IV hot paths, including the indexed
# vs naive occurrence-resolution and inventory-build stages
# (`speedup_inventory_build_indexed_vs_naive` is the headline number).
#
# Usage:
#   scripts/bench.sh            # full run, writes BENCH_3.json at repo root
#   scripts/bench.sh --smoke    # small corpus + short thread sweep (CI)
#
# Any extra arguments are passed through to the perf_report binary
# (e.g. `--out PATH`). Thread-scaling stages are only meaningful on
# hosts with more than one core; the JSON records `threads_available`.
set -euo pipefail
cd "$(dirname "$0")/.."

# Never bench with a chaos plan armed: injected faults poison timings,
# and perf_report refuses to run if it sees one.
export BOE_CHAOS=off

cargo build --release --offline -p boe-bench
cargo run --release --offline -p boe-bench --bin perf_report -- "$@"
