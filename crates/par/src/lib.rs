//! # boe-par
//!
//! A deterministic, zero-dependency data-parallel runtime built on
//! [`std::thread::scope`].
//!
//! The workspace's hot paths (similarity matrices, per-term pipeline
//! fan-out, linkage scoring) are embarrassingly parallel *per item*, but
//! research code must stay reproducible: the same input must yield the
//! same output regardless of the machine's core count. Every combinator
//! here therefore guarantees the **determinism contract**:
//!
//! * items are split into contiguous index chunks, each worker computes
//!   its chunk independently, and results are reassembled **in input
//!   order** — the output `Vec` is identical to the serial
//!   `items.iter().map(f).collect()` for any pure `f`;
//! * reductions ([`par_map_reduce`]) fold the mapped values serially in
//!   index order, so floating-point accumulation associates exactly as
//!   the serial loop would — results are bit-identical, not merely
//!   "close";
//! * a worker panic is re-raised on the calling thread (first panicking
//!   chunk in index order), matching the serial behaviour under
//!   `catch_unwind`.
//!
//! The thread count comes from, in priority order: a process-wide
//! programmatic override ([`set_threads`]), the `BOE_THREADS` environment
//! variable, and finally [`std::thread::available_parallelism`]. A count
//! of 1 (or fewer items than [`MIN_PARALLEL_ITEMS`]) short-circuits to
//! the plain serial loop — no threads are spawned at all, so `BOE_THREADS=1`
//! is a true serial baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Below this many items the combinators run serially even when more
/// threads are available: spawning scoped threads costs tens of
/// microseconds, which dwarfs tiny workloads. Callers with very cheap
/// per-item work should raise the bar further via [`par_map_min`].
pub const MIN_PARALLEL_ITEMS: usize = 2;

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the thread count for the whole process (benchmarks and
/// determinism tests switch between serial and parallel runs without
/// touching the environment). `None` restores the default resolution
/// ([`threads`]); `Some(0)` is treated as `Some(1)`.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::SeqCst);
}

/// The resolved worker-thread count: the [`set_threads`] override if set,
/// else `BOE_THREADS` (when it parses to ≥ 1), else
/// [`std::thread::available_parallelism`], else 1.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("BOE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Map `f` over `0..n` in parallel, returning results in index order.
///
/// Bit-identical to `(0..n).map(f).collect()` for pure `f`.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_min(n, MIN_PARALLEL_ITEMS, f)
}

/// [`par_map_indexed`] with a custom serial threshold: runs serially
/// unless `n >= min_items`. Use a high threshold for cheap per-item work
/// (e.g. a single dot product) where thread-spawn overhead would win.
pub fn par_map_indexed_min<U, F>(n: usize, min_items: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 || n < min_items.max(MIN_PARALLEL_ITEMS) {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                // Keep the first panic (lowest chunk index) — the one the
                // serial loop would have hit first.
                Err(payload) if panic.is_none() => panic = Some(payload),
                Err(_) => {}
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        out
    })
}

/// Map `f` over a slice in parallel, returning results in input order.
///
/// Bit-identical to `items.iter().map(f).collect()` for pure `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// [`par_map`] with a custom serial threshold (see
/// [`par_map_indexed_min`]).
pub fn par_map_min<T, U, F>(items: &[T], min_items: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_min(items.len(), min_items, |i| f(&items[i]))
}

/// Map in parallel, then fold the mapped values **serially in index
/// order** — the reduction associates exactly like the serial
/// `items.iter().map(map).fold(init, fold)`, so floating-point sums are
/// bit-identical to the serial loop at any thread count.
pub fn par_map_reduce<T, U, A, M, R>(items: &[T], map: M, init: A, fold: R) -> A
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    par_map(items, map).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_threads`/env are process-global; serialize the tests that
    /// touch them.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(n));
        let out = f();
        set_threads(None);
        out
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3).collect();
        for nt in [1, 2, 3, 8] {
            let par = with_threads(nt, || par_map(&items, |&x| x * 3));
            assert_eq!(par, serial, "threads = {nt}");
        }
    }

    #[test]
    fn par_map_indexed_matches_serial() {
        let serial: Vec<String> = (0..77).map(|i| format!("#{i}")).collect();
        let par = with_threads(4, || par_map_indexed(77, |i| format!("#{i}")));
        assert_eq!(par, serial);
    }

    #[test]
    fn float_reduction_is_bit_identical() {
        // A sum whose value depends on association order: different
        // magnitudes so (a+b)+c != a+(b+c) in general.
        let items: Vec<f64> = (0..10_000)
            .map(|i| {
                if i % 3 == 0 {
                    1e16
                } else {
                    1.0 + i as f64 * 1e-7
                }
            })
            .collect();
        let serial = items.iter().map(|&x| x * 1.5).fold(0.0f64, |a, x| a + x);
        for nt in [1, 2, 5, 16] {
            let par = with_threads(nt, || {
                par_map_reduce(&items, |&x| x * 1.5, 0.0f64, |a, x| a + x)
            });
            assert_eq!(serial.to_bits(), par.to_bits(), "threads = {nt}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(with_threads(8, || par_map(&empty, |&x| x)).is_empty());
        assert_eq!(with_threads(8, || par_map(&[41u32], |&x| x + 1)), vec![42]);
        assert_eq!(par_map_reduce(&empty, |&x: &u32| x, 7u32, |a, x| a + x), 7);
    }

    #[test]
    fn min_items_threshold_forces_serial() {
        // Results are identical either way; this just exercises the path.
        let items: Vec<u64> = (0..100).collect();
        let out = with_threads(8, || par_map_min(&items, 1000, |&x| x + 1));
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let caught = with_threads(4, || {
            std::panic::catch_unwind(|| {
                par_map(&items, |&x| {
                    if x == 40 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn override_and_env_resolution() {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(Some(0)); // clamps to 1
        assert_eq!(threads(), 1);
        set_threads(None);
        std::env::set_var("BOE_THREADS", "5");
        assert_eq!(threads(), 5);
        std::env::set_var("BOE_THREADS", "not a number");
        assert!(threads() >= 1); // falls through to available_parallelism
        std::env::remove_var("BOE_THREADS");
        assert!(threads() >= 1);
    }

    #[test]
    fn chunks_cover_uneven_splits() {
        // n not divisible by worker count.
        for n in [2usize, 3, 7, 13, 97] {
            let out = with_threads(4, || par_map_indexed(n, |i| i));
            assert_eq!(out, (0..n).collect::<Vec<usize>>(), "n = {n}");
        }
    }
}
