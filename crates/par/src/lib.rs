//! # boe-par
//!
//! A deterministic, zero-dependency data-parallel runtime built on
//! [`std::thread::scope`].
//!
//! The workspace's hot paths (similarity matrices, per-term pipeline
//! fan-out, linkage scoring) are embarrassingly parallel *per item*, but
//! research code must stay reproducible: the same input must yield the
//! same output regardless of the machine's core count. Every combinator
//! here therefore guarantees the **determinism contract**:
//!
//! * items are split into contiguous index chunks, each worker computes
//!   its chunk independently, and results are reassembled **in input
//!   order** — the output `Vec` is identical to the serial
//!   `items.iter().map(f).collect()` for any pure `f`;
//! * reductions ([`par_map_reduce`]) fold the mapped values serially in
//!   index order, so floating-point accumulation associates exactly as
//!   the serial loop would — results are bit-identical, not merely
//!   "close";
//! * a worker panic is re-raised on the calling thread (first panicking
//!   chunk in index order), matching the serial behaviour under
//!   `catch_unwind`.
//!
//! The thread count comes from, in priority order: a process-wide
//! programmatic override ([`set_threads`]), the `BOE_THREADS` environment
//! variable, and finally [`std::thread::available_parallelism`]. A count
//! of 1 (or fewer items than [`MIN_PARALLEL_ITEMS`]) short-circuits to
//! the plain serial loop — no threads are spawned at all, so `BOE_THREADS=1`
//! is a true serial baseline.
//!
//! ## Cooperative early exit
//!
//! The `try_*` combinators ([`try_par_map`], [`try_par_map_indexed`],
//! [`try_par_map_reduce`]) additionally poll a caller-supplied stop
//! predicate **before every item**. When it first returns `true` the
//! workers stop and the call returns [`ParOutcome::Interrupted`] holding
//! the **deterministic completed prefix**: the longest contiguous run of
//! leading items that finished. Because chunks are contiguous and
//! reassembly is in order, that prefix is always bit-identical to the
//! first `prefix.len()` results of the serial loop — work completed
//! beyond the first gap is discarded rather than surfaced out of order.
//! A worker panic still propagates (first panicking chunk in index
//! order) and the scoped join guarantees no interrupted or poisoned
//! worker can leak or deadlock the scope.
//!
//! Every worker (and the serial short-circuit) hits the
//! `boe_chaos::sites::PAR_WORKER` injection site once before starting
//! its chunk, keyed by the chunk's start index — a no-op unless a chaos
//! plan is armed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Below this many items the combinators run serially even when more
/// threads are available: spawning scoped threads costs tens of
/// microseconds, which dwarfs tiny workloads. Callers with very cheap
/// per-item work should raise the bar further via [`par_map_min`].
pub const MIN_PARALLEL_ITEMS: usize = 2;

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the thread count for the whole process (benchmarks and
/// determinism tests switch between serial and parallel runs without
/// touching the environment). `None` restores the default resolution
/// ([`threads`]); `Some(0)` is treated as `Some(1)`.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::SeqCst);
}

/// The resolved worker-thread count: the [`set_threads`] override if set,
/// else `BOE_THREADS` (when it parses to ≥ 1), else
/// [`std::thread::available_parallelism`], else 1.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("BOE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Outcome of a cancellable parallel map: either every item completed,
/// or the stop predicate fired and only a contiguous leading prefix of
/// results is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParOutcome<U> {
    /// All `n` results, in input order.
    Complete(Vec<U>),
    /// The stop predicate fired; `prefix` holds the results of items
    /// `0..prefix.len()`, bit-identical to the serial loop's first
    /// `prefix.len()` outputs. Items beyond the first gap are discarded
    /// even if some later chunk had finished them.
    Interrupted {
        /// The deterministic completed prefix, in input order.
        prefix: Vec<U>,
    },
}

impl<U> ParOutcome<U> {
    /// Whether the stop predicate cut the run short.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, ParOutcome::Interrupted { .. })
    }

    /// The results regardless of outcome (full vector or prefix).
    pub fn into_results(self) -> Vec<U> {
        match self {
            ParOutcome::Complete(v) => v,
            ParOutcome::Interrupted { prefix } => prefix,
        }
    }
}

/// Map `f` over `0..n` in parallel, returning results in index order.
///
/// Bit-identical to `(0..n).map(f).collect()` for pure `f`.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_min(n, MIN_PARALLEL_ITEMS, f)
}

/// [`par_map_indexed`] with a custom serial threshold: runs serially
/// unless `n >= min_items`. Use a high threshold for cheap per-item work
/// (e.g. a single dot product) where thread-spawn overhead would win.
pub fn par_map_indexed_min<U, F>(n: usize, min_items: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    match chunked_run(n, min_items, None::<&fn() -> bool>, f) {
        ParOutcome::Complete(v) => v,
        // Without a stop predicate no worker ever stops early.
        ParOutcome::Interrupted { .. } => unreachable!("no stop predicate"),
    }
}

/// [`par_map_indexed`] with cooperative cancellation: `should_stop` is
/// polled before every item; once it returns `true` the workers wind
/// down and the deterministic completed prefix is returned. The
/// predicate must be monotonic (once `true`, stay `true`) for the
/// prefix guarantee to be meaningful.
pub fn try_par_map_indexed<U, F, S>(n: usize, should_stop: &S, f: F) -> ParOutcome<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
    S: Fn() -> bool + Sync,
{
    chunked_run(n, MIN_PARALLEL_ITEMS, Some(should_stop), f)
}

/// The shared chunked executor behind both the plain and the
/// cancellable maps. `stop` is polled before each item; `None` compiles
/// down to the unconditional loop.
fn chunked_run<U, F, S>(n: usize, min_items: usize, stop: Option<&S>, f: F) -> ParOutcome<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
    S: Fn() -> bool + Sync,
{
    // One worker's share: compute items `lo..hi`, polling the stop
    // predicate before each; `true` in the flag means the whole range
    // completed.
    let run_range = |lo: usize, hi: usize| -> (Vec<U>, bool) {
        boe_chaos::inject_keyed(boe_chaos::sites::PAR_WORKER, lo as u64);
        // Trailing chunks can be empty when n isn't divisible by the
        // worker count (lo past the end).
        let mut part = Vec::with_capacity(hi.saturating_sub(lo));
        for i in lo..hi {
            if stop.is_some_and(|s| s()) {
                return (part, false);
            }
            part.push(f(i));
        }
        (part, true)
    };

    let workers = threads().min(n);
    if workers <= 1 || n < min_items.max(MIN_PARALLEL_ITEMS) {
        let (part, complete) = run_range(0, n);
        return if complete {
            ParOutcome::Complete(part)
        } else {
            ParOutcome::Interrupted { prefix: part }
        };
    }
    let chunk = n.div_ceil(workers);
    let run_range = &run_range;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                s.spawn(move || run_range(lo, hi))
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        let mut interrupted = false;
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok((part, complete)) => {
                    // Results after the first gap are discarded: the
                    // returned prefix must be contiguous from item 0.
                    if !interrupted {
                        out.extend(part);
                        if !complete {
                            interrupted = true;
                        }
                    }
                }
                // Keep the first panic (lowest chunk index) — the one the
                // serial loop would have hit first.
                Err(payload) if panic.is_none() => panic = Some(payload),
                Err(_) => {}
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        if interrupted {
            ParOutcome::Interrupted { prefix: out }
        } else {
            ParOutcome::Complete(out)
        }
    })
}

/// Map `f` over a slice in parallel, returning results in input order.
///
/// Bit-identical to `items.iter().map(f).collect()` for pure `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// [`par_map`] with a custom serial threshold (see
/// [`par_map_indexed_min`]).
pub fn par_map_min<T, U, F>(items: &[T], min_items: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_min(items.len(), min_items, |i| f(&items[i]))
}

/// Map in parallel, then fold the mapped values **serially in index
/// order** — the reduction associates exactly like the serial
/// `items.iter().map(map).fold(init, fold)`, so floating-point sums are
/// bit-identical to the serial loop at any thread count.
pub fn par_map_reduce<T, U, A, M, R>(items: &[T], map: M, init: A, fold: R) -> A
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    par_map(items, map).into_iter().fold(init, fold)
}

/// [`par_map`] with cooperative cancellation (see
/// [`try_par_map_indexed`]): returns the deterministic completed prefix
/// when `should_stop` fires mid-run.
pub fn try_par_map<T, U, F, S>(items: &[T], should_stop: &S, f: F) -> ParOutcome<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
    S: Fn() -> bool + Sync,
{
    try_par_map_indexed(items.len(), should_stop, |i| f(&items[i]))
}

/// Result of a cancellable map-reduce: the fold over however many items
/// completed before the stop predicate fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceOutcome<A> {
    /// The folded accumulator over items `0..consumed`.
    pub value: A,
    /// How many leading items were mapped and folded.
    pub consumed: usize,
    /// Whether the stop predicate cut the run short
    /// (`consumed < items.len()`).
    pub interrupted: bool,
}

/// [`par_map_reduce`] with cooperative cancellation: maps with early
/// exit, then folds the deterministic completed prefix serially in index
/// order. The partial fold is bit-identical to the serial loop stopped
/// after [`ReduceOutcome::consumed`] items.
pub fn try_par_map_reduce<T, U, A, M, R, S>(
    items: &[T],
    should_stop: &S,
    map: M,
    init: A,
    fold: R,
) -> ReduceOutcome<A>
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: FnMut(A, U) -> A,
    S: Fn() -> bool + Sync,
{
    let (mapped, interrupted) = match try_par_map(items, should_stop, map) {
        ParOutcome::Complete(v) => (v, false),
        ParOutcome::Interrupted { prefix } => (prefix, true),
    };
    let consumed = mapped.len();
    ReduceOutcome {
        value: mapped.into_iter().fold(init, fold),
        consumed,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_threads`/env are process-global; serialize the tests that
    /// touch them.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(n));
        let out = f();
        set_threads(None);
        out
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3).collect();
        for nt in [1, 2, 3, 8] {
            let par = with_threads(nt, || par_map(&items, |&x| x * 3));
            assert_eq!(par, serial, "threads = {nt}");
        }
    }

    #[test]
    fn par_map_indexed_matches_serial() {
        let serial: Vec<String> = (0..77).map(|i| format!("#{i}")).collect();
        let par = with_threads(4, || par_map_indexed(77, |i| format!("#{i}")));
        assert_eq!(par, serial);
    }

    #[test]
    fn float_reduction_is_bit_identical() {
        // A sum whose value depends on association order: different
        // magnitudes so (a+b)+c != a+(b+c) in general.
        let items: Vec<f64> = (0..10_000)
            .map(|i| {
                if i % 3 == 0 {
                    1e16
                } else {
                    1.0 + i as f64 * 1e-7
                }
            })
            .collect();
        let serial = items.iter().map(|&x| x * 1.5).fold(0.0f64, |a, x| a + x);
        for nt in [1, 2, 5, 16] {
            let par = with_threads(nt, || {
                par_map_reduce(&items, |&x| x * 1.5, 0.0f64, |a, x| a + x)
            });
            assert_eq!(serial.to_bits(), par.to_bits(), "threads = {nt}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(with_threads(8, || par_map(&empty, |&x| x)).is_empty());
        assert_eq!(with_threads(8, || par_map(&[41u32], |&x| x + 1)), vec![42]);
        assert_eq!(par_map_reduce(&empty, |&x: &u32| x, 7u32, |a, x| a + x), 7);
    }

    #[test]
    fn min_items_threshold_forces_serial() {
        // Results are identical either way; this just exercises the path.
        let items: Vec<u64> = (0..100).collect();
        let out = with_threads(8, || par_map_min(&items, 1000, |&x| x + 1));
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let caught = with_threads(4, || {
            std::panic::catch_unwind(|| {
                par_map(&items, |&x| {
                    if x == 40 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn override_and_env_resolution() {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(Some(0)); // clamps to 1
        assert_eq!(threads(), 1);
        set_threads(None);
        std::env::set_var("BOE_THREADS", "5");
        assert_eq!(threads(), 5);
        std::env::set_var("BOE_THREADS", "not a number");
        assert!(threads() >= 1); // falls through to available_parallelism
        std::env::remove_var("BOE_THREADS");
        assert!(threads() >= 1);
    }

    #[test]
    fn chunks_cover_uneven_splits() {
        // n not divisible by worker count.
        for n in [2usize, 3, 7, 13, 97] {
            let out = with_threads(4, || par_map_indexed(n, |i| i));
            assert_eq!(out, (0..n).collect::<Vec<usize>>(), "n = {n}");
        }
    }

    #[test]
    fn try_map_without_stop_is_complete() {
        let items: Vec<usize> = (0..50).collect();
        let never = || false;
        for nt in [1, 4] {
            let out = with_threads(nt, || try_par_map(&items, &never, |&x| x * 2));
            assert_eq!(
                out,
                ParOutcome::Complete((0..50).map(|x| x * 2).collect()),
                "threads = {nt}"
            );
        }
    }

    #[test]
    fn try_map_stop_always_yields_empty_prefix() {
        let items: Vec<usize> = (0..64).collect();
        let always = || true;
        for nt in [1, 2, 8] {
            let out = with_threads(nt, || try_par_map(&items, &always, |&x| x));
            assert_eq!(
                out,
                ParOutcome::Interrupted { prefix: Vec::new() },
                "threads = {nt}"
            );
        }
    }

    #[test]
    fn interrupted_prefix_is_serial_prefix() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..96).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x + 7).collect();
        for nt in [1, 2, 3, 8] {
            // Trip after a fixed number of polls; the exact cut point
            // varies with scheduling but the prefix must always be a
            // leading slice of the serial output.
            let polls = AtomicUsize::new(0);
            let stop = || polls.fetch_add(1, Ordering::SeqCst) >= 10;
            let out = with_threads(nt, || try_par_map(&items, &stop, |&x| x + 7));
            let prefix = out.into_results();
            assert!(prefix.len() < items.len(), "threads = {nt}");
            assert_eq!(prefix, serial[..prefix.len()], "threads = {nt}");
        }
    }

    #[test]
    fn try_reduce_partial_fold_matches_serial_prefix() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<f64> = (0..80).map(|i| 1.0 + i as f64 * 1e-3).collect();
        let polls = AtomicUsize::new(0);
        let stop = || polls.fetch_add(1, Ordering::SeqCst) >= 12;
        let out = with_threads(4, || {
            try_par_map_reduce(&items, &stop, |&x| x * 2.0, 0.0f64, |a, x| a + x)
        });
        assert!(out.interrupted);
        assert!(out.consumed < items.len());
        let serial = items[..out.consumed]
            .iter()
            .map(|&x| x * 2.0)
            .fold(0.0f64, |a, x| a + x);
        assert_eq!(out.value.to_bits(), serial.to_bits());
    }

    #[test]
    fn try_map_panic_beats_interruption() {
        let items: Vec<usize> = (0..64).collect();
        let always = || true;
        let caught = with_threads(4, || {
            std::panic::catch_unwind(|| {
                try_par_map(&items, &always, |&x| {
                    if x == 0 {
                        panic!("poisoned worker");
                    }
                    x
                })
            })
        });
        // Stop-always means item 0 is never computed, so no panic fires
        // and we get a clean empty prefix — but a panic injected before
        // the poll must still propagate. Exercise both shapes.
        assert!(caught.is_ok());
        let caught2 = with_threads(4, || {
            std::panic::catch_unwind(|| {
                let hits = std::sync::atomic::AtomicUsize::new(0);
                let stop = || hits.fetch_add(1, Ordering::SeqCst) >= 30;
                try_par_map(&items, &stop, |&x| {
                    if x == 1 {
                        panic!("poisoned worker");
                    }
                    x
                })
            })
        });
        let payload = caught2.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("poisoned"), "{msg}");
    }
}
