//! Property tests for the cooperative early-exit contract of
//! `try_par_map` / `try_par_map_reduce`:
//!
//! * an interrupted run always returns a contiguous *leading* prefix of
//!   the serial output, bit-identical item by item, at any thread count;
//! * a stop predicate that is already `true` yields an empty prefix at
//!   any thread count;
//! * a poisoned (panicking) worker propagates its panic to the caller
//!   without deadlocking the scope, interrupted or not.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use boe_par::{set_threads, try_par_map, try_par_map_reduce, ParOutcome};
use boe_rng::StdRng;

/// `set_threads` is process-global; serialize every test in this file.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _g = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(Some(n));
    let out = f();
    set_threads(None);
    out
}

/// A moderately expensive pure function so chunks take long enough for
/// stop predicates to actually land mid-run.
fn work(x: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(x);
    let mut acc = 0u64;
    for _ in 0..50 {
        acc = acc.wrapping_add(rng.next_u64());
    }
    acc
}

#[test]
fn interrupted_prefix_is_always_a_serial_prefix() {
    let mut seeds = StdRng::seed_from_u64(0xE4E7);
    for trial in 0..20 {
        let n = 16 + (seeds.next_u64() % 120) as usize;
        let items: Vec<u64> = (0..n as u64).map(|i| i ^ seeds.next_u64()).collect();
        let serial: Vec<u64> = items.iter().map(|&x| work(x)).collect();
        let trip_after = (seeds.next_u64() % (2 * n as u64)) as usize;
        for nt in [1usize, 2, 3, 8] {
            let polls = AtomicUsize::new(0);
            let stop = || polls.fetch_add(1, Ordering::SeqCst) >= trip_after;
            let out = with_threads(nt, || try_par_map(&items, &stop, |&x| work(x)));
            let prefix = out.into_results();
            assert!(
                prefix.len() <= items.len(),
                "trial {trial}, threads {nt}: prefix longer than input"
            );
            assert_eq!(
                prefix,
                serial[..prefix.len()],
                "trial {trial}, threads {nt}: prefix diverges from serial output"
            );
        }
    }
}

#[test]
fn stop_already_true_yields_empty_prefix_at_any_thread_count() {
    let items: Vec<u64> = (0..200).collect();
    let always = || true;
    for nt in [1usize, 2, 3, 5, 8, 16] {
        let out = with_threads(nt, || try_par_map(&items, &always, |&x| work(x)));
        assert_eq!(
            out,
            ParOutcome::Interrupted { prefix: Vec::new() },
            "threads = {nt}"
        );
    }
}

#[test]
fn reduce_prefix_fold_is_bit_identical_to_serial() {
    let items: Vec<f64> = (0..150).map(|i| 1.0 + (i as f64).sqrt() * 1e-3).collect();
    for nt in [1usize, 4, 8] {
        let polls = AtomicUsize::new(0);
        let stop = || polls.fetch_add(1, Ordering::SeqCst) >= 25;
        let out = with_threads(nt, || {
            try_par_map_reduce(&items, &stop, |&x| x * x, 0.0f64, |a, x| a + x)
        });
        let serial = items[..out.consumed]
            .iter()
            .map(|&x| x * x)
            .fold(0.0f64, |a, x| a + x);
        assert_eq!(
            out.value.to_bits(),
            serial.to_bits(),
            "threads = {nt}, consumed = {}",
            out.consumed
        );
        assert_eq!(out.interrupted, out.consumed < items.len());
    }
}

#[test]
fn poisoned_worker_propagates_without_deadlock() {
    let items: Vec<u64> = (0..96).collect();
    for nt in [1usize, 2, 8] {
        // A stop predicate that never fires before the poison index: the
        // panic must escape the scope (no hang) at every thread count.
        let never = || false;
        let caught = with_threads(nt, || {
            std::panic::catch_unwind(|| {
                try_par_map(&items, &never, |&x| {
                    if x == 50 {
                        panic!("poisoned at {x}");
                    }
                    work(x)
                })
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("poisoned"), "threads = {nt}: {msg}");
    }
}

#[test]
fn poisoned_worker_with_interruption_still_terminates() {
    // Both a mid-run stop *and* a poisoned worker: the call must
    // terminate (either outcome is acceptable depending on timing —
    // panic wins if the poisoned item ran) and never deadlock.
    let items: Vec<u64> = (0..96).collect();
    for nt in [2usize, 8] {
        let polls = AtomicUsize::new(0);
        let stop = || polls.fetch_add(1, Ordering::SeqCst) >= 8;
        let result = with_threads(nt, || {
            std::panic::catch_unwind(|| {
                try_par_map(&items, &stop, |&x| {
                    if x == 90 {
                        panic!("late poison");
                    }
                    work(x)
                })
            })
        });
        match result {
            Ok(outcome) => {
                let prefix = outcome.into_results();
                assert!(prefix.len() < items.len(), "threads = {nt}");
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                assert!(msg.contains("late poison"), "threads = {nt}: {msg}");
            }
        }
    }
}
