//! # boe-rng
//!
//! A small, dependency-free, deterministic pseudo-random number
//! generator used across the workspace for synthetic-data generation
//! (`boe-corpus`, `boe-ontology`, `boe-eval`), clustering seeds
//! (`boe-cluster`) and ML subsampling (`boe-ml`).
//!
//! The generator is **SplitMix64** (Steele, Lea & Flood, "Fast
//! splittable pseudorandom number generators", OOPSLA 2014): a 64-bit
//! state advanced by a Weyl constant and finalized with a
//! variant of the MurmurHash3 mixer. It passes BigCrush when used as a
//! plain sequence, is trivially seedable from a single `u64` (every
//! seed gives an independent-looking stream, including 0), and is many
//! times faster than a cryptographic generator — exactly what
//! reproducible experiments need and nothing more.
//!
//! The API mirrors the subset of the `rand` crate the workspace used
//! (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`) so call sites read
//! identically; only the import changes. This keeps the build hermetic:
//! no network access is needed to resolve or compile the workspace.
//!
//! Not suitable for cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator.
///
/// The name matches the `rand::rngs::StdRng` it replaces so existing
/// call sites only swap their import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// A generator seeded with `seed`. Every seed — including 0 — yields
    /// a full-quality stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value of `T` (see [`Random`] for the
    /// supported types).
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    /// An empty range is a caller bug; it returns `lo` in release builds
    /// rather than aborting a long experiment (`debug_assert!` in
    /// debug builds).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// A uniform `u64` below `bound` (`bound = 0` returns 0).
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection sampling: discard the final partial block so every
        // residue is equally likely. The zone covers > 50% of the u64
        // space, so the expected number of draws is < 2.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Random {
    /// A uniformly distributed value.
    fn random(rng: &mut StdRng) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with the standard 53-bit construction.
    fn random(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// A uniform element of the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                debug_assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty range {lo}..={hi}");
                if lo >= hi {
                    return lo;
                }
                // hi - lo + 1 cannot overflow u64 for the types below
                // unless the range covers the whole u64 domain, which no
                // caller needs; saturate to stay total.
                let span = ((hi - lo) as u64).saturating_add(1);
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                debug_assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty range {lo}..={hi}");
                if lo >= hi {
                    return lo;
                }
                let span = ((hi as i128 - lo as i128) as u64).saturating_add(1);
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_bits_are_balanced() {
        // Cheap avalanche sanity check: across many outputs each bit
        // position should be set roughly half the time.
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0u32; 64];
        for _ in 0..4096 {
            let x = rng.next_u64();
            for (b, c) in counts.iter_mut().enumerate() {
                *c += ((x >> b) & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let rate = c as f64 / 4096.0;
            assert!((rate - 0.5).abs() < 0.05, "bit {b} rate {rate}");
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_range_is_total() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 2000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
        let mut rng = StdRng::seed_from_u64(12);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
