//! Linear SVM trained with Pegasos (primal stochastic sub-gradient
//! descent, Shalev-Shwartz et al. 2007).

use crate::dataset::Dataset;
use crate::model::Classifier;
use boe_rng::StdRng;

/// Linear SVM classifier.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularization parameter λ.
    pub lambda: f64,
    /// Number of Pegasos iterations.
    pub iterations: usize,
    /// RNG seed for example sampling.
    pub seed: u64,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm {
            lambda: 1e-3,
            iterations: 20_000,
            seed: 0,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl LinearSvm {
    /// New SVM with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signed margin of a row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, train: &Dataset) {
        let n = train.len();
        let d = train.n_features();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        if n == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for t in 1..=self.iterations {
            let i = rng.gen_range(0..n);
            let row = train.row(i);
            let y = if train.label(i) { 1.0 } else { -1.0 };
            let eta = 1.0 / (self.lambda * t as f64);
            let margin = y * self.decision(row);
            // w ← (1 − ηλ)w [+ ηyx if margin violated]
            let shrink = 1.0 - eta * self.lambda;
            for w in &mut self.weights {
                *w *= shrink;
            }
            if margin < 1.0 {
                for (w, x) in self.weights.iter_mut().zip(row) {
                    *w += eta * y * x;
                }
                self.bias += eta * y;
            }
        }
    }

    fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) >= 0.0
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        // Platt-style squashing of the margin (not calibrated, monotone).
        1.0 / (1.0 + (-self.decision(row)).exp())
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::predict_all;

    fn separable(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = (i % 10) as f64 / 10.0;
            let b = ((i * 7) % 10) as f64 / 10.0;
            rows.push(vec![a, b]);
            labels.push(a > b);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn learns_separable_data() {
        let d = separable(100);
        let mut m = LinearSvm::new();
        m.fit(&d);
        let acc = predict_all(&m, &d)
            .iter()
            .zip(d.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let d = separable(50);
        let mut m = LinearSvm::new();
        m.fit(&d);
        let row = [0.9, 0.0];
        assert_eq!(m.predict(&row), m.decision(&row) >= 0.0);
        assert!(m.predict_proba(&row) > 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = separable(50);
        let mut a = LinearSvm::new();
        let mut b = LinearSvm::new();
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.decision(&[0.5, 0.2]), b.decision(&[0.5, 0.2]));
    }

    #[test]
    fn empty_training_is_safe() {
        let mut m = LinearSvm::new();
        m.fit(&Dataset::new(vec![], vec![]));
        assert!(m.predict(&[])); // zero margin ⇒ non-negative ⇒ positive
        assert_eq!(m.name(), "linear-svm");
    }
}
