//! Feature standardization (z-scores).

use crate::dataset::Dataset;

/// Per-feature mean/std fitted on a training set.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit on `data`. Constant features get std 1 (so they map to 0).
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len().max(1) as f64;
        let d = data.n_features();
        let mut means = vec![0.0; d];
        for row in data.rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for row in data.rows() {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                let x = v - m;
                *s += x * x;
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        StandardScaler { means, stds }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Transform a whole dataset into a new one.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let rows: Vec<Vec<f64>> = data
            .rows()
            .iter()
            .map(|r| {
                let mut row = r.clone();
                self.transform_row(&mut row);
                row
            })
            .collect();
        Dataset::new(rows, data.labels().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_unit_variance() {
        let d = Dataset::new(
            vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]],
            vec![true, false, true],
        );
        let sc = StandardScaler::fit(&d);
        let t = sc.transform(&d);
        // First feature: mean 3, values -x, 0, +x.
        let col0: Vec<f64> = t.rows().iter().map(|r| r[0]).collect();
        assert!((col0.iter().sum::<f64>()).abs() < 1e-12);
        let var: f64 = col0.iter().map(|v| v * v).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12);
        // Constant feature maps to 0, not NaN.
        assert!(t.rows().iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn transform_uses_training_statistics() {
        let train = Dataset::new(vec![vec![0.0], vec![2.0]], vec![true, false]);
        let sc = StandardScaler::fit(&train);
        let mut row = vec![4.0];
        sc.transform_row(&mut row);
        // mean 1, std 1 → (4-1)/1 = 3.
        assert!((row[0] - 3.0).abs() < 1e-12);
    }
}
