//! Dense datasets for binary classification.

/// A dense dataset: row-major features plus binary labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<bool>,
    n_features: usize,
}

impl Dataset {
    /// Build from rows and labels.
    ///
    /// # Panics
    /// Panics on length mismatch or ragged rows.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        assert_eq!(features.len(), labels.len(), "rows/labels mismatch");
        let n_features = features.first().map(Vec::len).unwrap_or(0);
        for (i, row) in features.iter().enumerate() {
            assert_eq!(row.len(), n_features, "ragged row {i}");
            assert!(
                row.iter().all(|v| v.is_finite()),
                "non-finite feature in row {i}"
            );
        }
        Dataset {
            features,
            labels,
            n_features,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Count of positive labels.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// The sub-dataset selected by `indices` (cloned rows).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_features: self.n_features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![true, false]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert!(d.label(0));
        assert_eq!(d.positives(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn label_mismatch_panics() {
        let _ = Dataset::new(vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_feature_panics() {
        let _ = Dataset::new(vec![vec![f64::NAN]], vec![true]);
    }

    #[test]
    fn subset_selects_rows() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![false, true, false],
        );
        let s = d.subset(&[2, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[2.0]);
        assert!(s.label(1));
    }
}
