//! Logistic regression via batch gradient descent with L2 regularization.

use crate::dataset::Dataset;
use crate::model::Classifier;

/// Logistic-regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            learning_rate: 0.5,
            l2: 1e-4,
            epochs: 300,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl LogisticRegression {
    /// New model with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The learned weights (empty before fitting).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }

    fn raw(&self, row: &[f64]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, train: &Dataset) {
        let n = train.len();
        let d = train.n_features();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        if n == 0 {
            return;
        }
        let nf = n as f64;
        for _ in 0..self.epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for i in 0..n {
                let row = train.row(i);
                let y = f64::from(u8::from(train.label(i)));
                let err = Self::sigmoid(self.raw(row)) - y;
                for (g, x) in gw.iter_mut().zip(row) {
                    *g += err * x;
                }
                gb += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= self.learning_rate * (g / nf + self.l2 * *w);
            }
            self.bias -= self.learning_rate * gb / nf;
        }
    }

    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        Self::sigmoid(self.raw(row))
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::predict_all;

    /// Linearly separable data: positive iff x0 > x1.
    fn separable(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = (i % 10) as f64;
            let b = ((i * 7) % 10) as f64;
            rows.push(vec![a, b]);
            labels.push(a > b);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn learns_separable_data() {
        let d = separable(100);
        let mut m = LogisticRegression::new();
        m.fit(&d);
        let preds = predict_all(&m, &d);
        let correct = preds.iter().zip(d.labels()).filter(|(p, l)| p == l).count();
        assert!(correct as f64 / d.len() as f64 > 0.95, "{correct}/100");
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let d = separable(100);
        let mut m = LogisticRegression::new();
        m.fit(&d);
        assert!(m.predict_proba(&[9.0, 0.0]) > 0.9);
        assert!(m.predict_proba(&[0.0, 9.0]) < 0.1);
    }

    #[test]
    fn empty_training_is_safe() {
        let mut m = LogisticRegression::new();
        m.fit(&Dataset::new(vec![], vec![]));
        // All-zero model sits exactly on the decision boundary.
        assert_eq!(m.predict_proba(&[]), 0.5);
        assert_eq!(m.name(), "logistic-regression");
    }

    #[test]
    fn weights_reflect_feature_signs() {
        let d = separable(100);
        let mut m = LogisticRegression::new();
        m.fit(&d);
        assert!(m.weights()[0] > 0.0);
        assert!(m.weights()[1] < 0.0);
    }
}
