//! CART decision trees with Gini impurity.

use crate::dataset::Dataset;
use crate::model::Classifier;

/// A binary decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// When `Some(m)`, consider only a deterministic rotation of `m`
    /// features per node (used by the random forest).
    pub max_features: Option<usize>,
    /// Rotation offset for feature subsampling (per-tree diversity).
    pub feature_offset: usize,
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Probability of the positive class at this leaf.
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child (`<=` branch); right child is `left + 1`
        /// positions later is not guaranteed, so both are stored.
        left: usize,
        right: usize,
    },
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree {
            max_depth: 8,
            min_samples_split: 2,
            max_features: None,
            feature_offset: 0,
            nodes: Vec::new(),
        }
    }
}

impl DecisionTree {
    /// New tree with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// New tree with forest-style hyperparameters (depth cap, feature
    /// subsampling and a per-tree rotation offset).
    pub fn with_params(
        max_depth: usize,
        max_features: Option<usize>,
        feature_offset: usize,
    ) -> Self {
        DecisionTree {
            max_depth,
            max_features,
            feature_offset,
            ..Default::default()
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn gini(pos: usize, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let p = pos as f64 / total as f64;
        2.0 * p * (1.0 - p)
    }

    /// Best (feature, threshold, gini_after) over the considered features.
    fn best_split(&self, data: &Dataset, indices: &[usize]) -> Option<(usize, f64, f64)> {
        let d = data.n_features();
        let features: Vec<usize> = match self.max_features {
            Some(m) => (0..m.min(d))
                .map(|i| (self.feature_offset + i * 7 + 1) % d)
                .collect(),
            None => (0..d).collect(),
        };
        let total = indices.len();
        let total_pos = indices.iter().filter(|&&i| data.label(i)).count();
        let mut best: Option<(usize, f64, f64)> = None;
        for &f in &features {
            // Sort indices by feature value; sweep split points.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                data.row(a)[f]
                    .partial_cmp(&data.row(b)[f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_pos = 0usize;
            for (li, &i) in order.iter().enumerate() {
                if data.label(i) {
                    left_pos += 1;
                }
                let left_n = li + 1;
                if left_n == total {
                    break;
                }
                let v = data.row(i)[f];
                let next_v = data.row(order[li + 1])[f];
                if v == next_v {
                    continue; // cannot split between equal values
                }
                let right_n = total - left_n;
                let right_pos = total_pos - left_pos;
                let g = (left_n as f64 * Self::gini(left_pos, left_n)
                    + right_n as f64 * Self::gini(right_pos, right_n))
                    / total as f64;
                if best.is_none_or(|(_, _, bg)| g < bg) {
                    best = Some((f, (v + next_v) / 2.0, g));
                }
            }
        }
        best
    }

    fn build(&mut self, data: &Dataset, indices: &[usize], depth: usize) -> usize {
        let total = indices.len();
        let pos = indices.iter().filter(|&&i| data.label(i)).count();
        let proba = if total == 0 {
            0.0
        } else {
            pos as f64 / total as f64
        };
        let pure = pos == 0 || pos == total;
        if depth >= self.max_depth || total < self.min_samples_split || pure {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }
        // Accept zero-gain splits: XOR-style targets have no first-split
        // Gini gain, yet depth-2 recovery requires taking the split anyway
        // (both sides are guaranteed nonempty, so recursion terminates).
        match self.best_split(data, indices) {
            Some((feature, threshold, _g)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.row(i)[feature] <= threshold);
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf { proba }); // placeholder
                let left = self.build(data, &left_idx, depth + 1);
                let right = self.build(data, &right_idx, depth + 1);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
            None => {
                self.nodes.push(Node::Leaf { proba });
                self.nodes.len() - 1
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, train: &Dataset) {
        self.nodes.clear();
        if train.is_empty() {
            self.nodes.push(Node::Leaf { proba: 0.0 });
            return;
        }
        let indices: Vec<usize> = (0..train.len()).collect();
        self.build(train, &indices, 0);
    }

    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        // The root is the first node pushed by the outermost build call —
        // placeholders guarantee it is at index 0.
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::predict_all;

    fn xor_data() -> Dataset {
        // XOR needs depth ≥ 2 — a classic non-linear check.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..5 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push(vec![a, b]);
                labels.push((a > 0.5) != (b > 0.5));
            }
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn learns_xor() {
        let d = xor_data();
        let mut t = DecisionTree::new();
        t.fit(&d);
        let preds = predict_all(&t, &d);
        assert_eq!(preds, d.labels());
    }

    #[test]
    fn respects_max_depth() {
        let d = xor_data();
        let mut stump = DecisionTree {
            max_depth: 0,
            ..Default::default()
        };
        stump.fit(&d);
        assert_eq!(stump.node_count(), 1, "depth 0 is a single leaf");
    }

    #[test]
    fn pure_node_stops_early() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![true, true]);
        let mut t = DecisionTree::new();
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        assert!(t.predict(&[0.5]));
    }

    #[test]
    fn empty_training_predicts_negative() {
        let mut t = DecisionTree::new();
        t.fit(&Dataset::new(vec![], vec![]));
        assert!(!t.predict(&[1.0, 2.0]));
    }

    #[test]
    fn proba_reflects_leaf_purity() {
        let d = Dataset::new(
            vec![vec![0.0], vec![0.2], vec![0.4], vec![1.0]],
            vec![false, false, true, true],
        );
        let mut t = DecisionTree::new();
        t.fit(&d);
        assert!(t.predict_proba(&[0.0]) < 0.5);
        assert!(t.predict_proba(&[1.0]) > 0.5);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let d = Dataset::new(
            vec![vec![3.0], vec![3.0], vec![3.0]],
            vec![true, false, true],
        );
        let mut t = DecisionTree::new();
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        assert!(t.predict(&[3.0]), "majority class");
    }
}
