//! The classifier interface.

use crate::dataset::Dataset;

/// A trainable binary classifier.
///
/// `Send + Sync` is a supertrait so trained models (plain parameter
/// structs, no interior mutability) can be shared across the parallel
/// per-term pipeline fan-out behind a `&` reference.
pub trait Classifier: Send + Sync {
    /// Fit on a training set.
    fn fit(&mut self, train: &Dataset);

    /// Predict the label of one feature row.
    fn predict(&self, row: &[f64]) -> bool;

    /// Predict the positive-class probability (default: hard 0/1 from
    /// [`Classifier::predict`]).
    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.predict(row) {
            1.0
        } else {
            0.0
        }
    }

    /// Human-readable model name.
    fn name(&self) -> &'static str;
}

/// Predict labels for every row of a dataset.
pub fn predict_all<C: Classifier + ?Sized>(model: &C, data: &Dataset) -> Vec<bool> {
    (0..data.len())
        .map(|i| model.predict(data.row(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(bool);
    impl Classifier for Constant {
        fn fit(&mut self, _train: &Dataset) {}
        fn predict(&self, _row: &[f64]) -> bool {
            self.0
        }
        fn name(&self) -> &'static str {
            "constant"
        }
    }

    #[test]
    fn default_proba_is_hard() {
        let c = Constant(true);
        assert_eq!(c.predict_proba(&[0.0]), 1.0);
        assert_eq!(Constant(false).predict_proba(&[0.0]), 0.0);
    }

    #[test]
    fn predict_all_maps_rows() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![true, false]);
        assert_eq!(predict_all(&Constant(true), &d), vec![true, true]);
    }
}
