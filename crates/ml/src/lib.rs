//! # boe-ml
//!
//! Machine-learning substrate for Step II (polysemy detection). The paper
//! trains "several machine learning algorithms" on 23 features and
//! reports a 98% F-measure; this crate provides the from-scratch
//! classifiers and evaluation machinery for that experiment:
//!
//! * [`dataset`] — dense feature matrices with binary labels;
//! * [`scale`] — feature standardization;
//! * [`model`] — the [`model::Classifier`] trait;
//! * [`boost`] — AdaBoost over decision stumps;
//! * [`logreg`] — logistic regression (batch gradient descent);
//! * [`naive_bayes`] — Gaussian naive Bayes;
//! * [`tree`] — CART decision trees (Gini);
//! * [`forest`] — random forests (bagging + feature subsampling);
//! * [`knn`] — k-nearest neighbours;
//! * [`svm`] — linear SVM (Pegasos);
//! * [`eval`] — confusion matrices, precision/recall/F1, k-fold CV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boost;
pub mod dataset;
pub mod eval;
pub mod forest;
pub mod knn;
pub mod logreg;
pub mod model;
pub mod naive_bayes;
pub mod scale;
pub mod svm;
pub mod tree;

pub use dataset::Dataset;
pub use model::Classifier;
