//! Evaluation: confusion matrices, precision/recall/F-measure, and
//! stratified k-fold cross-validation — the protocol behind the paper's
//! "98% F-measure" polysemy-detection claim.

use crate::dataset::Dataset;
use crate::model::{predict_all, Classifier};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against gold labels.
    pub fn from_predictions(gold: &[bool], pred: &[bool]) -> Self {
        assert_eq!(gold.len(), pred.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&g, &p) in gold.iter().zip(pred) {
            match (g, p) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Precision of the positive class (0 when nothing was predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall of the positive class.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 measure.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merge two confusion matrices (for CV aggregation).
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            tn: self.tn + other.tn,
            fn_: self.fn_ + other.fn_,
        }
    }
}

/// Stratified fold assignment: positives and negatives are distributed
/// round-robin so every fold keeps the class balance.
pub fn stratified_folds(labels: &[bool], k: usize) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut fold = vec![0usize; labels.len()];
    let mut next = [0usize; 2];
    for (i, &l) in labels.iter().enumerate() {
        let c = usize::from(l);
        fold[i] = next[c] % k;
        next[c] += 1;
    }
    fold
}

/// Run stratified k-fold cross-validation with a fresh model per fold
/// (supplied by `make_model`); returns the pooled confusion matrix.
pub fn cross_validate<C, F>(data: &Dataset, k: usize, mut make_model: F) -> Confusion
where
    C: Classifier,
    F: FnMut() -> C,
{
    let folds = stratified_folds(data.labels(), k);
    let mut pooled = Confusion::default();
    for f in 0..k {
        let train_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] != f).collect();
        let test_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == f).collect();
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        let mut model = make_model();
        model.fit(&train);
        let preds = predict_all(&model, &test);
        pooled = pooled.merge(&Confusion::from_predictions(test.labels(), &preds));
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logreg::LogisticRegression;

    #[test]
    fn confusion_counts() {
        let gold = [true, true, false, false, true];
        let pred = [true, false, false, true, true];
        let c = Confusion::from_predictions(&gold, &pred);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let labels: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect(); // 25% positive
        let folds = stratified_folds(&labels, 5);
        for f in 0..5 {
            let pos = labels
                .iter()
                .zip(&folds)
                .filter(|(&l, &ff)| l && ff == f)
                .count();
            assert_eq!(pos, 5, "fold {f} has {pos} positives");
        }
    }

    #[test]
    fn cross_validation_on_separable_data() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let a = (i % 10) as f64;
            let b = ((i * 3 + 1) % 10) as f64;
            rows.push(vec![a, b]);
            labels.push(a > b);
        }
        let d = Dataset::new(rows, labels);
        let c = cross_validate(&d, 10, LogisticRegression::new);
        assert!(c.f1() > 0.9, "f1 {}", c.f1());
        assert_eq!(c.tp + c.fp + c.tn + c.fn_, 200, "every row tested once");
    }

    #[test]
    fn merge_adds_counts() {
        let a = Confusion {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 4, 6, 8));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_fold_panics() {
        let _ = stratified_folds(&[true], 1);
    }
}
