//! Gaussian naive Bayes.

use crate::dataset::Dataset;
use crate::model::Classifier;

/// Gaussian naive Bayes with variance smoothing.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// Per-class feature means `[negative, positive]`.
    means: [Vec<f64>; 2],
    /// Per-class feature variances.
    vars: [Vec<f64>; 2],
    /// Log class priors.
    log_prior: [f64; 2],
    fitted: bool,
}

const VAR_SMOOTHING: f64 = 1e-9;

impl GaussianNb {
    /// New unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    fn log_likelihood(&self, class: usize, row: &[f64]) -> f64 {
        let mut ll = self.log_prior[class];
        for ((x, m), v) in row.iter().zip(&self.means[class]).zip(&self.vars[class]) {
            let var = v + VAR_SMOOTHING;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + (x - m) * (x - m) / var);
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, train: &Dataset) {
        let d = train.n_features();
        let mut counts = [0usize; 2];
        let mut sums = [vec![0.0; d], vec![0.0; d]];
        for i in 0..train.len() {
            let c = usize::from(train.label(i));
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(train.row(i)) {
                *s += x;
            }
        }
        let mut means = [vec![0.0; d], vec![0.0; d]];
        for c in 0..2 {
            if counts[c] > 0 {
                for (m, s) in means[c].iter_mut().zip(&sums[c]) {
                    *m = s / counts[c] as f64;
                }
            }
        }
        let mut vars = [vec![0.0; d], vec![0.0; d]];
        for i in 0..train.len() {
            let c = usize::from(train.label(i));
            for ((v, x), m) in vars[c].iter_mut().zip(train.row(i)).zip(&means[c]) {
                let e = x - m;
                *v += e * e;
            }
        }
        for c in 0..2 {
            if counts[c] > 0 {
                for v in vars[c].iter_mut() {
                    *v /= counts[c] as f64;
                }
            }
        }
        let total = (counts[0] + counts[1]).max(1) as f64;
        // Laplace-smoothed priors keep an unseen class finite.
        self.log_prior = [
            ((counts[0] as f64 + 1.0) / (total + 2.0)).ln(),
            ((counts[1] as f64 + 1.0) / (total + 2.0)).ln(),
        ];
        self.means = means;
        self.vars = vars;
        self.fitted = true;
    }

    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let l0 = self.log_likelihood(0, row);
        let l1 = self.log_likelihood(1, row);
        // Softmax over two log-likelihoods, computed stably.
        let m = l0.max(l1);
        let e0 = (l0 - m).exp();
        let e1 = (l1 - m).exp();
        e1 / (e0 + e1)
    }

    fn name(&self) -> &'static str {
        "gaussian-naive-bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs.
    fn blob_data() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.1;
            rows.push(vec![1.0 + jitter, 1.0 - jitter]);
            labels.push(false);
            rows.push(vec![5.0 - jitter, 5.0 + jitter]);
            labels.push(true);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn separates_blobs() {
        let d = blob_data();
        let mut m = GaussianNb::new();
        m.fit(&d);
        assert!(!m.predict(&[1.0, 1.0]));
        assert!(m.predict(&[5.0, 5.0]));
        assert!(m.predict_proba(&[5.0, 5.0]) > 0.99);
        assert!(m.predict_proba(&[1.0, 1.0]) < 0.01);
    }

    #[test]
    fn unfitted_predicts_negative() {
        let m = GaussianNb::new();
        assert!(!m.predict(&[1.0]));
    }

    #[test]
    fn single_class_training_is_stable() {
        let d = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]);
        let mut m = GaussianNb::new();
        m.fit(&d);
        let p = m.predict_proba(&[1.5]);
        assert!(p.is_finite());
        assert!(p > 0.5, "all-positive training should predict positive");
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let d = Dataset::new(
            vec![
                vec![1.0, 7.0],
                vec![2.0, 7.0],
                vec![5.0, 7.0],
                vec![6.0, 7.0],
            ],
            vec![false, false, true, true],
        );
        let mut m = GaussianNb::new();
        m.fit(&d);
        assert!(m.predict_proba(&[5.5, 7.0]).is_finite());
        assert!(m.predict(&[5.5, 7.0]));
    }
}
