//! k-nearest-neighbour classification (Euclidean).

use crate::dataset::Dataset;
use crate::model::Classifier;

/// kNN classifier (stores the training set).
#[derive(Debug, Clone)]
pub struct KNearest {
    /// Number of neighbours.
    pub k: usize,
    train: Option<Dataset>,
}

impl KNearest {
    /// New classifier with `k` neighbours.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        KNearest { k, train: None }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for KNearest {
    fn fit(&mut self, train: &Dataset) {
        self.train = Some(train.clone());
    }

    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        let Some(train) = &self.train else {
            return 0.0;
        };
        if train.is_empty() {
            return 0.0;
        }
        let mut dists: Vec<(f64, bool)> = (0..train.len())
            .map(|i| (sq_dist(train.row(i), row), train.label(i)))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.k.min(dists.len());
        let pos = dists[..k].iter().filter(|(_, l)| *l).count();
        pos as f64 / k as f64
    }

    fn name(&self) -> &'static str {
        "k-nearest-neighbours"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let j = (i % 3) as f64 * 0.1;
            rows.push(vec![0.0 + j, 0.0 - j]);
            labels.push(false);
            rows.push(vec![5.0 - j, 5.0 + j]);
            labels.push(true);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn classifies_blob_points() {
        let d = blobs();
        let mut m = KNearest::new(3);
        m.fit(&d);
        assert!(!m.predict(&[0.1, 0.1]));
        assert!(m.predict(&[4.9, 5.1]));
    }

    #[test]
    fn proba_is_neighbour_fraction() {
        let d = Dataset::new(
            vec![vec![0.0], vec![0.1], vec![10.0]],
            vec![true, true, false],
        );
        let mut m = KNearest::new(3);
        m.fit(&d);
        assert!((m.predict_proba(&[0.05]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_clamps_to_training_size() {
        let d = Dataset::new(vec![vec![0.0]], vec![true]);
        let mut m = KNearest::new(10);
        m.fit(&d);
        assert!(m.predict(&[0.0]));
    }

    #[test]
    fn unfitted_predicts_negative() {
        let m = KNearest::new(1);
        assert!(!m.predict(&[0.0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = KNearest::new(0);
    }
}
