//! Random forests: bootstrap-aggregated CART trees with per-tree feature
//! subsampling.

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::tree::DecisionTree;
use boe_rng::StdRng;

/// Random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth cap per tree.
    pub max_depth: usize,
    /// Features considered per node (default `sqrt(d)` at fit time when
    /// `None`).
    pub max_features: Option<usize>,
    /// RNG seed for bootstrap sampling.
    pub seed: u64,
    trees: Vec<DecisionTree>,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 30,
            max_depth: 8,
            max_features: None,
            seed: 0,
            trees: Vec::new(),
        }
    }
}

impl RandomForest {
    /// New forest with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, train: &Dataset) {
        self.trees.clear();
        if train.is_empty() {
            return;
        }
        let n = train.len();
        let d = train.n_features();
        let m = self
            .max_features
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for t in 0..self.n_trees {
            let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let boot = train.subset(&sample);
            let mut tree = DecisionTree::with_params(self.max_depth, Some(m), t);
            tree.fit(&boot);
            self.trees.push(tree);
        }
    }

    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_proba(row)).sum::<f64>() / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::predict_all;

    fn noisy_separable(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = (i % 13) as f64;
            let b = ((i * 7 + 3) % 13) as f64;
            let noise = ((i * 31) % 5) as f64 * 0.01;
            rows.push(vec![a + noise, b - noise, ((i * 11) % 3) as f64]);
            labels.push(a > b);
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn fits_and_predicts_well() {
        let d = noisy_separable(150);
        let mut f = RandomForest::new();
        f.fit(&d);
        let preds = predict_all(&f, &d);
        let acc =
            preds.iter().zip(d.labels()).filter(|(p, l)| p == l).count() as f64 / d.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
        assert_eq!(f.tree_count(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = noisy_separable(60);
        let mut a = RandomForest::new();
        let mut b = RandomForest::new();
        a.fit(&d);
        b.fit(&d);
        for i in 0..d.len() {
            assert_eq!(a.predict_proba(d.row(i)), b.predict_proba(d.row(i)));
        }
    }

    #[test]
    fn averaged_probabilities_are_soft() {
        let d = noisy_separable(100);
        let mut f = RandomForest::new();
        f.fit(&d);
        let p = f.predict_proba(&[6.0, 6.0, 1.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn empty_training_is_safe() {
        let mut f = RandomForest::new();
        f.fit(&Dataset::new(vec![], vec![]));
        assert!(!f.predict(&[0.0]));
        assert_eq!(f.tree_count(), 0);
    }
}
