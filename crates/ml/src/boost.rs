//! AdaBoost over decision stumps (Freund & Schapire 1997, discrete
//! AdaBoost with the standard 1/2·ln((1−ε)/ε) vote weights).

use crate::dataset::Dataset;
use crate::model::Classifier;

/// One axis-aligned stump: `feature ≤ threshold → left_label`.
#[derive(Debug, Clone, Copy)]
struct Stump {
    feature: usize,
    threshold: f64,
    /// Label predicted on the `≤ threshold` side.
    left_positive: bool,
    /// Vote weight α.
    alpha: f64,
}

impl Stump {
    fn predict(&self, row: &[f64]) -> bool {
        if row[self.feature] <= self.threshold {
            self.left_positive
        } else {
            !self.left_positive
        }
    }
}

/// AdaBoost classifier.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// Number of boosting rounds.
    pub rounds: usize,
    stumps: Vec<Stump>,
}

impl Default for AdaBoost {
    fn default() -> Self {
        AdaBoost {
            rounds: 40,
            stumps: Vec::new(),
        }
    }
}

impl AdaBoost {
    /// New model with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fitted stumps (≤ rounds; boosting stops early on a
    /// perfect stump).
    pub fn stump_count(&self) -> usize {
        self.stumps.len()
    }

    /// The weighted vote margin (positive ⇒ positive class).
    pub fn decision(&self, row: &[f64]) -> f64 {
        self.stumps
            .iter()
            .map(|s| if s.predict(row) { s.alpha } else { -s.alpha })
            .sum()
    }

    /// Best stump under example weights `w`; returns (stump, weighted
    /// error).
    fn best_stump(train: &Dataset, w: &[f64]) -> (Stump, f64) {
        let d = train.n_features();
        let n = train.len();
        let mut best = (
            Stump {
                feature: 0,
                threshold: 0.0,
                left_positive: true,
                alpha: 0.0,
            },
            f64::INFINITY,
        );
        for f in 0..d {
            // Candidate thresholds: midpoints of sorted distinct values.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                train.row(a)[f]
                    .partial_cmp(&train.row(b)[f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Sweep: with the threshold below every value, all points sit
            // on the right, so "left positive" predicts negative
            // everywhere and errs exactly on the positives' weight.
            let mut err_left_pos: f64 = order
                .iter()
                .filter(|&&i| train.label(i))
                .map(|&i| w[i])
                .sum();
            let consider = |thr: f64, err_lp: f64, feature: usize, best: &mut (Stump, f64)| {
                for (left_positive, err) in [(true, err_lp), (false, 1.0 - err_lp)] {
                    if err < best.1 {
                        best.0 = Stump {
                            feature,
                            threshold: thr,
                            left_positive,
                            alpha: 0.0,
                        };
                        best.1 = err;
                    }
                }
            };
            let below = train.row(order[0])[f] - 1.0;
            consider(below, err_left_pos, f, &mut best);
            for (pos, &i) in order.iter().enumerate() {
                // Move example i to the left side.
                if train.label(i) {
                    err_left_pos -= w[i];
                } else {
                    err_left_pos += w[i];
                }
                let v = train.row(i)[f];
                let next_v = order.get(pos + 1).map(|&j| train.row(j)[f]);
                if next_v != Some(v) {
                    let thr = match next_v {
                        Some(nv) => (v + nv) / 2.0,
                        None => v + 1.0,
                    };
                    consider(thr, err_left_pos, f, &mut best);
                }
            }
        }
        best
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, train: &Dataset) {
        self.stumps.clear();
        let n = train.len();
        if n == 0 {
            return;
        }
        let mut w = vec![1.0 / n as f64; n];
        for _ in 0..self.rounds {
            let (mut stump, err) = Self::best_stump(train, &w);
            let err = err.clamp(1e-10, 1.0 - 1e-10);
            if err >= 0.5 {
                break; // no better than chance under current weights
            }
            stump.alpha = 0.5 * ((1.0 - err) / err).ln();
            // Reweight: misclassified up, correct down; renormalize.
            let mut total = 0.0;
            for (i, wi) in w.iter_mut().enumerate() {
                let correct = stump.predict(train.row(i)) == train.label(i);
                *wi *= if correct {
                    (-stump.alpha).exp()
                } else {
                    stump.alpha.exp()
                };
                total += *wi;
            }
            for x in &mut w {
                *x /= total;
            }
            let perfect = err < 1e-9;
            self.stumps.push(stump);
            if perfect {
                break;
            }
        }
    }

    fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) >= 0.0
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        // Logistic squash of the margin (monotone, not calibrated).
        1.0 / (1.0 + (-2.0 * self.decision(row)).exp())
    }

    fn name(&self) -> &'static str {
        "adaboost-stumps"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::predict_all;

    /// Positive iff x lies in the middle interval — a single stump tops
    /// out at 75%, but two boosted thresholds solve it exactly.
    fn interval_data() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let x = i as f64 / 4.0;
            rows.push(vec![x, (i % 3) as f64]);
            labels.push((3.0..7.0).contains(&x));
        }
        Dataset::new(rows, labels)
    }

    #[test]
    fn single_stump_solves_threshold_problem() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![false, false, true, true],
        );
        let mut m = AdaBoost::new();
        m.fit(&d);
        assert_eq!(predict_all(&m, &d), d.labels());
        assert!(m.stump_count() >= 1);
    }

    #[test]
    fn boosting_learns_an_interval() {
        // No single stump can represent "x in [3, 7)"; boosting must
        // combine opposite-direction thresholds.
        let d = interval_data();
        let mut m = AdaBoost::new();
        m.fit(&d);
        let acc = predict_all(&m, &d)
            .iter()
            .zip(d.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / d.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
        assert!(m.stump_count() > 1);
    }

    #[test]
    fn noisy_separable_data() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let a = (i % 12) as f64;
            let b = ((i * 5 + 2) % 12) as f64;
            rows.push(vec![a, b, ((i * 7) % 3) as f64]);
            labels.push(a > b);
        }
        let d = Dataset::new(rows, labels);
        let mut m = AdaBoost::new();
        m.fit(&d);
        let acc = predict_all(&m, &d)
            .iter()
            .zip(d.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn proba_is_monotone_in_margin() {
        let d = interval_data();
        let mut m = AdaBoost::new();
        m.fit(&d);
        let p = m.predict_proba(&[1.0, 0.0]);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(m.predict(&[1.0, 0.0]), p >= 0.5);
    }

    #[test]
    fn empty_training_is_safe() {
        let mut m = AdaBoost::new();
        m.fit(&Dataset::new(vec![], vec![]));
        assert!(m.predict(&[1.0])); // zero margin ⇒ non-negative
        assert_eq!(m.stump_count(), 0);
    }

    #[test]
    fn deterministic() {
        let d = interval_data();
        let mut a = AdaBoost::new();
        let mut b = AdaBoost::new();
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.decision(&[0.3, 0.9]), b.decision(&[0.3, 0.9]));
    }
}
