//! Property tests for the ML substrate.

use boe_ml::boost::AdaBoost;
use boe_ml::dataset::Dataset;
use boe_ml::eval::{stratified_folds, Confusion};
use boe_ml::forest::RandomForest;
use boe_ml::knn::KNearest;
use boe_ml::logreg::LogisticRegression;
use boe_ml::model::Classifier;
use boe_ml::naive_bayes::GaussianNb;
use boe_ml::scale::StandardScaler;
use boe_ml::svm::LinearSvm;
use boe_ml::tree::DecisionTree;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..5, 4usize..30).prop_flat_map(|(d, n)| {
        (
            proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, d..=d),
                n..=n,
            ),
            proptest::collection::vec(any::<bool>(), n..=n),
        )
            .prop_map(|(rows, labels)| Dataset::new(rows, labels))
    })
}

fn all_models() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(LogisticRegression::new()),
        Box::new(GaussianNb::new()),
        Box::new(DecisionTree::new()),
        Box::new(RandomForest::new()),
        Box::new(KNearest::new(3)),
        Box::new(LinearSvm::new()),
        Box::new(AdaBoost::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn probabilities_are_probabilities(data in dataset_strategy()) {
        for mut model in all_models() {
            model.fit(&data);
            for i in 0..data.len() {
                let p = model.predict_proba(data.row(i));
                prop_assert!((0.0..=1.0).contains(&p), "{}: {p}", model.name());
                prop_assert!(p.is_finite(), "{}", model.name());
            }
        }
    }

    #[test]
    fn training_is_deterministic(data in dataset_strategy()) {
        for (mut a, mut b) in all_models().into_iter().zip(all_models()) {
            a.fit(&data);
            b.fit(&data);
            for i in 0..data.len() {
                prop_assert_eq!(
                    a.predict(data.row(i)),
                    b.predict(data.row(i)),
                    "{} differs on row {}",
                    a.name(),
                    i
                );
            }
        }
    }

    #[test]
    fn scaler_round_trips_statistics(data in dataset_strategy()) {
        let sc = StandardScaler::fit(&data);
        let t = sc.transform(&data);
        prop_assert_eq!(t.len(), data.len());
        prop_assert_eq!(t.n_features(), data.n_features());
        for f in 0..t.n_features() {
            let mean: f64 = t.rows().iter().map(|r| r[f]).sum::<f64>() / t.len() as f64;
            prop_assert!(mean.abs() < 1e-9, "feature {f} mean {mean}");
        }
    }

    #[test]
    fn stratified_folds_partition_everything(labels in proptest::collection::vec(any::<bool>(), 4..60), k in 2usize..6) {
        let folds = stratified_folds(&labels, k);
        prop_assert_eq!(folds.len(), labels.len());
        prop_assert!(folds.iter().all(|&f| f < k));
        // Class balance: positives per fold differ by at most 1.
        let mut pos = vec![0usize; k];
        for (&l, &f) in labels.iter().zip(&folds) {
            if l {
                pos[f] += 1;
            }
        }
        let (mn, mx) = (pos.iter().min().copied().unwrap_or(0), pos.iter().max().copied().unwrap_or(0));
        prop_assert!(mx - mn <= 1, "{pos:?}");
    }

    #[test]
    fn confusion_metrics_are_bounded(gold in proptest::collection::vec(any::<bool>(), 1..50), seed in 0u64..50) {
        // Derive predictions deterministically from the seed.
        let pred: Vec<bool> = gold
            .iter()
            .enumerate()
            .map(|(i, &g)| if (seed >> (i % 60)) & 1 == 1 { !g } else { g })
            .collect();
        let c = Confusion::from_predictions(&gold, &pred);
        for m in [c.accuracy(), c.precision(), c.recall(), c.f1()] {
            prop_assert!((0.0..=1.0).contains(&m));
        }
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, gold.len());
    }
}
