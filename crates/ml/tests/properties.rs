//! Property tests for the ML substrate.
//!
//! Driven by the workspace's own deterministic PRNG (no external
//! dependencies); each test sweeps seeded random datasets.

use boe_ml::boost::AdaBoost;
use boe_ml::dataset::Dataset;
use boe_ml::eval::{stratified_folds, Confusion};
use boe_ml::forest::RandomForest;
use boe_ml::knn::KNearest;
use boe_ml::logreg::LogisticRegression;
use boe_ml::model::Classifier;
use boe_ml::naive_bayes::GaussianNb;
use boe_ml::scale::StandardScaler;
use boe_ml::svm::LinearSvm;
use boe_ml::tree::DecisionTree;
use boe_rng::StdRng;

const CASES: usize = 24;

fn rand_dataset(rng: &mut StdRng) -> Dataset {
    let d = rng.gen_range(2usize..5);
    let n = rng.gen_range(4usize..30);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect())
        .collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    Dataset::new(rows, labels)
}

fn all_models() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(LogisticRegression::new()),
        Box::new(GaussianNb::new()),
        Box::new(DecisionTree::new()),
        Box::new(RandomForest::new()),
        Box::new(KNearest::new(3)),
        Box::new(LinearSvm::new()),
        Box::new(AdaBoost::new()),
    ]
}

#[test]
fn probabilities_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(30);
    for _ in 0..CASES {
        let data = rand_dataset(&mut rng);
        for mut model in all_models() {
            model.fit(&data);
            for i in 0..data.len() {
                let p = model.predict_proba(data.row(i));
                assert!((0.0..=1.0).contains(&p), "{}: {p}", model.name());
                assert!(p.is_finite(), "{}", model.name());
            }
        }
    }
}

#[test]
fn training_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..CASES {
        let data = rand_dataset(&mut rng);
        for (mut a, mut b) in all_models().into_iter().zip(all_models()) {
            a.fit(&data);
            b.fit(&data);
            for i in 0..data.len() {
                assert_eq!(
                    a.predict(data.row(i)),
                    b.predict(data.row(i)),
                    "{} differs on row {}",
                    a.name(),
                    i
                );
            }
        }
    }
}

#[test]
fn scaler_round_trips_statistics() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..CASES {
        let data = rand_dataset(&mut rng);
        let sc = StandardScaler::fit(&data);
        let t = sc.transform(&data);
        assert_eq!(t.len(), data.len());
        assert_eq!(t.n_features(), data.n_features());
        for f in 0..t.n_features() {
            let mean: f64 = t.rows().iter().map(|r| r[f]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9, "feature {f} mean {mean}");
        }
    }
}

#[test]
fn stratified_folds_partition_everything() {
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..CASES {
        let n = rng.gen_range(4usize..60);
        let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let k = rng.gen_range(2usize..6);
        let folds = stratified_folds(&labels, k);
        assert_eq!(folds.len(), labels.len());
        assert!(folds.iter().all(|&f| f < k));
        // Class balance: positives per fold differ by at most 1.
        let mut pos = vec![0usize; k];
        for (&l, &f) in labels.iter().zip(&folds) {
            if l {
                pos[f] += 1;
            }
        }
        let (mn, mx) = (
            pos.iter().min().copied().unwrap_or(0),
            pos.iter().max().copied().unwrap_or(0),
        );
        assert!(mx - mn <= 1, "{pos:?}");
    }
}

#[test]
fn confusion_metrics_are_bounded() {
    let mut rng = StdRng::seed_from_u64(34);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..50);
        let gold: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let seed = rng.gen_range(0u64..50);
        // Derive predictions deterministically from the seed.
        let pred: Vec<bool> = gold
            .iter()
            .enumerate()
            .map(|(i, &g)| if (seed >> (i % 60)) & 1 == 1 { !g } else { g })
            .collect();
        let c = Confusion::from_predictions(&gold, &pred);
        for m in [c.accuracy(), c.precision(), c.recall(), c.f1()] {
            assert!((0.0..=1.0).contains(&m));
        }
        assert_eq!(c.tp + c.fp + c.tn + c.fn_, gold.len());
    }
}
