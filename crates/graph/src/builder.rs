//! Keyed graph builder.
//!
//! Co-occurrence graphs are built from interned token ids; this builder
//! maps arbitrary `u64` keys to dense [`NodeId`]s so the graph crate stays
//! independent of the corpus crate.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// Builder that creates nodes on first sight of a key.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    graph: Graph,
    key_to_node: HashMap<u64, NodeId>,
    node_to_key: Vec<u64>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node for `key`, created if new.
    pub fn node(&mut self, key: u64) -> NodeId {
        if let Some(&n) = self.key_to_node.get(&key) {
            return n;
        }
        let n = self.graph.add_node();
        self.key_to_node.insert(key, n);
        self.node_to_key.push(key);
        n
    }

    /// Node for `key` if it exists.
    pub fn get(&self, key: u64) -> Option<NodeId> {
        self.key_to_node.get(&key).copied()
    }

    /// Add (or reinforce) an edge between the nodes of two keys.
    pub fn add_edge(&mut self, a: u64, b: u64, w: f64) {
        if a == b {
            return; // co-occurrence of a token with itself carries no signal
        }
        let na = self.node(a);
        let nb = self.node(b);
        self.graph.add_edge(na, nb, w);
    }

    /// The key of a node.
    pub fn key(&self, node: NodeId) -> u64 {
        self.node_to_key[node.index()]
    }

    /// Number of nodes so far.
    pub fn node_count(&self) -> usize {
        self.node_to_key.len()
    }

    /// Finish: the graph plus the node → key table.
    pub fn build(self) -> (Graph, Vec<u64>) {
        (self.graph, self.node_to_key)
    }

    /// Borrow the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_map_to_stable_nodes() {
        let mut b = GraphBuilder::new();
        let n1 = b.node(42);
        let n2 = b.node(7);
        assert_eq!(b.node(42), n1);
        assert_ne!(n1, n2);
        assert_eq!(b.key(n1), 42);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn add_edge_creates_nodes() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 3, 1.0);
        let (g, keys) = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3.0));
    }

    #[test]
    fn self_key_edge_is_ignored() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 5, 1.0);
        assert_eq!(b.graph().edge_count(), 0);
    }

    #[test]
    fn get_without_creating() {
        let mut b = GraphBuilder::new();
        assert!(b.get(9).is_none());
        b.node(9);
        assert!(b.get(9).is_some());
    }
}
