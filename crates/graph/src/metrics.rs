//! Local and global graph metrics.
//!
//! These are raw material for the 12 graph-based polysemy features: a
//! polysemic term's neighbourhood splits into weakly-connected regions, so
//! its local clustering coefficient is low and its degree high relative to
//! its community structure.

use crate::graph::{Graph, NodeId};

/// Edge density: `2m / (n(n-1))`; 0 for graphs with fewer than 2 nodes.
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count() as f64;
    if n < 2.0 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / (n * (n - 1.0))
}

/// Local clustering coefficient of one node: the fraction of its
/// neighbour pairs that are themselves connected. 0 for degree < 2.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let nbs = g.neighbours(v);
    let d = nbs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if g.has_edge(nbs[i].0, nbs[j].0) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Average local clustering coefficient over all nodes (0 for the empty
/// graph).
pub fn average_clustering(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    g.nodes().map(|v| local_clustering(g, v)).sum::<f64>() / g.node_count() as f64
}

/// Summary statistics of the degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Population variance of degrees.
    pub variance: f64,
}

/// Compute [`DegreeStats`]; `None` for the empty graph.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    if g.node_count() == 0 {
        return None;
    }
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let n = degrees.len() as f64;
    let mean = degrees.iter().sum::<usize>() as f64 / n;
    let variance = degrees
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / n;
    Some(DegreeStats {
        min: *degrees.iter().min().expect("nonempty"),
        max: *degrees.iter().max().expect("nonempty"),
        mean,
        variance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 3 hanging off 0.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(3), 1.0);
        g
    }

    #[test]
    fn density_triangle() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        assert!((density(&g) - 1.0).abs() < 1e-12);
        assert_eq!(density(&Graph::with_nodes(1)), 0.0);
        assert_eq!(density(&Graph::new()), 0.0);
    }

    #[test]
    fn local_clustering_values() {
        let g = triangle_plus_tail();
        // Node 0 has neighbours {1,2,3}; only pair (1,2) is closed: 1/3.
        assert!((local_clustering(&g, NodeId(0)) - 1.0 / 3.0).abs() < 1e-12);
        // Node 1 has neighbours {0,2}, closed: 1.
        assert!((local_clustering(&g, NodeId(1)) - 1.0).abs() < 1e-12);
        // Leaf node: 0.
        assert_eq!(local_clustering(&g, NodeId(3)), 0.0);
    }

    #[test]
    fn average_clustering_mixes() {
        let g = triangle_plus_tail();
        let avg = average_clustering(&g);
        let expected = (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0;
        assert!((avg - expected).abs() < 1e-12);
        assert_eq!(average_clustering(&Graph::new()), 0.0);
    }

    #[test]
    fn degree_stats_values() {
        let g = triangle_plus_tail();
        let s = degree_stats(&g).expect("nonempty");
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.variance > 0.0);
        assert!(degree_stats(&Graph::new()).is_none());
    }

    #[test]
    fn star_has_zero_clustering() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), 1.0);
        }
        assert_eq!(local_clustering(&g, NodeId(0)), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
    }
}
