//! Connected components.

use crate::graph::{Graph, NodeId};

/// Component label per node (labels are dense, assigned in discovery
/// order) plus the number of components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label per node.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Nodes of component `c`.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Sizes of all components, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Compute connected components by iterative DFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in g.nodes() {
        if labels[start.index()] != u32::MAX {
            continue;
        }
        labels[start.index()] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &(u, _) in g.neighbours(v) {
                if labels[u.index()] == u32::MAX {
                    labels[u.index()] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(3), NodeId(4), 1.0);
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_eq!(c.sizes(), vec![3, 2]);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.members(1), vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = Graph::with_nodes(3);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn empty_graph() {
        let c = connected_components(&Graph::new());
        assert_eq!(c.count, 0);
        assert_eq!(c.largest(), 0);
        assert!(c.labels.is_empty());
    }

    #[test]
    fn single_component_labels_are_zero() {
        let mut g = Graph::with_nodes(4);
        for i in 0..3u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!(c.labels.iter().all(|&l| l == 0));
    }
}
