//! BFS distances.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Unweighted shortest-path distances from `source` to every node;
/// `None` for unreachable nodes.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("visited");
        for &(u, _) in g.neighbours(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Shortest-path length between two nodes, if connected.
pub fn distance(g: &Graph, a: NodeId, b: NodeId) -> Option<u32> {
    bfs_distances(g, a)[b.index()]
}

/// Eccentricity of a node within its component (max distance to any
/// reachable node).
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        g
    }

    #[test]
    fn distances_on_path() {
        let g = path4();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(distance(&g, NodeId(0), NodeId(3)), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = path4();
        let iso = g.add_node();
        assert_eq!(distance(&g, NodeId(0), iso), None);
    }

    #[test]
    fn eccentricity_of_path_ends() {
        let g = path4();
        assert_eq!(eccentricity(&g, NodeId(0)), 3);
        assert_eq!(eccentricity(&g, NodeId(1)), 2);
    }

    #[test]
    fn isolated_node_has_zero_eccentricity() {
        let g = Graph::with_nodes(1);
        assert_eq!(eccentricity(&g, NodeId(0)), 0);
    }
}
