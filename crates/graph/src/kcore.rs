//! k-core decomposition.
//!
//! The core number of a candidate term's node is one of the graph-based
//! polysemy features: hub terms that survive deep cores connect several
//! topical regions.

use crate::graph::Graph;

/// Core number per node (Batagelj–Zaveršnik peeling, O(m)).
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0usize; n];
    {
        let mut next = bins.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = next[d];
            order[pos[v]] = v;
            next[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v] = degree[v] as u32;
        for &(u, _) in g.neighbours(crate::graph::NodeId(v as u32)) {
            let u = u.index();
            if degree[u] > degree[v] {
                // Move u one bucket down: swap it with the first node of
                // its current bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order[pu] = w;
                    order[pw] = u;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The maximum core number (graph degeneracy); 0 for the empty graph.
pub fn degeneracy(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (core 2), tail 3 (core 1), isolated 4 (core 0).
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let core = core_numbers(&g);
        assert_eq!(core, vec![2, 2, 2, 1, 0]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn clique_core_equals_size_minus_one() {
        let k = 5;
        let mut g = Graph::with_nodes(k);
        for i in 0..k as u32 {
            for j in (i + 1)..k as u32 {
                g.add_edge(NodeId(i), NodeId(j), 1.0);
            }
        }
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == (k as u32 - 1)));
    }

    #[test]
    fn path_has_core_one() {
        let mut g = Graph::with_nodes(4);
        for i in 0..3u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        assert!(core_numbers(&g).iter().all(|&c| c == 1));
    }

    #[test]
    fn empty_graph() {
        assert!(core_numbers(&Graph::new()).is_empty());
        assert_eq!(degeneracy(&Graph::new()), 0);
    }
}
