//! Weighted PageRank.

use crate::graph::Graph;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankParams {
    /// Damping factor (usually 0.85).
    pub damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 200,
        }
    }
}

/// Compute weighted PageRank scores (sum to 1 over nodes). The empty graph
/// yields an empty vector. Isolated nodes receive the teleport mass only.
pub fn pagerank(g: &Graph, params: PageRankParams) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut next = vec![0.0; n];
    let wdeg: Vec<f64> = g.nodes().map(|v| g.weighted_degree(v)).collect();
    for _ in 0..params.max_iterations {
        let teleport = (1.0 - params.damping) / nf;
        // Mass of dangling (isolated) nodes is redistributed uniformly.
        let dangling: f64 = (0..n).filter(|&i| wdeg[i] == 0.0).map(|i| rank[i]).sum();
        for x in next.iter_mut() {
            *x = teleport + params.damping * dangling / nf;
        }
        for v in g.nodes() {
            if wdeg[v.index()] == 0.0 {
                continue;
            }
            let share = params.damping * rank[v.index()] / wdeg[v.index()];
            for &(u, w) in g.neighbours(v) {
                next[u.index()] += share * w;
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < params.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn sums_to_one() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let r = pagerank(&g, PageRankParams::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn hub_ranks_highest() {
        // Star: center 0 must dominate.
        let mut g = Graph::with_nodes(6);
        for i in 1..6 {
            g.add_edge(NodeId(0), NodeId(i), 1.0);
        }
        let r = pagerank(&g, PageRankParams::default());
        for i in 1..6 {
            assert!(r[0] > r[i], "center {} leaf {}", r[0], r[i]);
        }
    }

    #[test]
    fn symmetric_graph_has_uniform_ranks() {
        // Cycle: all equal by symmetry.
        let mut g = Graph::with_nodes(5);
        for i in 0..5u32 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 5), 1.0);
        }
        let r = pagerank(&g, PageRankParams::default());
        for w in r.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn weights_bias_rank() {
        // Path 0-1, 1-2 where edge 1-2 is much heavier: 2 outranks 0.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 10.0);
        let r = pagerank(&g, PageRankParams::default());
        assert!(r[2] > r[0]);
    }

    #[test]
    fn empty_and_isolated() {
        assert!(pagerank(&Graph::new(), PageRankParams::default()).is_empty());
        let g = Graph::with_nodes(3);
        let r = pagerank(&g, PageRankParams::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!((r[0] - r[1]).abs() < 1e-12);
    }
}
