//! Community detection: weighted label propagation, plus Newman
//! modularity for scoring partitions.
//!
//! The polysemy features include "number of communities in the term's
//! neighbourhood graph" — a polysemic term's ego network fragments into
//! one community per sense.

use crate::graph::Graph;
#[cfg(test)]
use crate::graph::NodeId;

/// Weighted label propagation with deterministic tie-breaking (lowest
/// label wins; nodes scanned in id order). Returns dense community labels.
pub fn label_propagation(g: &Graph, max_rounds: usize) -> Vec<u32> {
    let n = g.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut weight_by_label: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for _ in 0..max_rounds {
        let mut changed = false;
        for v in g.nodes() {
            if g.degree(v) == 0 {
                continue;
            }
            weight_by_label.clear();
            for &(u, w) in g.neighbours(v) {
                *weight_by_label.entry(labels[u.index()]).or_insert(0.0) += w;
            }
            // Deterministic argmax: heaviest label, lowest id on ties.
            let mut best = labels[v.index()];
            let mut best_w = f64::NEG_INFINITY;
            let mut keys: Vec<u32> = weight_by_label.keys().copied().collect();
            keys.sort_unstable();
            for l in keys {
                let w = weight_by_label[&l];
                if w > best_w {
                    best_w = w;
                    best = l;
                }
            }
            if best != labels[v.index()] {
                labels[v.index()] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    relabel_dense(&labels)
}

/// Renumber labels to a dense 0..k range preserving first-occurrence order.
fn relabel_dense(labels: &[u32]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    let mut next = 0u32;
    labels
        .iter()
        .map(|&l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect()
}

/// Number of distinct communities in a labelling.
pub fn community_count(labels: &[u32]) -> usize {
    let mut set: Vec<u32> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

/// Newman modularity of a partition on a weighted graph.
pub fn modularity(g: &Graph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), g.node_count(), "label/node count mismatch");
    let m2 = 2.0 * g.total_weight();
    if m2 == 0.0 {
        return 0.0;
    }
    let mut q = 0.0;
    // Within-community weight term.
    for (a, b, w) in g.edges() {
        if labels[a.index()] == labels[b.index()] {
            q += 2.0 * w; // each undirected edge contributes twice in the sum over ordered pairs
        }
    }
    // Degree-product term per community.
    let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut deg_sum = vec![0.0; k];
    for v in g.nodes() {
        deg_sum[labels[v.index()] as usize] += g.weighted_degree(v);
    }
    let penalty: f64 = deg_sum.iter().map(|d| d * d).sum();
    (q - penalty / m2) / m2
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by a single weak bridge.
    fn two_cliques() -> Graph {
        let mut g = Graph::with_nodes(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(NodeId(a), NodeId(b), 1.0);
        }
        g.add_edge(NodeId(2), NodeId(3), 0.1);
        g
    }

    #[test]
    fn label_propagation_finds_two_communities() {
        let g = two_cliques();
        let labels = label_propagation(&g, 50);
        assert_eq!(community_count(&labels), 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn modularity_prefers_true_partition() {
        let g = two_cliques();
        let good = vec![0, 0, 0, 1, 1, 1];
        let bad = vec![0, 1, 0, 1, 0, 1];
        let all_one = vec![0, 0, 0, 0, 0, 0];
        assert!(modularity(&g, &good) > modularity(&g, &all_one));
        assert!(modularity(&g, &good) > modularity(&g, &bad));
        assert!(modularity(&g, &good) > 0.3);
    }

    #[test]
    fn modularity_of_single_community_is_near_zero() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        let q = modularity(&g, &[0, 0, 0]);
        assert!(q.abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn isolated_nodes_keep_own_labels() {
        let g = Graph::with_nodes(3);
        let labels = label_propagation(&g, 10);
        assert_eq!(community_count(&labels), 3);
    }

    #[test]
    fn empty_graph_modularity() {
        assert_eq!(modularity(&Graph::new(), &[]), 0.0);
    }

    #[test]
    fn deterministic() {
        let g = two_cliques();
        assert_eq!(label_propagation(&g, 50), label_propagation(&g, 50));
    }
}
