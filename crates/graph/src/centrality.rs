//! Betweenness (Brandes) and closeness centrality.

use crate::graph::{Graph, NodeId};
use crate::paths::bfs_distances;
use std::collections::VecDeque;

/// Unweighted betweenness centrality (Brandes 2001). Scores are
/// unnormalized pair counts; divide by `(n-1)(n-2)/2` to normalize for an
/// undirected graph.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut cb = vec![0.0; n];
    for s in g.nodes() {
        // Single-source shortest paths with path counting.
        let mut stack: Vec<NodeId> = Vec::with_capacity(n);
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0_f64; n];
        let mut dist = vec![-1_i64; n];
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &(w, _) in g.neighbours(v) {
                if dist[w.index()] < 0 {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
                if dist[w.index()] == dist[v.index()] + 1 {
                    sigma[w.index()] += sigma[v.index()];
                    preds[w.index()].push(v);
                }
            }
        }
        // Accumulate dependencies.
        let mut delta = vec![0.0_f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w.index()] {
                delta[v.index()] += sigma[v.index()] / sigma[w.index()] * (1.0 + delta[w.index()]);
            }
            if w != s {
                cb[w.index()] += delta[w.index()];
            }
        }
    }
    // Each undirected pair was counted twice.
    for x in &mut cb {
        *x /= 2.0;
    }
    cb
}

/// Closeness centrality of each node: `(reachable)/(n-1) * (reachable)/(sum
/// of distances)` — the Wasserman–Faust formula, which handles
/// disconnected graphs gracefully. Isolated nodes score 0.
pub fn closeness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0; n];
    if n < 2 {
        return out;
    }
    for v in g.nodes() {
        let dists = bfs_distances(g, v);
        let mut reach = 0.0;
        let mut total = 0.0;
        for (u, d) in dists.iter().enumerate() {
            if u == v.index() {
                continue;
            }
            if let Some(d) = d {
                reach += 1.0;
                total += f64::from(*d);
            }
        }
        if total > 0.0 {
            out[v.index()] = (reach / (n as f64 - 1.0)) * (reach / total);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        g
    }

    #[test]
    fn betweenness_of_path() {
        let g = path5();
        let cb = betweenness(&g);
        // Middle node lies on all 2*... pairs: exact values for P5 are
        // [0, 3, 4, 3, 0].
        let expect = [0.0, 3.0, 4.0, 3.0, 0.0];
        for (a, e) in cb.iter().zip(expect.iter()) {
            assert!((a - e).abs() < 1e-9, "{cb:?}");
        }
    }

    #[test]
    fn betweenness_of_star_center() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), 1.0);
        }
        let cb = betweenness(&g);
        // Center lies on all C(4,2)=6 pairs.
        assert!((cb[0] - 6.0).abs() < 1e-9);
        for &leaf in &cb[1..] {
            assert!(leaf.abs() < 1e-9);
        }
    }

    #[test]
    fn betweenness_counts_multiple_shortest_paths() {
        // Square 0-1-2-3-0: pairs (0,2) and (1,3) each have two shortest
        // paths, giving each intermediate node 0.5 per pair.
        let mut g = Graph::with_nodes(4);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 4), 1.0);
        }
        let cb = betweenness(&g);
        for x in cb {
            assert!((x - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn closeness_orders_path_nodes() {
        let g = path5();
        let cc = closeness(&g);
        assert!(cc[2] > cc[1]);
        assert!(cc[1] > cc[0]);
        assert!((cc[0] - cc[4]).abs() < 1e-12, "symmetry");
    }

    #[test]
    fn closeness_of_disconnected() {
        let mut g = path5();
        let iso = g.add_node();
        let cc = closeness(&g);
        assert_eq!(cc[iso.index()], 0.0);
        assert!(cc[2] > 0.0);
    }

    #[test]
    fn empty_graphs() {
        assert!(betweenness(&Graph::new()).is_empty());
        assert!(closeness(&Graph::new()).is_empty());
        assert_eq!(closeness(&Graph::with_nodes(1)), vec![0.0]);
    }
}
