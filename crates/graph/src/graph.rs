//! The core undirected weighted graph.

use std::fmt;

/// Dense node identifier within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An undirected weighted graph stored as adjacency lists.
///
/// Invariants:
/// * no self-loops;
/// * at most one edge per node pair (adding an existing edge accumulates
///   its weight);
/// * adjacency lists are kept sorted by neighbour id.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(NodeId, f64)>>,
    n_edges: usize,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            n_edges: 0,
        }
    }

    /// Add one node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(u32::try_from(self.adj.len()).expect("more than u32::MAX nodes"));
        self.adj.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterate node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Add (or reinforce) the undirected edge `a—b` with weight `w`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range nodes, or non-positive weight.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, w: f64) {
        assert!(a != b, "self-loop {a}");
        assert!(w > 0.0, "edge weight must be positive, got {w}");
        assert!(a.index() < self.adj.len() && b.index() < self.adj.len());
        let created = Self::insert_half(&mut self.adj[a.index()], b, w);
        Self::insert_half(&mut self.adj[b.index()], a, w);
        if created {
            self.n_edges += 1;
        }
    }

    /// Insert or accumulate; returns true if a new entry was created.
    fn insert_half(list: &mut Vec<(NodeId, f64)>, to: NodeId, w: f64) -> bool {
        match list.binary_search_by_key(&to, |(n, _)| *n) {
            Ok(i) => {
                list[i].1 += w;
                false
            }
            Err(i) => {
                list.insert(i, (to, w));
                true
            }
        }
    }

    /// Neighbours of `a` with edge weights, sorted by neighbour id.
    pub fn neighbours(&self, a: NodeId) -> &[(NodeId, f64)] {
        &self.adj[a.index()]
    }

    /// Degree (number of incident edges).
    pub fn degree(&self, a: NodeId) -> usize {
        self.adj[a.index()].len()
    }

    /// Sum of incident edge weights.
    pub fn weighted_degree(&self, a: NodeId) -> f64 {
        self.adj[a.index()].iter().map(|(_, w)| w).sum()
    }

    /// Weight of edge `a—b`, or `None` if absent.
    pub fn edge_weight(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let list = &self.adj[a.index()];
        list.binary_search_by_key(&b, |(n, _)| *n)
            .ok()
            .map(|i| list[i].1)
    }

    /// Whether edge `a—b` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_weight(a, b).is_some()
    }

    /// Total edge weight (each edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.adj
            .iter()
            .flat_map(|l| l.iter().map(|(_, w)| w))
            .sum::<f64>()
            / 2.0
    }

    /// Iterate edges `(a, b, w)` once each with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, list)| {
            let a = NodeId(i as u32);
            list.iter()
                .filter(move |(b, _)| a < *b)
                .map(move |&(b, w)| (a, b, w))
        })
    }

    /// The subgraph induced by `nodes`; returns the subgraph and the
    /// mapping from old ids to new ids (dense, in the order given).
    ///
    /// # Panics
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut map = vec![None; self.adj.len()];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(
                map[old.index()].is_none(),
                "duplicate node {old} in induced_subgraph"
            );
            map[old.index()] = Some(NodeId(new as u32));
        }
        let mut g = Graph::with_nodes(nodes.len());
        for &old in nodes {
            let a = map[old.index()].expect("mapped");
            for &(nb, w) in self.neighbours(old) {
                if let Some(b) = map[nb.index()] {
                    if a < b {
                        g.add_edge(a, b, w);
                    }
                }
            }
        }
        (g, nodes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 2.0);
        g.add_edge(NodeId(0), NodeId(2), 3.0);
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!((g.weighted_degree(NodeId(0)) - 4.0).abs() < 1e-12);
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn edge_weight_and_symmetry() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(2)), Some(3.0));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(0)), Some(3.0));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn duplicate_edge_accumulates() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(1), 2.5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3.5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_weight_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    fn edges_iterator_visits_each_once() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 3);
        assert!(es.iter().all(|(a, b, _)| a < b));
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(3), 1.0);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        let nbs: Vec<u32> = g.neighbours(NodeId(0)).iter().map(|(n, _)| n.0).collect();
        assert_eq!(nbs, vec![1, 2, 3]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle();
        let (sub, order) = g.induced_subgraph(&[NodeId(0), NodeId(2)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.edge_weight(NodeId(0), NodeId(1)), Some(3.0));
        assert_eq!(order, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn add_node_grows() {
        let mut g = Graph::new();
        assert!(g.is_empty());
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(g.node_count(), 2);
    }
}
