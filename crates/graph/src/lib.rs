//! # boe-graph
//!
//! Weighted-graph substrate. Step II of the workflow derives 12 of its 23
//! polysemy features from a graph *induced from the text corpus*, and Step
//! IV builds a term co-occurrence graph to select the MeSH neighbourhood
//! of a candidate term. This crate provides the graph structure and the
//! analyses those steps need:
//!
//! * [`graph`] — compact undirected weighted graph (adjacency lists);
//! * [`builder`] — keyed builder mapping external ids (interned tokens) to
//!   node ids;
//! * [`metrics`] — degree statistics, density, clustering coefficients;
//! * [`pagerank`] — weighted PageRank;
//! * [`centrality`] — Brandes betweenness and closeness centrality;
//! * [`kcore`] — k-core decomposition;
//! * [`components`] — connected components;
//! * [`community`] — label propagation and modularity;
//! * [`paths`] — BFS distances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod centrality;
pub mod community;
pub mod components;
pub mod graph;
pub mod kcore;
pub mod metrics;
pub mod pagerank;
pub mod paths;

pub use builder::GraphBuilder;
pub use graph::{Graph, NodeId};
