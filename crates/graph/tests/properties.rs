//! Property tests for the graph substrate.

use boe_graph::centrality::{betweenness, closeness};
use boe_graph::community::{community_count, label_propagation, modularity};
use boe_graph::components::connected_components;
use boe_graph::kcore::core_numbers;
use boe_graph::metrics::{density, local_clustering};
use boe_graph::pagerank::{pagerank, PageRankParams};
use boe_graph::paths::bfs_distances;
use boe_graph::{Graph, NodeId};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..14, proptest::collection::vec((0u32..14, 0u32..14, 0.1f64..3.0), 0..40)).prop_map(
        |(n, edges)| {
            let mut g = Graph::with_nodes(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n as u32, b % n as u32);
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b), w);
                }
            }
            g
        },
    )
}

proptest! {
    #[test]
    fn pagerank_is_a_distribution(g in graph_strategy()) {
        let r = pagerank(&g, PageRankParams::default());
        prop_assert_eq!(r.len(), g.node_count());
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(r.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn components_agree_with_bfs(g in graph_strategy()) {
        let comps = connected_components(&g);
        for v in g.nodes() {
            let dists = bfs_distances(&g, v);
            for u in g.nodes() {
                let same_component = comps.labels[v.index()] == comps.labels[u.index()];
                prop_assert_eq!(dists[u.index()].is_some(), same_component);
            }
        }
        prop_assert_eq!(comps.sizes().iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn core_numbers_bounded_by_degree(g in graph_strategy()) {
        let cores = core_numbers(&g);
        for v in g.nodes() {
            prop_assert!(cores[v.index()] as usize <= g.degree(v));
        }
    }

    #[test]
    fn centralities_are_nonnegative(g in graph_strategy()) {
        prop_assert!(betweenness(&g).iter().all(|&x| x >= -1e-9));
        let cc = closeness(&g);
        prop_assert!(cc.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    }

    #[test]
    fn clustering_and_density_in_unit_interval(g in graph_strategy()) {
        prop_assert!((0.0..=1.0).contains(&density(&g)));
        for v in g.nodes() {
            let c = local_clustering(&g, v);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }

    #[test]
    fn label_propagation_yields_valid_partition(g in graph_strategy()) {
        let labels = label_propagation(&g, 30);
        prop_assert_eq!(labels.len(), g.node_count());
        let k = community_count(&labels);
        prop_assert!(k >= 1 && k <= g.node_count());
        // Modularity is bounded in [-1, 1].
        let q = modularity(&g, &labels);
        prop_assert!((-1.0..=1.0).contains(&q), "q = {q}");
    }

    #[test]
    fn induced_subgraph_preserves_edge_weights(g in graph_strategy()) {
        let keep: Vec<NodeId> = g.nodes().filter(|n| n.0 % 2 == 0).collect();
        let (sub, order) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), keep.len());
        for (new_a, &old_a) in order.iter().enumerate() {
            for (new_b, &old_b) in order.iter().enumerate().skip(new_a + 1) {
                prop_assert_eq!(
                    sub.edge_weight(NodeId(new_a as u32), NodeId(new_b as u32)),
                    g.edge_weight(old_a, old_b)
                );
            }
        }
    }
}
