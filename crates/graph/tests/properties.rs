//! Property tests for the graph substrate.
//!
//! Driven by the workspace's own deterministic PRNG (no external
//! dependencies); each test sweeps seeded random graphs.

use boe_graph::centrality::{betweenness, closeness};
use boe_graph::community::{community_count, label_propagation, modularity};
use boe_graph::components::connected_components;
use boe_graph::kcore::core_numbers;
use boe_graph::metrics::{density, local_clustering};
use boe_graph::pagerank::{pagerank, PageRankParams};
use boe_graph::paths::bfs_distances;
use boe_graph::{Graph, NodeId};
use boe_rng::StdRng;

const CASES: usize = 80;

fn rand_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(2usize..14);
    let mut g = Graph::with_nodes(n);
    let edges = rng.gen_range(0usize..40);
    for _ in 0..edges {
        let a = rng.gen_range(0u32..14) % n as u32;
        let b = rng.gen_range(0u32..14) % n as u32;
        let w = 0.1 + rng.gen::<f64>() * 2.9;
        if a != b {
            g.add_edge(NodeId(a), NodeId(b), w);
        }
    }
    g
}

#[test]
fn pagerank_is_a_distribution() {
    let mut rng = StdRng::seed_from_u64(20);
    for _ in 0..CASES {
        let g = rand_graph(&mut rng);
        let r = pagerank(&g, PageRankParams::default());
        assert_eq!(r.len(), g.node_count());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(r.iter().all(|&x| x >= 0.0));
    }
}

#[test]
fn components_agree_with_bfs() {
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..CASES {
        let g = rand_graph(&mut rng);
        let comps = connected_components(&g);
        for v in g.nodes() {
            let dists = bfs_distances(&g, v);
            for u in g.nodes() {
                let same_component = comps.labels[v.index()] == comps.labels[u.index()];
                assert_eq!(dists[u.index()].is_some(), same_component);
            }
        }
        assert_eq!(comps.sizes().iter().sum::<usize>(), g.node_count());
    }
}

#[test]
fn core_numbers_bounded_by_degree() {
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..CASES {
        let g = rand_graph(&mut rng);
        let cores = core_numbers(&g);
        for v in g.nodes() {
            assert!(cores[v.index()] as usize <= g.degree(v));
        }
    }
}

#[test]
fn centralities_are_nonnegative() {
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..CASES {
        let g = rand_graph(&mut rng);
        assert!(betweenness(&g).iter().all(|&x| x >= -1e-9));
        let cc = closeness(&g);
        assert!(cc.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    }
}

#[test]
fn clustering_and_density_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(24);
    for _ in 0..CASES {
        let g = rand_graph(&mut rng);
        assert!((0.0..=1.0).contains(&density(&g)));
        for v in g.nodes() {
            let c = local_clustering(&g, v);
            assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }
}

#[test]
fn label_propagation_yields_valid_partition() {
    let mut rng = StdRng::seed_from_u64(25);
    for _ in 0..CASES {
        let g = rand_graph(&mut rng);
        let labels = label_propagation(&g, 30);
        assert_eq!(labels.len(), g.node_count());
        let k = community_count(&labels);
        assert!(k >= 1 && k <= g.node_count());
        // Modularity is bounded in [-1, 1].
        let q = modularity(&g, &labels);
        assert!((-1.0..=1.0).contains(&q), "q = {q}");
    }
}

#[test]
fn induced_subgraph_preserves_edge_weights() {
    let mut rng = StdRng::seed_from_u64(26);
    for _ in 0..CASES {
        let g = rand_graph(&mut rng);
        let keep: Vec<NodeId> = g.nodes().filter(|n| n.0 % 2 == 0).collect();
        let (sub, order) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), keep.len());
        for (new_a, &old_a) in order.iter().enumerate() {
            for (new_b, &old_b) in order.iter().enumerate().skip(new_a + 1) {
                assert_eq!(
                    sub.edge_weight(NodeId(new_a as u32), NodeId(new_b as u32)),
                    g.edge_weight(old_a, old_b)
                );
            }
        }
    }
}
