//! Bench E6 — **Table 4**: regenerates the precision@{1,2,5,10} table at
//! the paper's scale (60 held-out terms), runs ablation A4 (hierarchy
//! expansion off; candidate-pool sweep), then times the full 60-term
//! evaluation.

use boe_bench::harness::Criterion;
use boe_bench::{criterion_group, criterion_main};
use boe_eval::exp_linkage_precision;
use boe_eval::world::World;

fn bench(c: &mut Criterion) {
    let world = World::generate(&boe_bench::bench_world_config());
    let result = exp_linkage_precision::run(&world, 300, true);
    println!("\n{}", exp_linkage_precision::render(&result));

    // Ablation A4: hierarchy expansion + candidate-pool width.
    let no_hier = exp_linkage_precision::run(&world, 300, false);
    println!(
        "ablation A4a — hierarchy expansion: top-10 {:.3} with vs {:.3} without",
        result.at[3], no_hier.at[3]
    );
    for pool in [50usize, 150, 300] {
        let r = exp_linkage_precision::run(&world, pool, true);
        println!(
            "ablation A4b — candidate pool {pool:>3}: P@1 {:.3}  P@2 {:.3}  P@5 {:.3}  P@10 {:.3}",
            r.at[0], r.at[1], r.at[2], r.at[3]
        );
    }

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("precision_at_n_60_terms", |b| {
        b.iter(|| exp_linkage_precision::run(&world, 300, true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
