//! Bench E5 — **Table 3**: regenerates the case-study proposition table
//! for one held-out term and times one `propose()` call.

use boe_bench::harness::Criterion;
use boe_bench::{criterion_group, criterion_main};
use boe_core::linkage::{LinkerConfig, SemanticLinker};
use boe_core::termex::candidates::CandidateOptions;
use boe_core::termex::{TermExtractor, TermMeasure};
use boe_eval::exp_linkage_case;
use boe_eval::world::World;

fn bench(c: &mut Criterion) {
    let world = World::generate(&boe_bench::bench_world_config());
    let case = exp_linkage_case::run(&world, 0, 300);
    println!("\n{}", exp_linkage_case::render(&case));

    let extractor = TermExtractor::new(&world.corpus, CandidateOptions::default());
    let candidates: Vec<String> = extractor
        .top(&world.corpus, TermMeasure::LidfValue, 300)
        .into_iter()
        .map(|t| t.surface)
        .collect();
    let linker = SemanticLinker::with_candidates(
        &world.corpus,
        &world.reduced_ontology,
        LinkerConfig::default(),
        &candidates,
    );
    let surface = world.holdout[0].surface.clone();
    c.bench_function("table3/propose_one_term", |b| {
        b.iter(|| linker.propose(&surface))
    });
    c.bench_function("table3/linker_build", |b| {
        b.iter(|| {
            SemanticLinker::with_candidates(
                &world.corpus,
                &world.reduced_ontology,
                LinkerConfig::default(),
                &candidates,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
