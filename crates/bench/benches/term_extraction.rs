//! Bench A3 — term-extraction measure ablation: compares all seven
//! BIOTEX measures on a corpus with known gold terms (precision@N of
//! recovering concept labels), then times candidate extraction and each
//! measure's ranking pass.

use boe_bench::harness::Criterion;
use boe_bench::{criterion_group, criterion_main};
use boe_core::termex::candidates::CandidateOptions;
use boe_core::termex::{TermExtractor, TermMeasure};
use boe_eval::world::{World, WorldConfig};
use boe_textkit::normalize::match_key;
use std::collections::HashSet;

fn bench(c: &mut Criterion) {
    let world = World::generate(&WorldConfig {
        n_concepts: 150,
        n_holdout: 15,
        abstracts_per_concept: 5,
        ..Default::default()
    });
    // Gold = every term of the full ontology (multi-word concept labels).
    let gold: HashSet<String> = world
        .full_ontology
        .terms()
        .iter()
        .map(|(t, _)| match_key(t))
        .collect();
    let extractor = TermExtractor::new(&world.corpus, CandidateOptions::default());

    println!("\nAblation A3 — precision@100 of gold-term recovery per measure:");
    for measure in TermMeasure::ALL {
        let top = extractor.top(&world.corpus, measure, 100);
        let hits = top
            .iter()
            .filter(|t| gold.contains(&match_key(&t.surface)))
            .count();
        println!(
            "  {:<12} P@100 = {:.3}",
            measure.name(),
            hits as f64 / 100.0
        );
    }

    c.bench_function("term_extraction/extract_candidates", |b| {
        b.iter(|| TermExtractor::new(&world.corpus, CandidateOptions::default()))
    });
    for measure in TermMeasure::ALL {
        c.bench_function(&format!("term_extraction/rank_{}", measure.name()), |b| {
            b.iter(|| extractor.rank(&world.corpus, measure))
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
