//! Bench E3 — §3(i): regenerates the full sense-number-prediction
//! accuracy matrix at paper scale (203 entities; paper's best: 93.1% with
//! max(f_k)), covering ablations A1 (index choice, incl. silhouette/CH
//! baselines) and A2 (bag-of-words vs graph representation), then times
//! the per-entity prediction kernel.

use boe_bench::harness::Criterion;
use boe_bench::{criterion_group, criterion_main};
use boe_cluster::{Algorithm, InternalIndex};
use boe_core::senses::{build_representation, Representation};
use boe_corpus::context::{ContextScope, StemMap};
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::synth::mshwsd::MshWsdDataset;
use boe_eval::exp_sense_number;
use boe_textkit::Language;

fn bench(c: &mut Criterion) {
    let cfg = boe_bench::bench_sense_number_config();
    let result = exp_sense_number::run(&cfg);
    println!("\n{}", exp_sense_number::render(&cfg, &result));

    // Kernel: one entity's full k-sweep with the default method.
    let data = MshWsdDataset::generate(Language::English, &cfg.dataset);
    let stems = StemMap::build(&data.corpus);
    let occ = OccurrenceIndex::build(&data.corpus);
    let entity = &data.entities[0];
    let sid = data
        .corpus
        .vocab()
        .get(entity.surface_text())
        .expect("interned");
    let mut ctxs = build_representation(
        &data.corpus,
        &occ,
        &[sid],
        Representation::BagOfWords,
        &stems,
        ContextScope::Document,
    );
    ctxs.truncate(cfg.max_contexts);
    c.bench_function("sense_number/k_sweep_direct_ek_one_entity", |b| {
        b.iter(|| {
            boe_cluster::kpredict::predict_k(
                &ctxs,
                boe_cluster::kpredict::KPredictConfig {
                    k_range: (2, 5),
                    algorithm: Algorithm::Direct,
                    index: InternalIndex::Ek,
                    seed: 7,
                },
            )
        })
    });
    c.bench_function("sense_number/context_build_one_entity", |b| {
        b.iter(|| {
            build_representation(
                &data.corpus,
                &occ,
                &[sid],
                Representation::BagOfWords,
                &stems,
                ContextScope::Document,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
