//! Bench E1 — regenerates **Table 1** and times the polysemy-statistics
//! kernel over a UMLS-scale terminology.

use boe_bench::harness::{BatchSize, Criterion};
use boe_bench::{criterion_group, criterion_main};
use boe_eval::exp_table1;
use boe_ontology::polysemy::PolysemyStats;
use boe_ontology::synth::umls::{PolysemyProfile, UmlsGenerator};
use boe_textkit::Language;

fn bench(c: &mut Criterion) {
    // Regenerate the table once (1/10 scale: ~1M terms for English).
    let (umls, mesh) = exp_table1::run(10);
    println!("\n{}", exp_table1::render(&umls, &mesh));

    let onto = UmlsGenerator::new(
        Language::English,
        PolysemyProfile::umls(Language::English, 100),
    )
    .generate();
    c.bench_function("table1/polysemy_stats_en_umls_1pct", |b| {
        b.iter_batched(|| &onto, PolysemyStats::compute, BatchSize::SmallInput)
    });
    c.bench_function("table1/generate_en_umls_1pct", |b| {
        b.iter(|| {
            UmlsGenerator::new(
                Language::English,
                PolysemyProfile::umls(Language::English, 100),
            )
            .generate()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
