//! Bench E2 — **Table 2**: times the five new internal indexes (plus the
//! baselines) on a realistic clustering solution, and prints their scores
//! for a controlled 3-blob fixture so the definitions are visible in the
//! bench log.

use boe_bench::harness::Criterion;
use boe_bench::{criterion_group, criterion_main};
use boe_cluster::{Algorithm, ClusterSolution, InternalIndex};
use boe_corpus::SparseVector;
use boe_rng::StdRng;

/// `k` noisy topical blobs of `per` sparse vectors each.
fn blobs(per: usize, k: usize, dims_per_blob: u32, seed: u64) -> Vec<SparseVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vs = Vec::new();
    for c in 0..k as u32 {
        for _ in 0..per {
            let base = c * dims_per_blob;
            let pairs: Vec<(u32, f64)> = (0..8)
                .map(|_| (base + rng.gen_range(0..dims_per_blob), 1.0))
                .collect();
            vs.push(SparseVector::from_pairs(pairs).normalized());
        }
    }
    vs
}

fn bench(c: &mut Criterion) {
    let vs = blobs(60, 3, 40, 1);
    let sol: ClusterSolution = Algorithm::Direct.cluster(&vs, 3, 7);

    println!("\nTable 2 indexes on a 3-blob fixture (180 objects):");
    for index in InternalIndex::ALL {
        println!(
            "  {:<18} = {:>10.4}  ({})",
            index.name(),
            index.score(&sol, &vs),
            if index.maximize() {
                "maximize"
            } else {
                "minimize"
            }
        );
    }

    for index in InternalIndex::ALL {
        c.bench_function(&format!("table2/index_{}", index.name()), |b| {
            b.iter(|| index.score(&sol, &vs))
        });
    }
    c.bench_function("table2/cluster_direct_k3_n180", |b| {
        b.iter(|| Algorithm::Direct.cluster(&vs, 3, 7))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
