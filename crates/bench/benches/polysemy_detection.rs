//! Bench E4 — §2(II): regenerates the polysemy-detection F-measure table
//! (paper: 98%) with the feature-subset ablation, then times the
//! 23-feature extraction kernel.

use boe_bench::harness::Criterion;
use boe_bench::{criterion_group, criterion_main};
use boe_core::polysemy::detector::FeatureContext;
use boe_eval::exp_polysemy::{self, FeatureSubset, PolysemyExpConfig};

fn bench(c: &mut Criterion) {
    let cfg = PolysemyExpConfig::default();
    let mut results = exp_polysemy::run(&cfg);
    // Feature-subset ablation with the best single model.
    let ablation_cfg = PolysemyExpConfig {
        models: vec![boe_core::polysemy::detector::PolysemyModel::Forest],
        ..cfg.clone()
    };
    results.extend(exp_polysemy::run_subset(
        &ablation_cfg,
        FeatureSubset::DirectOnly,
    ));
    results.extend(exp_polysemy::run_subset(
        &ablation_cfg,
        FeatureSubset::GraphOnly,
    ));
    println!("\n{}", exp_polysemy::render(&results));

    let (corpus, terms) = exp_polysemy::generate_term_set(&cfg);
    let ctx = FeatureContext::build(&corpus);
    let (term, _) = &terms[0];
    let ids = corpus.phrase_ids(term).expect("interned");
    c.bench_function("polysemy/features_23_one_term", |b| {
        b.iter(|| ctx.features(&ids, term))
    });
    c.bench_function("polysemy/feature_context_build", |b| {
        b.iter(|| FeatureContext::build(&corpus))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
