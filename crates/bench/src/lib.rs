//! # boe-bench
//!
//! Criterion benches (under `benches/`) regenerating every table of the
//! EDBT-2016 paper plus the design-choice ablations of DESIGN.md §4:
//!
//! | bench | paper artifact |
//! |-------|----------------|
//! | `table1_polysemy_stats` | Table 1 |
//! | `table2_internal_indexes` | Table 2 (index kernels) |
//! | `sense_number_accuracy` | §3(i) accuracy matrix (93.1%) + ablations A1/A2 |
//! | `polysemy_detection` | §2(II) F-measure (98%) |
//! | `table3_linkage_case` | Table 3 |
//! | `table4_linkage_precision` | Table 4 + ablation A4 |
//! | `term_extraction` | ablation A3 (measure comparison) |
//!
//! Each bench prints the regenerated table once (so `cargo bench` output
//! contains every paper number) and then times the hot kernel behind it.

#![forbid(unsafe_code)]

pub mod harness;

use boe_corpus::synth::mshwsd::MshWsdConfig;
use boe_eval::exp_sense_number::SenseNumberConfig;
use boe_eval::world::WorldConfig;

/// The bench-scale E3 configuration: full 203 entities at a context cap
/// that keeps the 5-algorithm sweep within bench budgets.
pub fn bench_sense_number_config() -> SenseNumberConfig {
    SenseNumberConfig {
        dataset: MshWsdConfig {
            n_entities: 203,
            snippets_per_sense: 30,
            ..Default::default()
        },
        max_contexts: 90,
        ..Default::default()
    }
}

/// The bench-scale world for the linkage experiments (paper scale: 60
/// held-out terms).
pub fn bench_world_config() -> WorldConfig {
    WorldConfig {
        n_concepts: 300,
        n_holdout: 60,
        abstracts_per_concept: 6,
        ..Default::default()
    }
}
