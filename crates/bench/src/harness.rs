//! Minimal, dependency-free bench harness with a Criterion-compatible
//! surface (`Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`).
//!
//! The external `criterion` crate cannot be resolved in the offline
//! build environment, so the benches link against this shim instead.
//! It measures wall-clock time with `std::time::Instant`: a short
//! warm-up, then timed batches until a fixed measurement budget is
//! spent, reporting the per-iteration mean and min over batches. That
//! is enough to compare kernels and catch order-of-magnitude
//! regressions; swap the import back to `criterion` for
//! statistically rigorous runs when network access is available.

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(800);
const BATCHES: u32 = 16;

/// Drop-in stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` under the timing loop and print a one-line report.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        match b.timing {
            Some(t) => {
                println!(
                    "bench {name:<44} {:>12}/iter (min {:>12}, {} iters)",
                    format_ns(t.mean_ns),
                    format_ns(t.min_ns),
                    t.iters
                );
            }
            None => println!("bench {name:<44} (no measurement — Bencher::iter never called)"),
        }
        self
    }

    /// Accepted for `criterion` CLI compatibility; configuration is fixed.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// A named bench group; names are prefixed onto member benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_owned(),
        }
    }

    /// Criterion's group-finalization hook; nothing to flush here.
    pub fn final_summary(&self) {}
}

#[derive(Debug, Clone, Copy)]
struct Timing {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Drop-in stand-in for `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    timing: Option<Timing>,
}

/// Drop-in stand-in for `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's fixed time budget applies.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's fixed time budget applies.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `f` under the group's name prefix.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finish the group (nothing buffered in the shim).
    pub fn finish(self) {}
}

/// Criterion-compatible batch-size hint; the shim's timing loop sizes
/// batches from the warm-up regardless, so the variants are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl Bencher {
    /// Time `routine` applied to fresh `setup` output each iteration
    /// (setup time is included here, unlike Criterion — acceptable for
    /// the cheap borrow-producing setups the benches use).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter(|| routine(setup()));
    }

    /// Time `f`, discarding its output through a `black_box`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also discovers how many iterations fit in a batch.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_batch =
            (warm_iters * MEASURE.as_nanos() as u64 / WARMUP.as_nanos() as u64 / BATCHES as u64)
                .max(1);

        let mut total_ns: u128 = 0;
        let mut min_ns = f64::INFINITY;
        let mut iters: u64 = 0;
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_nanos();
            total_ns += dt;
            min_ns = min_ns.min(dt as f64 / per_batch as f64);
            iters += per_batch;
        }
        self.timing = Some(Timing {
            mean_ns: total_ns as f64 / iters as f64,
            min_ns,
            iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Criterion-compatible group declaration: defines a function running
/// every listed bench against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Criterion-compatible entry point: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_timing() {
        let mut b = Bencher::default();
        // Keep the closure trivial; the harness budget dominates runtime.
        b.iter(|| 1 + 1);
        let t = b.timing.expect("timing recorded");
        assert!(t.mean_ns > 0.0);
        assert!(t.min_ns <= t.mean_ns * 1.5);
        assert!(t.iters >= BATCHES as u64);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
