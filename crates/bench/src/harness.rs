//! Minimal, dependency-free bench harness with a Criterion-compatible
//! surface (`Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`).
//!
//! The external `criterion` crate cannot be resolved in the offline
//! build environment, so the benches link against this shim instead.
//! It measures wall-clock time with `std::time::Instant`: a short
//! warm-up, then timed batches until a fixed measurement budget is
//! spent, reporting the per-iteration mean and min over batches. That
//! is enough to compare kernels and catch order-of-magnitude
//! regressions; swap the import back to `criterion` for
//! statistically rigorous runs when network access is available.

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(800);
const BATCHES: u32 = 16;

/// Drop-in stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` under the timing loop and print a one-line report.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        match b.timing {
            Some(t) => {
                println!(
                    "bench {name:<44} {:>12}/iter (min {:>12}, {} iters)",
                    format_ns(t.mean_ns),
                    format_ns(t.min_ns),
                    t.iters
                );
            }
            None => println!("bench {name:<44} (no measurement — Bencher::iter never called)"),
        }
        self
    }

    /// Accepted for `criterion` CLI compatibility; configuration is fixed.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// A named bench group; names are prefixed onto member benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_owned(),
        }
    }

    /// Criterion's group-finalization hook; nothing to flush here.
    pub fn final_summary(&self) {}
}

#[derive(Debug, Clone, Copy)]
struct Timing {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Drop-in stand-in for `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    timing: Option<Timing>,
}

/// Drop-in stand-in for `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's fixed time budget applies.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's fixed time budget applies.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `f` under the group's name prefix.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finish the group (nothing buffered in the shim).
    pub fn finish(self) {}
}

/// Criterion-compatible batch-size hint; the shim's timing loop sizes
/// batches from the warm-up regardless, so the variants are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl Bencher {
    /// Time `routine` applied to fresh `setup` output each iteration
    /// (setup time is included here, unlike Criterion — acceptable for
    /// the cheap borrow-producing setups the benches use).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter(|| routine(setup()));
    }

    /// Time `f`, discarding its output through a `black_box`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also discovers how many iterations fit in a batch.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_batch =
            (warm_iters * MEASURE.as_nanos() as u64 / WARMUP.as_nanos() as u64 / BATCHES as u64)
                .max(1);

        let mut total_ns: u128 = 0;
        let mut min_ns = f64::INFINITY;
        let mut iters: u64 = 0;
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_nanos();
            total_ns += dt;
            min_ns = min_ns.min(dt as f64 / per_batch as f64);
            iters += per_batch;
        }
        self.timing = Some(Timing {
            mean_ns: total_ns as f64 / iters as f64,
            min_ns,
            iters,
        });
    }
}

/// One timed stage of a perf report: wall-clock milliseconds for a
/// stage run at a given thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name (e.g. `steps_iii_iv`).
    pub stage: String,
    /// Thread count the stage ran with.
    pub threads: usize,
    /// Best-of-runs wall-clock time, in milliseconds.
    pub wall_ms: f64,
    /// Number of timed runs the minimum was taken over.
    pub runs: usize,
}

/// A machine-readable benchmark report, serialized as JSON by hand (the
/// offline build has no serde). Meta entries and stage records keep
/// insertion order so reports diff cleanly run-to-run.
#[derive(Debug, Default)]
pub struct PerfReport {
    meta: Vec<(String, MetaValue)>,
    stages: Vec<StageRecord>,
}

#[derive(Debug, Clone, PartialEq)]
enum MetaValue {
    Num(f64),
    Str(String),
    Bool(bool),
}

impl PerfReport {
    /// An empty report tagged with `bench` (e.g. `"BENCH_3"`).
    pub fn new(bench: &str) -> Self {
        let mut r = PerfReport::default();
        r.set_str("bench", bench);
        r
    }

    /// Set (or overwrite) a numeric meta entry.
    pub fn set_num(&mut self, key: &str, value: f64) {
        self.set(key, MetaValue::Num(value));
    }

    /// Set (or overwrite) a string meta entry.
    pub fn set_str(&mut self, key: &str, value: &str) {
        self.set(key, MetaValue::Str(value.to_owned()));
    }

    /// Set (or overwrite) a boolean meta entry.
    pub fn set_bool(&mut self, key: &str, value: bool) {
        self.set(key, MetaValue::Bool(value));
    }

    fn set(&mut self, key: &str, value: MetaValue) {
        match self.meta.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.meta.push((key.to_owned(), value)),
        }
    }

    /// Record one timed stage.
    pub fn record(&mut self, stage: &str, threads: usize, wall_ms: f64, runs: usize) {
        self.stages.push(StageRecord {
            stage: stage.to_owned(),
            threads,
            wall_ms,
            runs,
        });
    }

    /// Wall time of `stage` at `threads`, if recorded.
    pub fn wall_ms(&self, stage: &str, threads: usize) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage && s.threads == threads)
            .map(|s| s.wall_ms)
    }

    /// `stage`'s speedup going from `base_threads` to `threads`
    /// (>1 means faster), if both are recorded.
    pub fn speedup(&self, stage: &str, base_threads: usize, threads: usize) -> Option<f64> {
        match (
            self.wall_ms(stage, base_threads),
            self.wall_ms(stage, threads),
        ) {
            (Some(base), Some(fast)) if fast > 0.0 => Some(base / fast),
            _ => None,
        }
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (k, v) in &self.meta {
            out.push_str(&format!("  {}: ", json_string(k)));
            match v {
                MetaValue::Num(n) => out.push_str(&json_number(*n)),
                MetaValue::Str(s) => out.push_str(&json_string(s)),
                MetaValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
            out.push_str(",\n");
        }
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": {}, \"threads\": {}, \"wall_ms\": {}, \"runs\": {}}}{}\n",
                json_string(&s.stage),
                s.threads,
                json_number(s.wall_ms),
                s.runs,
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON report to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Inf; clamp those to null).
fn json_number(n: f64) -> String {
    if n.is_finite() {
        format!("{n:.3}")
    } else {
        "null".to_owned()
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Criterion-compatible group declaration: defines a function running
/// every listed bench against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Criterion-compatible entry point: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_timing() {
        let mut b = Bencher::default();
        // Keep the closure trivial; the harness budget dominates runtime.
        b.iter(|| 1 + 1);
        let t = b.timing.expect("timing recorded");
        assert!(t.mean_ns > 0.0);
        assert!(t.min_ns <= t.mean_ns * 1.5);
        assert!(t.iters >= BATCHES as u64);
    }

    #[test]
    fn perf_report_round_trips_to_json() {
        let mut r = PerfReport::new("BENCH_T");
        r.set_bool("smoke", true);
        r.set_num("corpus_tokens", 1234.0);
        r.set_num("corpus_tokens", 5678.0); // overwrite, not duplicate
        r.record("steps_iii_iv", 1, 100.0, 3);
        r.record("steps_iii_iv", 4, 25.0, 3);
        assert_eq!(r.wall_ms("steps_iii_iv", 4), Some(25.0));
        assert_eq!(r.speedup("steps_iii_iv", 1, 4), Some(4.0));
        assert_eq!(r.speedup("steps_iii_iv", 1, 2), None);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"BENCH_T\""), "{json}");
        assert!(json.contains("\"smoke\": true"), "{json}");
        assert!(json.contains("\"corpus_tokens\": 5678.000"), "{json}");
        assert!(!json.contains("1234"), "{json}");
        assert!(json.contains("\"threads\": 4"), "{json}");
        // Exactly one trailing-comma-free array: valid JSON by eyeball —
        // and by the cheap structural checks below.
        assert_eq!(json.matches("\"stage\":").count(), 2);
        assert!(!json.contains(",]") && !json.contains(",}"), "{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5), "1.500");
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
