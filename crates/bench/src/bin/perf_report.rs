//! `perf_report` — machine-readable wall-time report for the Step I–IV
//! hot paths, written as `BENCH_5.json`.
//!
//! Measures, over a synthetic PubMed-like world:
//!
//! - `corpus_ingest_serial` vs `corpus_ingest_batch` — raw-text
//!   ingestion through the per-document `add_text` loop vs the batch
//!   `add_texts` path (parallel tokenize+tag, serial intern), at several
//!   thread counts;
//! - `term_extraction_serial` vs `term_extraction_parallel` — the Step I
//!   candidate scan: the serial reference (quadratic nested-occurrence
//!   loop) vs the parallel kernel (per-doc scan + sentence-local
//!   interval index), at several thread counts;
//! - `tergraph_serial` vs `tergraph_parallel` — the Step I term
//!   co-occurrence graph build + TeRGraph node scores;
//! - `occurrence_resolution_naive` vs `occurrence_resolution_indexed` —
//!   phrase-occurrence lookup for every ontology term + candidate,
//!   full-corpus scans against the shared positional
//!   [`OccurrenceIndex`] (single-threaded: this win is algorithmic);
//! - `inventory_build_naive` vs `inventory_build_indexed` — the Step IV
//!   ontology-term inventory harvest through each resolution backend,
//!   at several thread counts (the indexed timing includes building the
//!   index: that is what a pipeline run pays);
//! - `steps_iii_iv` — the pipeline's per-term Step III (sense induction)
//!   + Step IV (semantic linkage) fan-out, at several thread counts;
//! - `linkage_naive` vs `linkage_inverted` — the brute-force cosine scan
//!   against the inverted-index top-k scorer;
//! - `score_kernel_*` / `similarity_matrix` — the isolated Step III/IV
//!   scoring kernels.
//!
//! Usage: `perf_report [--smoke] [--out PATH] [--deadline-ms N]`.
//! `--smoke` shrinks the world and the thread sweep so CI can afford the
//! run; the JSON then carries `"smoke": true` so readers don't compare
//! across scales. Thread-scaling numbers are only meaningful when the
//! host grants the process enough cores — `threads_available` records
//! what it granted, and on a single-core host the `speedup_*_Nt`
//! thread-scaling keys are omitted entirely (a `thread_scaling` note
//! says why) instead of publishing fabricated 1× figures. Algorithmic
//! `*_vs_naive`/`*_vs_quadratic` speedups are single-threaded
//! comparisons and stay valid on any host.
//!
//! Two honesty guards protect published numbers:
//!
//! - if a chaos plan is armed (`BOE_CHAOS`), the tool refuses to run —
//!   injected stalls/panics would poison every timing;
//! - `--deadline-ms` runs the sweep under a wall-clock governor; the
//!   JSON carries `"governed": true`, and if the deadline trips the
//!   partial report goes to stdout only — `BENCH_*.json` is NOT written
//!   and the exit code is 8, so CI can't archive a truncated sweep.

use boe_bench::harness::PerfReport;
use boe_core::governor::{BudgetConfig, Governor};
use boe_core::linkage::{LinkerConfig, OntologyTermInventory, SemanticLinker};
use boe_core::senses::{SenseInducer, SenseInducerConfig};
use boe_core::termex::candidates::CandidateOptions;
use boe_core::termex::{
    extract_candidates, extract_candidates_serial, tergraph_scores, tergraph_scores_serial,
    term_cooccurrence_graph, term_cooccurrence_graph_serial,
};
use boe_corpus::context::{aggregate_context, ContextOptions, ContextScope, StemMap};
use boe_corpus::corpus::CorpusBuilder;
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::SparseVector;
use boe_eval::world::{World, WorldConfig};
use boe_textkit::TokenId;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Best-of-`runs` wall time of `f`, in milliseconds.
fn time_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Finalize the report: always print the JSON, but only write the
/// `BENCH_*.json` artifact when no budget tripped.
fn finish(report: &PerfReport, out_path: &str, tripped: bool) -> ExitCode {
    print!("{}", report.to_json());
    if tripped {
        eprintln!("perf report: deadline tripped — refusing to write {out_path}");
        return ExitCode::from(8);
    }
    let path = std::path::Path::new(out_path);
    report.write(path).expect("write perf report");
    eprintln!("perf report written to {}", path.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if boe_chaos::is_enabled() {
        eprintln!(
            "perf report: a chaos plan is armed (BOE_CHAOS) — timings would be meaningless; \
             unset it or set BOE_CHAOS=off"
        );
        return ExitCode::from(3);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_5.json".to_owned());
    let deadline_ms: Option<u64> = args
        .iter()
        .position(|a| a == "--deadline-ms")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--deadline-ms takes milliseconds"));
    let gov = deadline_ms.map(|ms| {
        Governor::new(BudgetConfig {
            deadline_ms: Some(ms),
            ..Default::default()
        })
    });
    // Polled between measurement sections: once the deadline passes, the
    // remaining sections are skipped and the artifact write is refused.
    let tripped = |report: &mut PerfReport| -> bool {
        let hit = gov.as_ref().is_some_and(|g| g.check_hard().is_some());
        if hit {
            report.set_bool("budget_tripped", true);
        }
        hit
    };

    let cfg = if smoke {
        WorldConfig {
            n_concepts: 40,
            n_holdout: 8,
            abstracts_per_concept: 3,
            seed: 0xBE2C,
            ..Default::default()
        }
    } else {
        WorldConfig {
            n_concepts: 150,
            n_holdout: 40,
            abstracts_per_concept: 5,
            seed: 0xBE2C,
            ..Default::default()
        }
    };
    let runs = if smoke { 1 } else { 3 };
    let w = World::generate(&cfg);
    let corpus = &w.corpus;
    let onto = &w.reduced_ontology;

    // The per-term workload: held-out terms actually present in the
    // corpus (same population the pipeline fan-out sees).
    let candidates: Vec<String> = w
        .holdout
        .iter()
        .map(|h| h.surface.clone())
        .filter(|s| corpus.phrase_ids(s).is_some())
        .collect();

    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut report = PerfReport::new("BENCH_5");
    report.set_bool("smoke", smoke);
    report.set_bool("governed", deadline_ms.is_some());
    report.set_bool("budget_tripped", false);
    report.set_num("threads_available", threads_available as f64);
    report.set_num("corpus_documents", corpus.len() as f64);
    report.set_num("corpus_tokens", corpus.token_count() as f64);
    report.set_num("candidate_terms", candidates.len() as f64);
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    // Step I ingestion: the per-document serial loop vs the batch path.
    // Raw texts are re-rendered from the synthetic corpus (the world
    // generator adds pre-tokenized sentences), so both paths pay the
    // same tokenizer + tagger work per document.
    let texts: Vec<String> = corpus
        .docs()
        .iter()
        .map(|d| {
            d.sentences
                .iter()
                .map(|s| {
                    let mut line = s
                        .tokens
                        .iter()
                        .map(|&t| corpus.text(t))
                        .collect::<Vec<_>>()
                        .join(" ");
                    line.push('.');
                    line
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    boe_par::set_threads(Some(1));
    let wall_ingest_serial = time_ms(runs, || {
        let mut b = CorpusBuilder::new(corpus.language());
        for t in &texts {
            b.add_text(t);
        }
        black_box(b.build().token_count());
    });
    report.record("corpus_ingest_serial", 1, wall_ingest_serial, runs);
    for &t in thread_counts {
        boe_par::set_threads(Some(t));
        let wall = time_ms(runs, || {
            let mut b = CorpusBuilder::new(corpus.language());
            b.add_texts(&texts);
            black_box(b.build().token_count());
        });
        report.record("corpus_ingest_batch", t, wall, runs);
    }

    // Step I candidate extraction: the serial reference (quadratic
    // nested-occurrence loop) vs the parallel interval-index kernel.
    let copts = CandidateOptions::default();
    boe_par::set_threads(Some(1));
    let wall_extract_serial = time_ms(runs, || {
        black_box(extract_candidates_serial(corpus, copts).len());
    });
    report.record("term_extraction_serial", 1, wall_extract_serial, runs);
    for &t in thread_counts {
        boe_par::set_threads(Some(t));
        let wall = time_ms(runs, || {
            black_box(extract_candidates(corpus, copts).len());
        });
        report.record("term_extraction_parallel", t, wall, runs);
    }
    if tripped(&mut report) {
        boe_par::set_threads(None);
        return finish(&report, &out_path, true);
    }

    // Step I TeRGraph: co-occurrence graph build + node scores.
    boe_par::set_threads(Some(1));
    let cand_set = extract_candidates(corpus, copts);
    report.set_num("candidate_set_size", cand_set.len() as f64);
    let wall_tg_serial = time_ms(runs, || {
        let g = term_cooccurrence_graph_serial(corpus, &cand_set);
        black_box(tergraph_scores_serial(&g).len());
    });
    report.record("tergraph_serial", 1, wall_tg_serial, runs);
    for &t in thread_counts {
        boe_par::set_threads(Some(t));
        let wall = time_ms(runs, || {
            let g = term_cooccurrence_graph(corpus, &cand_set);
            black_box(tergraph_scores(&g).len());
        });
        report.record("tergraph_parallel", t, wall, runs);
    }
    if tripped(&mut report) {
        boe_par::set_threads(None);
        return finish(&report, &out_path, true);
    }

    // Occurrence-resolution kernel: every ontology term + candidate
    // (the phrase population Steps I–IV actually resolve), naive
    // full-corpus scans vs the prebuilt positional index.
    let mut phrases: Vec<Vec<TokenId>> = onto
        .terms()
        .into_iter()
        .filter_map(|(surface, _)| corpus.phrase_ids(surface))
        .collect();
    phrases.extend(candidates.iter().filter_map(|s| corpus.phrase_ids(s)));
    report.set_num("resolved_phrases", phrases.len() as f64);
    boe_par::set_threads(Some(1));
    let index = OccurrenceIndex::build(corpus);
    let naive = OccurrenceIndex::naive();
    let wall_res_naive = time_ms(runs, || {
        let mut n = 0usize;
        for p in &phrases {
            n += naive.find_occurrences(corpus, p).len();
        }
        black_box(n);
    });
    let wall_res_indexed = time_ms(runs.max(3), || {
        let mut n = 0usize;
        for p in &phrases {
            n += index.find_occurrences(corpus, p).len();
        }
        black_box(n);
    });
    report.record("occurrence_resolution_naive", 1, wall_res_naive, runs);
    report.record(
        "occurrence_resolution_indexed",
        1,
        wall_res_indexed,
        runs.max(3),
    );

    // One-time setup costs a pipeline run amortizes over all stages.
    let wall_index_build = time_ms(runs.max(3), || {
        black_box(OccurrenceIndex::build(corpus));
    });
    report.record("occurrence_index_build", 1, wall_index_build, runs.max(3));
    if tripped(&mut report) {
        boe_par::set_threads(None);
        return finish(&report, &out_path, true);
    }
    let inv_stems = StemMap::build(corpus);

    let inducer = SenseInducer::new(corpus, SenseInducerConfig::default());
    let linker = SemanticLinker::new(corpus, onto, LinkerConfig::default());

    for &t in thread_counts {
        boe_par::set_threads(Some(t));

        // The pipeline's Step III+IV per-term fan-out.
        let wall = time_ms(runs, || {
            let res = boe_par::par_map(&candidates, |s| {
                let tokens = corpus.phrase_ids(s).expect("filtered above");
                let senses = inducer.induce(&tokens, true);
                let props = linker.propose(s);
                (senses.k, props.len())
            });
            black_box(res);
        });
        report.record("steps_iii_iv", t, wall, runs);

        // Step IV inventory harvest through each resolution backend.
        // Stems and index are prebuilt: a pipeline run builds both once
        // and shares them across every stage, so only the per-term
        // harvest differs between the backends (the index build itself
        // is timed separately as `occurrence_index_build`).
        let wall = time_ms(runs, || {
            let inv = OntologyTermInventory::build_with_extras(
                corpus,
                onto,
                &inv_stems,
                &[],
                LinkerConfig::default().scope,
                &naive,
            );
            black_box(inv.len());
        });
        report.record("inventory_build_naive", t, wall, runs);
        let wall = time_ms(runs, || {
            let inv = OntologyTermInventory::build_with_extras(
                corpus,
                onto,
                &inv_stems,
                &[],
                LinkerConfig::default().scope,
                &index,
            );
            black_box(inv.len());
        });
        report.record("inventory_build_indexed", t, wall, runs);
        if tripped(&mut report) {
            boe_par::set_threads(None);
            return finish(&report, &out_path, true);
        }
    }

    // Step IV end-to-end proposal, old vs new scorer, single-threaded.
    // Both paths share the context-gathering front half, so this mostly
    // bounds the regression risk; the isolated kernels below show the
    // scorer itself.
    boe_par::set_threads(Some(1));
    let wall_naive = time_ms(runs, || {
        for s in &candidates {
            black_box(linker.propose_naive(s).len());
        }
    });
    let wall_inverted = time_ms(runs, || {
        for s in &candidates {
            black_box(linker.propose(s).len());
        }
    });
    report.record("linkage_naive", 1, wall_naive, runs);
    report.record("linkage_inverted", 1, wall_inverted, runs);
    if tripped(&mut report) {
        return finish(&report, &out_path, true);
    }

    // Isolated Step IV scoring kernel: each candidate context against
    // the *entire* term inventory — brute-force merge joins vs the
    // inverted-index accumulator.
    let stems = StemMap::build(corpus);
    let opts = ContextOptions {
        window: None,
        stemmed: true,
        scope: ContextScope::Document,
    };
    let contexts: Vec<SparseVector> = candidates
        .iter()
        .map(|s| {
            let tokens = corpus.phrase_ids(s).expect("filtered above");
            aggregate_context(corpus, &tokens, opts, Some(&stems))
        })
        .collect();
    let inv = linker.inventory();
    let all: Vec<usize> = (0..inv.len()).collect();
    let kernel_runs = runs.max(3);
    let wall_score_naive = time_ms(kernel_runs, || {
        for ctx in &contexts {
            let mut acc = 0.0;
            for t in inv.terms() {
                acc += ctx.cosine(&t.context);
            }
            black_box(acc);
        }
    });
    let wall_score_inverted = time_ms(kernel_runs, || {
        for ctx in &contexts {
            black_box(inv.cosines_against(ctx, &all));
        }
    });
    report.record("score_kernel_naive", 1, wall_score_naive, kernel_runs);
    report.record("score_kernel_inverted", 1, wall_score_inverted, kernel_runs);
    if tripped(&mut report) {
        return finish(&report, &out_path, true);
    }

    // Step III kernel: the flat similarity matrix over the candidate
    // contexts (unit-normalized), at each thread count.
    let unit: Vec<SparseVector> = inv.terms().iter().map(|t| t.context.normalized()).collect();
    for &t in thread_counts {
        boe_par::set_threads(Some(t));
        let wall = time_ms(kernel_runs, || {
            black_box(boe_cluster::similarity::similarity_matrix(&unit));
        });
        report.record("similarity_matrix", t, wall, kernel_runs);
    }
    boe_par::set_threads(None);

    // Thread-scaling speedups are only honest when the host actually
    // granted more than one core: on a 1-core host the N-thread runs
    // time-slice the same CPU and the ratios would be fabricated noise,
    // so the keys are omitted and annotated instead.
    if threads_available > 1 {
        let scaling_stages = [
            "steps_iii_iv",
            "inventory_build_indexed",
            "similarity_matrix",
            "corpus_ingest_batch",
            "term_extraction_parallel",
            "tergraph_parallel",
        ];
        for &t in thread_counts.iter().filter(|&&t| t > 1) {
            for stage in scaling_stages {
                if let Some(s) = report.speedup(stage, 1, t) {
                    report.set_num(&format!("speedup_{stage}_{t}t"), s);
                }
            }
        }
    } else {
        report.set_str(
            "thread_scaling",
            "speedup_*_Nt keys omitted: threads_available == 1 \
             (multi-thread runs time-slice a single core)",
        );
    }
    if wall_res_indexed > 0.0 {
        report.set_num(
            "speedup_occurrence_resolution_indexed_vs_naive",
            wall_res_naive / wall_res_indexed,
        );
    }
    if let (Some(n), Some(i)) = (
        report.wall_ms("inventory_build_naive", 1),
        report.wall_ms("inventory_build_indexed", 1),
    ) {
        if i > 0.0 {
            report.set_num("speedup_inventory_build_indexed_vs_naive", n / i);
        }
    }
    if wall_inverted > 0.0 {
        report.set_num(
            "speedup_linkage_inverted_vs_naive",
            wall_naive / wall_inverted,
        );
    }
    if wall_score_inverted > 0.0 {
        report.set_num(
            "speedup_score_kernel_inverted_vs_naive",
            wall_score_naive / wall_score_inverted,
        );
    }
    // Step I algorithmic speedups: same thread count (1), different
    // algorithm — valid on any host.
    if let Some(p) = report.wall_ms("term_extraction_parallel", 1) {
        if p > 0.0 {
            report.set_num(
                "speedup_term_extraction_indexed_vs_quadratic",
                wall_extract_serial / p,
            );
        }
    }
    if let Some(p) = report.wall_ms("corpus_ingest_batch", 1) {
        if p > 0.0 {
            report.set_num(
                "speedup_corpus_ingest_batch_vs_serial_1t",
                wall_ingest_serial / p,
            );
        }
    }
    if let Some(p) = report.wall_ms("tergraph_parallel", 1) {
        if p > 0.0 {
            report.set_num("speedup_tergraph_parallel_vs_serial_1t", wall_tg_serial / p);
        }
    }

    let late_trip = tripped(&mut report);
    finish(&report, &out_path, late_trip)
}
