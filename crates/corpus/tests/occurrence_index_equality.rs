//! Randomized equivalence: the positional [`OccurrenceIndex`] must
//! reproduce the naive full-corpus scan bit for bit — same occurrences
//! in the same order, same aggregate context vectors — on seeded random
//! corpora, including accented French/Spanish surfaces and phrases that
//! only ever span a sentence boundary (which must match nowhere).
//!
//! Driven by the workspace's own deterministic PRNG (no external
//! dependencies).

use boe_corpus::context::{
    aggregate_context, context_vector, find_occurrences_naive, ContextOptions, ContextScope,
    DocContextCache, StemMap,
};
use boe_corpus::corpus::CorpusBuilder;
use boe_corpus::occurrence::{OccurrenceIndex, OccurrenceResolution};
use boe_corpus::{Corpus, SparseVector};
use boe_rng::StdRng;
use boe_textkit::{Language, TokenId};

const CASES: usize = 40;

/// Word pool mixing plain ASCII with accented French/Spanish surfaces —
/// the index must treat multi-byte lowercase words like any other token.
const WORDS: &[&str] = &[
    "cornea",
    "keratitis",
    "tissue",
    "graft",
    "membrane",
    "kératite",
    "cornée",
    "sévère",
    "greffé",
    "lésion",
    "úlcera",
    "córnea",
    "membrana",
    "amniótica",
    "señal",
    "año",
];

fn rand_corpus(rng: &mut StdRng, language: Language) -> Corpus {
    let mut b = CorpusBuilder::new(language);
    let docs = rng.gen_range(1usize..5);
    for _ in 0..docs {
        let mut text = String::new();
        for _ in 0..rng.gen_range(1usize..=3) {
            let words = rng.gen_range(1usize..=8);
            for w in 0..words {
                if w > 0 {
                    text.push(' ');
                }
                text.push_str(WORDS[rng.gen_range(0..WORDS.len() as u32) as usize]);
            }
            text.push_str(". ");
        }
        b.add_text(&text);
    }
    b.build()
}

/// Phrases worth checking against a corpus: every adjacent run of 1–3
/// tokens actually present (guaranteed hits), random token combinations
/// (mostly misses), and bigrams straddling each sentence boundary
/// (guaranteed non-matches unless they also occur inside a sentence).
fn probe_phrases(rng: &mut StdRng, c: &Corpus) -> Vec<Vec<TokenId>> {
    let mut phrases: Vec<Vec<TokenId>> = Vec::new();
    for doc in c.docs() {
        for (si, s) in doc.sentences.iter().enumerate() {
            for start in 0..s.tokens.len() {
                for len in 1..=3usize.min(s.tokens.len() - start) {
                    phrases.push(s.tokens[start..start + len].to_vec());
                }
            }
            // Cross-sentence bigram: last token here + first token of the
            // next sentence.
            if let Some(next) = doc.sentences.get(si + 1) {
                if let (Some(&a), Some(&b)) = (s.tokens.last(), next.tokens.first()) {
                    phrases.push(vec![a, b]);
                }
            }
        }
    }
    // Random pairs/triples over the corpus vocabulary.
    let all: Vec<TokenId> =
        c.docs()
            .iter()
            .flat_map(|d| &d.sentences)
            .fold(Vec::new(), |mut acc, s| {
                acc.extend_from_slice(&s.tokens);
                acc
            });
    for _ in 0..20 {
        let len = rng.gen_range(1usize..=3);
        let p: Vec<TokenId> = (0..len)
            .map(|_| all[rng.gen_range(0..all.len() as u32) as usize])
            .collect();
        phrases.push(p);
    }
    phrases.push(Vec::new()); // the empty phrase matches nothing in both
    phrases
}

fn assert_vectors_bit_identical(a: &SparseVector, b: &SparseVector, what: &str) {
    assert_eq!(a.nnz(), b.nnz(), "{what}: nnz");
    for ((da, xa), (db, xb)) in a.iter().zip(b.iter()) {
        assert_eq!(da, db, "{what}: dimension");
        assert_eq!(xa.to_bits(), xb.to_bits(), "{what}: value at dim {da}");
    }
}

#[test]
fn indexed_resolution_is_bit_identical_to_naive_scan() {
    let mut rng = StdRng::seed_from_u64(0x0CC1);
    let languages = [Language::English, Language::French, Language::Spanish];
    for case in 0..CASES {
        let language = languages[case % languages.len()];
        let c = rand_corpus(&mut rng, language);
        let stems = StemMap::build(&c);
        let indexed = OccurrenceResolution::Indexed.build(&c);
        let naive = OccurrenceResolution::NaiveScan.build(&c);
        assert!(indexed.is_indexed() && !naive.is_indexed());

        let phrases = probe_phrases(&mut rng, &c);
        let opts_grid = [
            ContextOptions {
                window: None,
                stemmed: false,
                scope: ContextScope::Sentence,
            },
            ContextOptions {
                window: Some(3),
                stemmed: true,
                scope: ContextScope::Sentence,
            },
            ContextOptions {
                window: None,
                stemmed: true,
                scope: ContextScope::Document,
            },
        ];

        for phrase in &phrases {
            let reference = find_occurrences_naive(&c, phrase);
            assert_eq!(
                indexed.find_occurrences(&c, phrase),
                reference,
                "case {case}: occurrences diverge"
            );
            assert_eq!(
                naive.find_occurrences(&c, phrase),
                reference,
                "case {case}: naive backend diverges"
            );
            assert_eq!(
                indexed.contains(&c, phrase),
                !reference.is_empty(),
                "case {case}: contains diverges"
            );
            for opts in opts_grid {
                let want = aggregate_context(&c, phrase, opts, Some(&stems));
                let got = indexed.aggregate_context(&c, phrase, opts, Some(&stems));
                assert_vectors_bit_identical(&got, &want, "aggregate context");
            }
        }

        // The document-scope context cache: per-occurrence vectors and
        // grouped aggregates must both match the direct construction.
        let doc_opts = opts_grid[2];
        let cache = DocContextCache::build(&c, doc_opts, Some(&stems));
        for phrase in &phrases {
            let occs = find_occurrences_naive(&c, phrase);
            for &o in &occs {
                let want = context_vector(&c, o, phrase.len(), doc_opts, Some(&stems));
                let got = cache.context_vector(o, phrase.len());
                assert_vectors_bit_identical(&got, &want, "cached context vector");
            }
            let want = aggregate_context(&c, phrase, doc_opts, Some(&stems));
            let got = cache.aggregate(&occs, phrase.len());
            assert_vectors_bit_identical(&got, &want, "cached aggregate");
        }

        // Batch harvesting: same results, input order preserved — at
        // document scope this also exercises the per-document
        // context-base cache.
        for opts in opts_grid {
            let batch = indexed.aggregate_contexts_for(&c, &phrases, opts, Some(&stems));
            assert_eq!(batch.len(), phrases.len());
            for (phrase, (occs, ctx)) in phrases.iter().zip(&batch) {
                assert_eq!(occs, &find_occurrences_naive(&c, phrase), "case {case}");
                let want = aggregate_context(&c, phrase, opts, Some(&stems));
                assert_vectors_bit_identical(ctx, &want, "batch context");
            }
        }
    }
}

#[test]
fn accented_surfaces_resolve_through_the_index() {
    let mut b = CorpusBuilder::new(Language::French);
    b.add_text("La kératite sévère abîme la cornée. Une greffe répare la cornée.");
    b.add_text("La kératite sévère persiste. Membrane amniotique sur la cornée.");
    let c = b.build();
    let ix = OccurrenceIndex::build(&c);
    let phrase = c
        .phrase_ids("kératite sévère")
        .expect("accented phrase interned");
    let occs = ix.find_occurrences(&c, &phrase);
    assert_eq!(occs, find_occurrences_naive(&c, &phrase));
    assert_eq!(occs.len(), 2, "one hit per document");

    // "cornée. Une greffe" spans a sentence boundary: the index must not
    // stitch positions across sentences.
    let cornee = c.phrase_ids("cornée").expect("known")[0];
    let greffe = c.phrase_ids("greffe").expect("known")[0];
    let cross = vec![cornee, greffe];
    assert!(ix.find_occurrences(&c, &cross).is_empty());
    assert!(find_occurrences_naive(&c, &cross).is_empty());

    let mut b = CorpusBuilder::new(Language::Spanish);
    b.add_text("La úlcera córnea empeora. La membrana amniótica cura la úlcera córnea.");
    let c = b.build();
    let ix = OccurrenceIndex::build(&c);
    let phrase = c
        .phrase_ids("úlcera córnea")
        .expect("accented phrase interned");
    let occs = ix.find_occurrences(&c, &phrase);
    assert_eq!(occs, find_occurrences_naive(&c, &phrase));
    assert_eq!(occs.len(), 2);
}
