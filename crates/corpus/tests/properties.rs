//! Property tests for the corpus/IR substrate.
//!
//! Driven by the workspace's own deterministic PRNG (no external
//! dependencies); each test sweeps seeded random corpora.

use boe_corpus::context::{contexts, find_occurrences_naive, ContextOptions, ContextScope};
use boe_corpus::corpus::CorpusBuilder;
use boe_corpus::index::InvertedIndex;
use boe_corpus::stats::CoocCounts;
use boe_corpus::weighting::{bm25, idf, Bm25Params};
use boe_corpus::Corpus;
use boe_rng::StdRng;
use boe_textkit::Language;

const CASES: usize = 60;

fn rand_word(rng: &mut StdRng) -> String {
    let len = rng.gen_range(2usize..=8);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0u32..26) as u8))
        .collect()
}

/// 1–5 documents of 1–2 sentences with 1–9 lowercase words each.
fn rand_corpus(rng: &mut StdRng) -> Corpus {
    let mut b = CorpusBuilder::new(Language::English);
    let docs = rng.gen_range(1usize..6);
    for _ in 0..docs {
        let mut text = String::new();
        for _ in 0..rng.gen_range(1usize..=2) {
            let words = rng.gen_range(1usize..=9);
            for w in 0..words {
                if w > 0 {
                    text.push(' ');
                }
                text.push_str(&rand_word(rng));
            }
            text.push_str(". ");
        }
        b.add_text(&text);
    }
    b.build()
}

#[test]
fn index_frequencies_are_consistent() {
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..CASES {
        let c = rand_corpus(&mut rng);
        let ix = InvertedIndex::build(&c);
        // Sum of per-token corpus frequencies equals total token count.
        let total: u64 = ix.tokens().iter().map(|&t| ix.term_freq(t)).sum();
        assert_eq!(total as usize, c.token_count());
        for t in ix.tokens() {
            let df = ix.doc_freq(t);
            assert!(df >= 1);
            assert!(df <= c.len());
            assert!(ix.term_freq(t) >= df as u64);
            // Postings tf sums to term_freq.
            let tf_sum: u64 = ix
                .postings(t)
                .iter()
                .map(|p| p.positions.len() as u64)
                .sum();
            assert_eq!(tf_sum, ix.term_freq(t));
        }
    }
}

#[test]
fn single_token_phrase_matches_agree_with_occurrences() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let c = rand_corpus(&mut rng);
        let ix = InvertedIndex::build(&c);
        for t in ix.tokens().into_iter().take(10) {
            let phrase = [t];
            let total_phrase: u32 = ix.phrase_matches(&phrase).iter().map(|&(_, n)| n).sum();
            let occs = find_occurrences_naive(&c, &phrase);
            assert_eq!(total_phrase as usize, occs.len());
        }
    }
}

#[test]
fn cooccurrence_is_symmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..CASES {
        let c = rand_corpus(&mut rng);
        let window = rng.gen_range(1usize..6);
        let cc = CoocCounts::from_corpus(&c, window);
        for ((a, b), n) in cc.iter_pairs().into_iter().take(50) {
            assert_eq!(cc.pair(a, b), n);
            assert_eq!(cc.pair(b, a), n);
            assert!(n >= 1);
            // A pair cannot co-occur more often than its rarer member
            // occurs (times window, loose bound: just occurrences × window).
            let ca = cc.occurrences(a);
            let cb = cc.occurrences(b);
            assert!(n <= ca.max(1) * window as u32 + cb.max(1) * window as u32);
        }
    }
}

#[test]
fn idf_and_bm25_are_finite_nonnegative() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..CASES {
        let c = rand_corpus(&mut rng);
        let ix = InvertedIndex::build(&c);
        for t in ix.tokens().into_iter().take(20) {
            assert!(idf(&ix, t) > 0.0);
            for doc in c.docs().iter().take(3) {
                let s = bm25(&ix, t, doc.id, Bm25Params::default());
                assert!(s.is_finite());
                assert!(s >= 0.0);
            }
        }
    }
}

#[test]
fn context_vectors_are_nonnegative_counts() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..CASES {
        let c = rand_corpus(&mut rng);
        let ix = InvertedIndex::build(&c);
        for scope in [ContextScope::Sentence, ContextScope::Document] {
            let opts = ContextOptions {
                window: None,
                stemmed: false,
                scope,
            };
            for t in ix.tokens().into_iter().take(5) {
                for v in contexts(&c, &[t], opts, None) {
                    for (_, x) in v.iter() {
                        assert!(x >= 1.0);
                        assert_eq!(x.fract(), 0.0, "counts are integral");
                    }
                    // The term itself is excluded from its own context at
                    // sentence scope only if it occurs once there; at any
                    // scope the vector must stay finite.
                    assert!(v.norm().is_finite());
                }
            }
        }
    }
}

#[test]
fn document_contexts_dominate_sentence_contexts() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..CASES {
        let c = rand_corpus(&mut rng);
        let ix = InvertedIndex::build(&c);
        for t in ix.tokens().into_iter().take(5) {
            let s_opts = ContextOptions {
                window: None,
                stemmed: false,
                scope: ContextScope::Sentence,
            };
            let d_opts = ContextOptions {
                window: None,
                stemmed: false,
                scope: ContextScope::Document,
            };
            let s_ctx = contexts(&c, &[t], s_opts, None);
            let d_ctx = contexts(&c, &[t], d_opts, None);
            assert_eq!(s_ctx.len(), d_ctx.len());
            for (s, d) in s_ctx.iter().zip(&d_ctx) {
                assert!(d.sum() >= s.sum(), "document scope must not shrink context");
            }
        }
    }
}
