//! Property tests for the corpus/IR substrate.

use boe_corpus::context::{contexts, find_occurrences, ContextOptions, ContextScope};
use boe_corpus::corpus::CorpusBuilder;
use boe_corpus::index::InvertedIndex;
use boe_corpus::stats::CoocCounts;
use boe_corpus::weighting::{bm25, idf, Bm25Params};
use boe_corpus::Corpus;
use boe_textkit::Language;
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        "[a-z]{2,8}( [a-z]{2,8}){0,8}\\.( [a-z]{2,8}( [a-z]{2,8}){0,6}\\.)?",
        1..6,
    )
}

fn build(texts: &[String]) -> Corpus {
    let mut b = CorpusBuilder::new(Language::English);
    for t in texts {
        b.add_text(t);
    }
    b.build()
}

proptest! {
    #[test]
    fn index_frequencies_are_consistent(texts in corpus_strategy()) {
        let c = build(&texts);
        let ix = InvertedIndex::build(&c);
        // Sum of per-token corpus frequencies equals total token count.
        let total: u64 = ix.tokens().iter().map(|&t| ix.term_freq(t)).sum();
        prop_assert_eq!(total as usize, c.token_count());
        for t in ix.tokens() {
            let df = ix.doc_freq(t);
            prop_assert!(df >= 1);
            prop_assert!(df <= c.len());
            prop_assert!(ix.term_freq(t) >= df as u64);
            // Postings tf sums to term_freq.
            let tf_sum: u64 = ix
                .postings(t)
                .iter()
                .map(|p| p.positions.len() as u64)
                .sum();
            prop_assert_eq!(tf_sum, ix.term_freq(t));
        }
    }

    #[test]
    fn single_token_phrase_matches_agree_with_occurrences(texts in corpus_strategy()) {
        let c = build(&texts);
        let ix = InvertedIndex::build(&c);
        for t in ix.tokens().into_iter().take(10) {
            let phrase = [t];
            let total_phrase: u32 = ix.phrase_matches(&phrase).iter().map(|&(_, n)| n).sum();
            let occs = find_occurrences(&c, &phrase);
            prop_assert_eq!(total_phrase as usize, occs.len());
        }
    }

    #[test]
    fn cooccurrence_is_symmetric_and_bounded(texts in corpus_strategy(), window in 1usize..6) {
        let c = build(&texts);
        let cc = CoocCounts::from_corpus(&c, window);
        for ((a, b), n) in cc.iter_pairs().into_iter().take(50) {
            prop_assert_eq!(cc.pair(a, b), n);
            prop_assert_eq!(cc.pair(b, a), n);
            prop_assert!(n >= 1);
            // A pair cannot co-occur more often than its rarer member
            // occurs (times window, loose bound: just occurrences × window).
            let ca = cc.occurrences(a);
            let cb = cc.occurrences(b);
            prop_assert!(n <= ca.max(1) * window as u32 + cb.max(1) * window as u32);
        }
    }

    #[test]
    fn idf_and_bm25_are_finite_nonnegative(texts in corpus_strategy()) {
        let c = build(&texts);
        let ix = InvertedIndex::build(&c);
        for t in ix.tokens().into_iter().take(20) {
            prop_assert!(idf(&ix, t) > 0.0);
            for doc in c.docs().iter().take(3) {
                let s = bm25(&ix, t, doc.id, Bm25Params::default());
                prop_assert!(s.is_finite());
                prop_assert!(s >= 0.0);
            }
        }
    }

    #[test]
    fn context_vectors_are_nonnegative_counts(texts in corpus_strategy()) {
        let c = build(&texts);
        let ix = InvertedIndex::build(&c);
        for scope in [ContextScope::Sentence, ContextScope::Document] {
            let opts = ContextOptions {
                window: None,
                stemmed: false,
                scope,
            };
            for t in ix.tokens().into_iter().take(5) {
                for v in contexts(&c, &[t], opts, None) {
                    for (_, x) in v.iter() {
                        prop_assert!(x >= 1.0);
                        prop_assert_eq!(x.fract(), 0.0, "counts are integral");
                    }
                    // The term itself is excluded from its own context at
                    // sentence scope only if it occurs once there; at any
                    // scope the vector must stay finite.
                    prop_assert!(v.norm().is_finite());
                }
            }
        }
    }

    #[test]
    fn document_contexts_dominate_sentence_contexts(texts in corpus_strategy()) {
        let c = build(&texts);
        let ix = InvertedIndex::build(&c);
        for t in ix.tokens().into_iter().take(5) {
            let s_opts = ContextOptions { window: None, stemmed: false, scope: ContextScope::Sentence };
            let d_opts = ContextOptions { window: None, stemmed: false, scope: ContextScope::Document };
            let s_ctx = contexts(&c, &[t], s_opts, None);
            let d_ctx = contexts(&c, &[t], d_opts, None);
            prop_assert_eq!(s_ctx.len(), d_ctx.len());
            for (s, d) in s_ctx.iter().zip(&d_ctx) {
                prop_assert!(d.sum() >= s.sum(), "document scope must not shrink context");
            }
        }
    }
}
