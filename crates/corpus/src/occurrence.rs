//! Index-backed occurrence resolution.
//!
//! The enrichment workflow keeps asking one question — *where does this
//! phrase occur, and what surrounds it?* — for ontology terms (Step IV's
//! inventory), candidate terms (Steps II–III), and term pairs (the
//! relation graph). Answering it with [`find_occurrences_naive`] costs a
//! full corpus scan per phrase: O(ontology terms × corpus tokens) for the
//! inventory build alone.
//!
//! [`OccurrenceIndex`] answers the same question through the positional
//! [`InvertedIndex`]: pick the phrase token with the smallest corpus
//! frequency (the *rarest* token), walk only its postings, and verify the
//! phrase's remaining tokens by binary search on each candidate
//! document's sorted `(sentence, position)` pairs. Cost becomes
//! proportional to the rarest token's postings — for typical ontology
//! terms, orders of magnitude below a corpus scan.
//!
//! ## Determinism contract
//!
//! Every query is **bit-identical** to the naive scan, including order:
//! posting lists are sorted by document and positions by `(sentence,
//! position)`, so anchoring on a fixed phrase offset enumerates matches
//! in exactly the `(doc, sentence, start)` order the scan produces.
//! Context vectors are then built per occurrence with the very same
//! [`context_vector`] code and summed in the same order. The
//! [`OccurrenceResolution::NaiveScan`] backend keeps the reference path
//! runnable end-to-end so tests can enforce the contract at the
//! `EnrichmentReport` level.

use crate::context::{context_vector, find_occurrences_naive, ContextOptions, Occurrence, StemMap};
use crate::corpus::Corpus;
use crate::index::{InvertedIndex, Posting};
use crate::vector::SparseVector;
use boe_textkit::TokenId;
use std::sync::Arc;

/// How a pipeline run resolves phrase occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OccurrenceResolution {
    /// Through a positional [`OccurrenceIndex`] built once per run.
    #[default]
    Indexed,
    /// Through full-corpus scans ([`find_occurrences_naive`]); the
    /// reference path kept for equality testing and debugging.
    NaiveScan,
}

impl OccurrenceResolution {
    /// Build the matching [`OccurrenceIndex`] for `corpus`.
    pub fn build(self, corpus: &Corpus) -> OccurrenceIndex {
        match self {
            OccurrenceResolution::Indexed => OccurrenceIndex::build(corpus),
            OccurrenceResolution::NaiveScan => OccurrenceIndex::naive(),
        }
    }
}

/// The resolution backend: positional postings, or the reference scan.
#[derive(Debug)]
enum Backend {
    Indexed(Arc<InvertedIndex>),
    Naive,
}

/// Phrase-occurrence resolution shared across the whole pipeline run.
///
/// Build once per `(corpus, run)` with [`OccurrenceIndex::build`] and
/// share by reference (or `Arc`) — queries never mutate. All query
/// methods take the corpus the index was built over; handing them a
/// different corpus is a logic error (caught by `debug_assert`).
#[derive(Debug)]
pub struct OccurrenceIndex {
    backend: Backend,
}

impl OccurrenceIndex {
    /// Build the positional index over `corpus` (one corpus pass).
    pub fn build(corpus: &Corpus) -> Self {
        Self::from_inverted(Arc::new(InvertedIndex::build(corpus)))
    }

    /// Wrap an already-built [`InvertedIndex`] (shared, not copied) —
    /// lets a caller that needs the raw index for weighting reuse one
    /// build for both purposes.
    pub fn from_inverted(index: Arc<InvertedIndex>) -> Self {
        OccurrenceIndex {
            backend: Backend::Indexed(index),
        }
    }

    /// The reference backend: every query is answered by the naive
    /// full-corpus scan. No index is built.
    pub fn naive() -> Self {
        OccurrenceIndex {
            backend: Backend::Naive,
        }
    }

    /// The underlying inverted index, when this is the indexed backend.
    pub fn inverted(&self) -> Option<&Arc<InvertedIndex>> {
        match &self.backend {
            Backend::Indexed(ix) => Some(ix),
            Backend::Naive => None,
        }
    }

    /// Whether queries go through positional postings (`false` = naive
    /// reference scans).
    pub fn is_indexed(&self) -> bool {
        matches!(self.backend, Backend::Indexed(_))
    }

    /// All occurrences of `phrase`, bit-identical (content and order) to
    /// [`find_occurrences_naive`].
    pub fn find_occurrences(&self, corpus: &Corpus, phrase: &[TokenId]) -> Vec<Occurrence> {
        match &self.backend {
            Backend::Naive => find_occurrences_naive(corpus, phrase),
            Backend::Indexed(ix) => {
                debug_assert_eq!(ix.doc_count(), corpus.len(), "index/corpus mismatch");
                let mut out = Vec::new();
                self.walk_postings(ix, phrase, |occ| {
                    out.push(occ);
                    true
                });
                out
            }
        }
    }

    /// Whether `phrase` occurs at least once — equivalent to
    /// `!find_occurrences(..).is_empty()` but stops at the first match.
    pub fn contains(&self, corpus: &Corpus, phrase: &[TokenId]) -> bool {
        match &self.backend {
            Backend::Naive => {
                // Early-exit variant of the naive scan: same traversal
                // order, stops at the first hit.
                if phrase.is_empty() {
                    return false;
                }
                for doc in corpus.docs() {
                    for s in &doc.sentences {
                        if s.tokens.len() < phrase.len() {
                            continue;
                        }
                        for start in 0..=(s.tokens.len() - phrase.len()) {
                            if s.tokens[start..start + phrase.len()] == *phrase {
                                return true;
                            }
                        }
                    }
                }
                false
            }
            Backend::Indexed(ix) => {
                let mut found = false;
                self.walk_postings(ix, phrase, |_| {
                    found = true;
                    false
                });
                found
            }
        }
    }

    /// Per-occurrence context vectors of `phrase` — one positional
    /// resolution, then the shared [`context_vector`] builder per hit.
    pub fn contexts(
        &self,
        corpus: &Corpus,
        phrase: &[TokenId],
        opts: ContextOptions,
        stems: Option<&StemMap>,
    ) -> Vec<SparseVector> {
        self.find_occurrences(corpus, phrase)
            .into_iter()
            .map(|occ| context_vector(corpus, occ, phrase.len(), opts, stems))
            .collect()
    }

    /// The aggregate (summed) context vector of `phrase`; bit-identical
    /// to [`crate::context::aggregate_context`].
    pub fn aggregate_context(
        &self,
        corpus: &Corpus,
        phrase: &[TokenId],
        opts: ContextOptions,
        stems: Option<&StemMap>,
    ) -> SparseVector {
        self.occurrences_and_context(corpus, phrase, opts, stems).1
    }

    /// Occurrences *and* aggregate context of `phrase` from a single
    /// positional resolution — callers that need both (the inventory
    /// build, the linker's candidate gathering) stop paying for two.
    pub fn occurrences_and_context(
        &self,
        corpus: &Corpus,
        phrase: &[TokenId],
        opts: ContextOptions,
        stems: Option<&StemMap>,
    ) -> (Vec<Occurrence>, SparseVector) {
        let occs = self.find_occurrences(corpus, phrase);
        let vectors: Vec<SparseVector> = occs
            .iter()
            .map(|&occ| context_vector(corpus, occ, phrase.len(), opts, stems))
            .collect();
        (occs, SparseVector::sum_of(&vectors))
    }

    /// Batch context harvesting: [`Self::occurrences_and_context`] for
    /// many phrases in one call, fanned out across threads with
    /// `boe_par` (input order preserved — result `i` belongs to
    /// `phrases[i]`, bit-identical to the serial loop at any thread
    /// count).
    pub fn aggregate_contexts_for(
        &self,
        corpus: &Corpus,
        phrases: &[Vec<TokenId>],
        opts: ContextOptions,
        stems: Option<&StemMap>,
    ) -> Vec<(Vec<Occurrence>, SparseVector)> {
        // Document scope rebuilds a whole document's vector per
        // occurrence; one per-document base shared by every phrase turns
        // that into an exact count subtraction (bit-identical — see
        // [`DocContextCache`]). The naive backend skips the cache and
        // stays the plain reference construction end-to-end.
        let cache = (self.is_indexed() && opts.scope == crate::context::ContextScope::Document)
            .then(|| crate::context::DocContextCache::build(corpus, opts, stems));
        boe_par::par_map(phrases, |phrase| match &cache {
            Some(cache) => {
                let occs = self.find_occurrences(corpus, phrase);
                let context = cache.aggregate(&occs, phrase.len());
                (occs, context)
            }
            None => self.occurrences_and_context(corpus, phrase, opts, stems),
        })
    }

    /// Core of the indexed resolution: anchor on the offset of the
    /// phrase token with the smallest corpus frequency, walk only that
    /// token's postings, and verify every other token by binary search.
    /// Calls `emit` per occurrence in `(doc, sentence, start)` order;
    /// `emit` returning `false` stops the walk.
    fn walk_postings(
        &self,
        ix: &InvertedIndex,
        phrase: &[TokenId],
        mut emit: impl FnMut(Occurrence) -> bool,
    ) {
        if phrase.is_empty() {
            return;
        }
        // First offset with the minimum frequency — deterministic anchor,
        // so a phrase with repeated tokens counts each start once.
        let anchor = (0..phrase.len())
            .min_by_key(|&i| ix.term_freq(phrase[i]))
            .expect("non-empty phrase");
        for p in ix.postings(phrase[anchor]) {
            // Resolve the other tokens' postings in this document once.
            let mut others: Vec<(usize, &Posting)> = Vec::with_capacity(phrase.len() - 1);
            let mut complete = true;
            for (j, &t) in phrase.iter().enumerate() {
                if j == anchor {
                    continue;
                }
                match ix.posting_for(t, p.doc) {
                    Some(q) => others.push((j, q)),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            'pos: for &(si, pi) in &p.positions {
                // The anchor sits at phrase offset `anchor`, so the
                // phrase would start `anchor` tokens to the left.
                let Some(start) = pi.checked_sub(anchor as u32) else {
                    continue;
                };
                for &(j, q) in &others {
                    let want = (si, start + j as u32);
                    if q.positions.binary_search(&want).is_err() {
                        continue 'pos;
                    }
                }
                let occ = Occurrence {
                    doc: p.doc,
                    sentence: si as usize,
                    start: start as usize,
                };
                if !emit(occ) {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{aggregate_context, contexts, ContextScope};
    use crate::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("Corneal injuries heal. Corneal scarring follows corneal injuries.");
        b.add_text("Eye injuries are common. Corneal injuries are not.");
        b.add_text("The cornea is transparent.");
        b.build()
    }

    fn assert_same_occurrences(c: &Corpus, ox: &OccurrenceIndex, phrase: &[TokenId]) {
        assert_eq!(
            ox.find_occurrences(c, phrase),
            find_occurrences_naive(c, phrase)
        );
        assert_eq!(
            ox.contains(c, phrase),
            !find_occurrences_naive(c, phrase).is_empty()
        );
    }

    #[test]
    fn matches_naive_scan_on_known_phrases() {
        let c = corpus();
        let ox = OccurrenceIndex::build(&c);
        for phrase in ["corneal injuries", "injuries", "cornea", "eye injuries are"] {
            let ids = c.phrase_ids(phrase).expect("known");
            assert_same_occurrences(&c, &ox, &ids);
            assert!(ox.contains(&c, &ids), "{phrase}");
        }
    }

    #[test]
    fn non_adjacent_and_cross_sentence_phrases_do_not_match() {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("Damage was corneal. Injuries were treated.");
        let c = b.build();
        let ox = OccurrenceIndex::build(&c);
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        assert!(ox.find_occurrences(&c, &phrase).is_empty());
        assert!(!ox.contains(&c, &phrase));
        assert_same_occurrences(&c, &ox, &phrase);
    }

    #[test]
    fn empty_phrase_matches_nothing() {
        let c = corpus();
        let ox = OccurrenceIndex::build(&c);
        assert!(ox.find_occurrences(&c, &[]).is_empty());
        assert!(!ox.contains(&c, &[]));
    }

    #[test]
    fn repeated_token_phrases_count_each_start_once() {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("buffalo buffalo buffalo graze.");
        let c = b.build();
        let ox = OccurrenceIndex::build(&c);
        let one = c.phrase_ids("buffalo").expect("known");
        let two = c.phrase_ids("buffalo buffalo").expect("known");
        assert_same_occurrences(&c, &ox, &one);
        assert_same_occurrences(&c, &ox, &two);
        assert_eq!(ox.find_occurrences(&c, &two).len(), 2);
    }

    #[test]
    fn contexts_and_aggregate_match_reference() {
        let c = corpus();
        let ox = OccurrenceIndex::build(&c);
        let stems = StemMap::build(&c);
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        for scope in [ContextScope::Sentence, ContextScope::Document] {
            for window in [None, Some(1)] {
                let opts = ContextOptions {
                    window,
                    stemmed: true,
                    scope,
                };
                assert_eq!(
                    ox.contexts(&c, &phrase, opts, Some(&stems)),
                    contexts(&c, &phrase, opts, Some(&stems))
                );
                assert_eq!(
                    ox.aggregate_context(&c, &phrase, opts, Some(&stems)),
                    aggregate_context(&c, &phrase, opts, Some(&stems))
                );
            }
        }
    }

    #[test]
    fn batch_harvest_preserves_order_and_content() {
        let c = corpus();
        let ox = OccurrenceIndex::build(&c);
        let opts = ContextOptions::default();
        let phrases: Vec<Vec<TokenId>> = ["corneal injuries", "injuries", "cornea"]
            .iter()
            .map(|p| c.phrase_ids(p).expect("known"))
            .collect();
        let batch = ox.aggregate_contexts_for(&c, &phrases, opts, None);
        assert_eq!(batch.len(), phrases.len());
        for (phrase, (occs, agg)) in phrases.iter().zip(&batch) {
            assert_eq!(*occs, find_occurrences_naive(&c, phrase));
            assert_eq!(*agg, aggregate_context(&c, phrase, opts, None));
        }
    }

    #[test]
    fn naive_backend_answers_identically() {
        let c = corpus();
        let naive = OccurrenceIndex::naive();
        assert!(!naive.is_indexed());
        assert!(naive.inverted().is_none());
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        assert_same_occurrences(&c, &naive, &phrase);
        assert!(naive.contains(&c, &phrase));
        assert!(!naive.contains(&c, &[]));
    }

    #[test]
    fn resolution_enum_builds_matching_backends() {
        let c = corpus();
        assert!(OccurrenceResolution::Indexed.build(&c).is_indexed());
        assert!(!OccurrenceResolution::NaiveScan.build(&c).is_indexed());
        assert_eq!(
            OccurrenceResolution::default(),
            OccurrenceResolution::Indexed
        );
    }

    #[test]
    fn shared_inverted_index_is_reused() {
        let c = corpus();
        let ix = Arc::new(InvertedIndex::build(&c));
        let ox = OccurrenceIndex::from_inverted(ix.clone());
        assert!(Arc::ptr_eq(ox.inverted().expect("indexed"), &ix));
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        assert_same_occurrences(&c, &ox, &phrase);
    }
}
