//! Frequency and co-occurrence statistics.
//!
//! The windowed co-occurrence counts drive both the induced graph of Step
//! II (polysemy features) and the term co-occurrence graph of Step IV
//! (semantic linkage).

use crate::corpus::Corpus;
use boe_textkit::TokenId;
use std::collections::HashMap;

/// Symmetric windowed co-occurrence counts between lexical, non-stopword
/// tokens.
#[derive(Debug, Clone, Default)]
pub struct CoocCounts {
    /// Pair counts keyed by `(min(a,b), max(a,b))`.
    pairs: HashMap<(TokenId, TokenId), u32>,
    /// Marginal occurrence counts (over counted tokens only).
    occurrences: HashMap<TokenId, u32>,
    window: usize,
}

impl CoocCounts {
    /// Count co-occurrences over `corpus` within a sliding window of
    /// `window` tokens (a pair is counted when the two tokens are at most
    /// `window` positions apart within one sentence). Stopwords and
    /// punctuation are skipped but still occupy positions.
    pub fn from_corpus(corpus: &Corpus, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        let mut pairs: HashMap<(TokenId, TokenId), u32> = HashMap::new();
        let mut occurrences: HashMap<TokenId, u32> = HashMap::new();
        for doc in corpus.docs() {
            for s in &doc.sentences {
                let n = s.tokens.len();
                for i in 0..n {
                    let a = s.tokens[i];
                    if !s.tags[i].is_term_internal() || corpus.is_stopword(a) {
                        continue;
                    }
                    *occurrences.entry(a).or_insert(0) += 1;
                    let hi = (i + window).min(n.saturating_sub(1));
                    for j in (i + 1)..=hi {
                        let b = s.tokens[j];
                        if !s.tags[j].is_term_internal() || corpus.is_stopword(b) || a == b {
                            continue;
                        }
                        let key = if a <= b { (a, b) } else { (b, a) };
                        *pairs.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
        CoocCounts {
            pairs,
            occurrences,
            window,
        }
    }

    /// The window size the counts were computed with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Co-occurrence count of an unordered pair.
    pub fn pair(&self, a: TokenId, b: TokenId) -> u32 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.get(&key).copied().unwrap_or(0)
    }

    /// Occurrence count of one token (among counted tokens).
    pub fn occurrences(&self, t: TokenId) -> u32 {
        self.occurrences.get(&t).copied().unwrap_or(0)
    }

    /// All pairs with their counts, in stable (sorted) order.
    pub fn iter_pairs(&self) -> Vec<((TokenId, TokenId), u32)> {
        let mut v: Vec<_> = self.pairs.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by_key(|(k, _)| *k);
        v
    }

    /// Number of distinct co-occurring pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Neighbours of `t` with counts, sorted by decreasing count then id.
    pub fn neighbours(&self, t: TokenId) -> Vec<(TokenId, u32)> {
        let mut v: Vec<(TokenId, u32)> = self
            .pairs
            .iter()
            .filter_map(|(&(a, b), &c)| {
                if a == t {
                    Some((b, c))
                } else if b == t {
                    Some((a, c))
                } else {
                    None
                }
            })
            .collect();
        v.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        v
    }

    /// Pointwise mutual information of a pair given total token mass.
    ///
    /// `pmi = log( p(a,b) / (p(a) p(b)) )` with add-zero smoothing: returns
    /// `None` when any count involved is zero.
    pub fn pmi(&self, a: TokenId, b: TokenId) -> Option<f64> {
        let cab = self.pair(a, b);
        let ca = self.occurrences(a);
        let cb = self.occurrences(b);
        if cab == 0 || ca == 0 || cb == 0 {
            return None;
        }
        let total: u64 = self.occurrences.values().map(|&c| u64::from(c)).sum();
        let total_pairs: u64 = self.pairs.values().map(|&c| u64::from(c)).sum();
        if total == 0 || total_pairs == 0 {
            return None;
        }
        let pab = f64::from(cab) / total_pairs as f64;
        let pa = f64::from(ca) / total as f64;
        let pb = f64::from(cb) / total as f64;
        Some((pab / (pa * pb)).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus(texts: &[&str]) -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        b.build()
    }

    #[test]
    fn adjacent_words_cooccur() {
        let c = corpus(&["corneal injuries heal slowly."]);
        let cc = CoocCounts::from_corpus(&c, 2);
        let corneal = c.vocab().get("corneal").expect("id");
        let injuries = c.vocab().get("injuries").expect("id");
        assert_eq!(cc.pair(corneal, injuries), 1);
        assert_eq!(cc.pair(injuries, corneal), 1, "symmetric");
    }

    #[test]
    fn window_limits_reach() {
        let c = corpus(&["cornea epithelium stroma endothelium membrane."]);
        let cc = CoocCounts::from_corpus(&c, 1);
        let cornea = c.vocab().get("cornea").expect("id");
        let stroma = c.vocab().get("stroma").expect("id");
        assert_eq!(cc.pair(cornea, stroma), 0, "distance 2 > window 1");
        let cc2 = CoocCounts::from_corpus(&c, 2);
        assert_eq!(cc2.pair(cornea, stroma), 1);
    }

    #[test]
    fn stopwords_are_excluded_but_occupy_positions() {
        let c = corpus(&["injuries of the cornea."]);
        let cc = CoocCounts::from_corpus(&c, 2);
        let injuries = c.vocab().get("injuries").expect("id");
        let cornea = c.vocab().get("cornea").expect("id");
        // "of the" occupies 2 positions; distance injuries→cornea is 3 > 2.
        assert_eq!(cc.pair(injuries, cornea), 0);
        let cc3 = CoocCounts::from_corpus(&c, 3);
        assert_eq!(cc3.pair(injuries, cornea), 1);
        let the = c.vocab().get("the").expect("id");
        assert_eq!(cc3.occurrences(the), 0);
    }

    #[test]
    fn sentences_bound_windows() {
        let c = corpus(&["Damage was corneal. Injuries were treated."]);
        let cc = CoocCounts::from_corpus(&c, 10);
        let corneal = c.vocab().get("corneal").expect("id");
        let injuries = c.vocab().get("injuries").expect("id");
        assert_eq!(cc.pair(corneal, injuries), 0);
    }

    #[test]
    fn neighbours_sorted_by_count() {
        let c = corpus(&[
            "cornea injury repair.",
            "cornea injury healing.",
            "cornea scarring process.",
        ]);
        let cc = CoocCounts::from_corpus(&c, 2);
        let cornea = c.vocab().get("cornea").expect("id");
        let nb = cc.neighbours(cornea);
        assert!(!nb.is_empty());
        let injury = c.vocab().get("injury").expect("id");
        assert_eq!(nb[0].0, injury, "most frequent neighbour first");
        assert_eq!(nb[0].1, 2);
    }

    #[test]
    fn pmi_behaviour() {
        let c = corpus(&["cornea injury.", "cornea injury.", "stroma membrane."]);
        let cc = CoocCounts::from_corpus(&c, 2);
        let cornea = c.vocab().get("cornea").expect("id");
        let injury = c.vocab().get("injury").expect("id");
        let stroma = c.vocab().get("stroma").expect("id");
        assert!(cc.pmi(cornea, injury).expect("co-occurring") > 0.0);
        assert!(cc.pmi(cornea, stroma).is_none());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let c = corpus(&["a."]);
        let _ = CoocCounts::from_corpus(&c, 0);
    }

    #[test]
    fn iter_pairs_is_sorted() {
        let c = corpus(&["cornea injury repair healing process."]);
        let cc = CoocCounts::from_corpus(&c, 4);
        let pairs = cc.iter_pairs();
        assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(pairs.len(), cc.pair_count());
    }
}
