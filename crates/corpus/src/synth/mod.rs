//! Synthetic-data generators.
//!
//! The paper's corpora (PubMed retrievals, the MSH-WSD benchmark) are not
//! redistributable; these generators produce the closest synthetic
//! equivalents that exercise the same code paths (DESIGN.md §2):
//!
//! * [`vocabgen`] — morpheme-composed biomedical-like vocabulary per
//!   language, chosen so the POS tagger's suffix rules classify it
//!   correctly;
//! * [`topic`] — concept topic profiles and the template-based abstract
//!   generator: *terms that denote a concept co-occur with that concept's
//!   characteristic vocabulary*, the property every workflow step relies
//!   on;
//! * [`pubmed`] — PubMed-like abstract collections over a set of concept
//!   profiles;
//! * [`mshwsd`] — an MSH-WSD-like word-sense-disambiguation dataset: N
//!   ambiguous entities, each with k ∈ \[2,5\] senses and ~100 context
//!   snippets per sense.
//!
//! All generators are seeded and fully deterministic.

pub mod mshwsd;
pub mod pubmed;
pub mod topic;
pub mod vocabgen;

pub use mshwsd::{AmbiguousEntity, MshWsdDataset};
pub use pubmed::PubMedGenerator;
pub use topic::{AbstractGenerator, Background, ConceptProfile};
pub use vocabgen::LexiconPools;
