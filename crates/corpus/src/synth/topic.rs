//! Concept topic profiles and the template-based abstract generator.
//!
//! Each synthetic concept owns an *exclusive* sub-vocabulary (its topic
//! nouns/adjectives). Generated sentences mix topic words, shared
//! background words and function words through language-appropriate
//! noun-phrase templates, and can embed a *mention* of the concept's term.
//! This preserves the distributional property the workflow depends on:
//! the contexts of a term are dominated by its concept's vocabulary.

use crate::synth::vocabgen::LexiconPools;
use boe_rng::StdRng;
use boe_textkit::pos::PosTag;
use boe_textkit::Language;

/// A `(word, tag)` pair; sentences are sequences of these.
pub type TaggedWord = (String, PosTag);

/// The topic profile of one synthetic concept.
#[derive(Debug, Clone)]
pub struct ConceptProfile {
    /// Caller-assigned concept id (aligned with the ontology by `boe-eval`).
    pub concept: usize,
    /// Preferred-term token sequence, e.g. `[("corneal", A), ("injuries", N)]`.
    pub mention: Vec<TaggedWord>,
    /// Synonym token sequences (alternate surface forms of the same term).
    pub synonyms: Vec<Vec<TaggedWord>>,
    /// Exclusive topic nouns.
    pub nouns: Vec<String>,
    /// Exclusive topic adjectives.
    pub adjectives: Vec<String>,
}

impl ConceptProfile {
    /// Build a profile whose topic pools are disjoint slices of `pools`
    /// (concept `idx` strides the noun/adjective pools).
    pub fn with_exclusive_pools(
        concept: usize,
        idx: usize,
        mention: Vec<TaggedWord>,
        pools: &LexiconPools,
        n_nouns: usize,
        n_adjectives: usize,
    ) -> Self {
        ConceptProfile {
            concept,
            mention,
            synonyms: Vec::new(),
            nouns: pools.noun_slice(idx * n_nouns, n_nouns),
            adjectives: pools.adjective_slice(idx * n_adjectives, n_adjectives),
        }
    }

    /// All surface forms (mention + synonyms).
    pub fn surfaces(&self) -> impl Iterator<Item = &Vec<TaggedWord>> {
        std::iter::once(&self.mention).chain(self.synonyms.iter())
    }
}

/// Build a mention token sequence from an adjective and a noun in the
/// language's NP order (EN: A N; FR/ES: N A).
pub fn mention_tokens(lang: Language, adjective: &str, noun: &str) -> Vec<TaggedWord> {
    match lang {
        Language::English => vec![
            (adjective.to_owned(), PosTag::Adjective),
            (noun.to_owned(), PosTag::Noun),
        ],
        Language::French | Language::Spanish => vec![
            (noun.to_owned(), PosTag::Noun),
            (adjective.to_owned(), PosTag::Adjective),
        ],
    }
}

/// Shared background: function words and non-topical content words.
#[derive(Debug, Clone)]
pub struct Background {
    pools: LexiconPools,
}

impl Background {
    /// Background for `lang`.
    pub fn for_language(lang: Language) -> Self {
        Background {
            pools: LexiconPools::generate(lang),
        }
    }

    /// Wrap existing pools.
    pub fn from_pools(pools: LexiconPools) -> Self {
        Background { pools }
    }

    /// The underlying pools.
    pub fn pools(&self) -> &LexiconPools {
        &self.pools
    }
}

/// Template-based sentence/abstract generator.
#[derive(Debug, Clone)]
pub struct AbstractGenerator {
    lang: Language,
    background: Background,
    /// Probability that a content slot draws from the concept's topic pool
    /// rather than the background pool.
    pub topic_prob: f64,
}

impl AbstractGenerator {
    /// Generator for `lang` with the default topic mixing (0.75).
    pub fn new(lang: Language) -> Self {
        AbstractGenerator {
            lang,
            background: Background::for_language(lang),
            topic_prob: 0.75,
        }
    }

    /// The generator's language.
    pub fn language(&self) -> Language {
        self.lang
    }

    fn pick<'a>(rng: &mut StdRng, xs: &'a [&'static str]) -> &'a str {
        xs[rng.gen_range(0..xs.len())]
    }

    fn pick_owned(rng: &mut StdRng, xs: &[String]) -> String {
        xs[rng.gen_range(0..xs.len())].clone()
    }

    fn topic_noun(&self, rng: &mut StdRng, profile: &ConceptProfile) -> String {
        if !profile.nouns.is_empty() && rng.gen_bool(self.topic_prob) {
            Self::pick_owned(rng, &profile.nouns)
        } else {
            Self::pick(rng, &self.background.pools.background_nouns).to_owned()
        }
    }

    fn topic_adjective(&self, rng: &mut StdRng, profile: &ConceptProfile) -> String {
        if !profile.adjectives.is_empty() && rng.gen_bool(self.topic_prob) {
            Self::pick_owned(rng, &profile.adjectives)
        } else {
            Self::pick(rng, &self.background.pools.background_adjectives).to_owned()
        }
    }

    /// A noun phrase chunk: determiner + content words in language order,
    /// or the given mention.
    fn np_chunk(
        &self,
        rng: &mut StdRng,
        profile: &ConceptProfile,
        mention: Option<&[TaggedWord]>,
        out: &mut Vec<TaggedWord>,
    ) {
        let det = Self::pick(rng, &self.background.pools.determiners);
        out.push((det.to_owned(), PosTag::Determiner));
        if let Some(m) = mention {
            out.extend(m.iter().cloned());
            return;
        }
        let with_adj = rng.gen_bool(0.6);
        let noun = self.topic_noun(rng, profile);
        match self.lang {
            Language::English => {
                if with_adj {
                    out.push((self.topic_adjective(rng, profile), PosTag::Adjective));
                }
                out.push((noun, PosTag::Noun));
            }
            Language::French | Language::Spanish => {
                out.push((noun, PosTag::Noun));
                if with_adj {
                    out.push((self.topic_adjective(rng, profile), PosTag::Adjective));
                }
            }
        }
    }

    /// One sentence about `profile`. If `mention` is `Some`, the subject NP
    /// is that token sequence (this is how context snippets embedding a
    /// target term are produced).
    pub fn sentence(
        &self,
        rng: &mut StdRng,
        profile: &ConceptProfile,
        mention: Option<&[TaggedWord]>,
    ) -> (Vec<String>, Vec<PosTag>) {
        let mut out: Vec<TaggedWord> = Vec::with_capacity(12);
        self.np_chunk(rng, profile, mention, &mut out);
        let verb = Self::pick(rng, &self.background.pools.verbs);
        out.push((verb.to_owned(), PosTag::Verb));
        self.np_chunk(rng, profile, None, &mut out);
        if rng.gen_bool(0.5) {
            let prep = Self::pick(rng, &self.background.pools.prepositions);
            out.push((prep.to_owned(), PosTag::Preposition));
            out.push((self.topic_noun(rng, profile), PosTag::Noun));
        }
        out.push((".".to_owned(), PosTag::Punctuation));
        out.into_iter().unzip()
    }

    /// A sentence whose subject NP is `subject_mention` and whose object
    /// NP is `object_mention`, with topic words drawn from `profile` —
    /// "the corneal injuries resemble the corneal diseases in the stroma."
    /// This is how related terms come to co-occur within one sentence,
    /// which Step IV's neighbourhood discovery and the relation-typing
    /// extension both rely on.
    pub fn pair_sentence(
        &self,
        rng: &mut StdRng,
        profile: &ConceptProfile,
        subject_mention: &[TaggedWord],
        object_mention: &[TaggedWord],
    ) -> (Vec<String>, Vec<PosTag>) {
        let mut out: Vec<TaggedWord> = Vec::with_capacity(12);
        self.np_chunk(rng, profile, Some(subject_mention), &mut out);
        let verb = Self::pick(rng, &self.background.pools.verbs);
        out.push((verb.to_owned(), PosTag::Verb));
        self.np_chunk(rng, profile, Some(object_mention), &mut out);
        let prep = Self::pick(rng, &self.background.pools.prepositions);
        out.push((prep.to_owned(), PosTag::Preposition));
        out.push((self.topic_noun(rng, profile), PosTag::Noun));
        out.push((".".to_owned(), PosTag::Punctuation));
        out.into_iter().unzip()
    }

    /// An abstract: `n_sentences` sentences, each about a profile drawn
    /// from `profiles` (round-robin over a random starting offset), with a
    /// `mention_prob` chance of embedding the profile's term.
    pub fn abstract_for(
        &self,
        rng: &mut StdRng,
        profiles: &[&ConceptProfile],
        n_sentences: usize,
        mention_prob: f64,
    ) -> Vec<(Vec<String>, Vec<PosTag>)> {
        assert!(!profiles.is_empty(), "at least one profile required");
        let start = rng.gen_range(0..profiles.len());
        (0..n_sentences)
            .map(|i| {
                let p = profiles[(start + i) % profiles.len()];
                let mention = if rng.gen_bool(mention_prob) {
                    let surfaces: Vec<&Vec<TaggedWord>> = p.surfaces().collect();
                    Some(surfaces[rng.gen_range(0..surfaces.len())].clone())
                } else {
                    None
                };
                self.sentence(rng, p, mention.as_deref())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(lang: Language) -> ConceptProfile {
        let pools = LexiconPools::generate(lang);
        ConceptProfile::with_exclusive_pools(
            0,
            0,
            mention_tokens(lang, "corneal", "injuries"),
            &pools,
            12,
            6,
        )
    }

    #[test]
    fn sentence_is_well_formed() {
        let g = AbstractGenerator::new(Language::English);
        let p = profile(Language::English);
        let mut rng = StdRng::seed_from_u64(7);
        let (words, tags) = g.sentence(&mut rng, &p, None);
        assert_eq!(words.len(), tags.len());
        assert_eq!(words.last().map(String::as_str), Some("."));
        assert!(tags.contains(&PosTag::Verb));
        assert!(tags.contains(&PosTag::Noun));
    }

    #[test]
    fn mention_is_embedded_verbatim() {
        let g = AbstractGenerator::new(Language::English);
        let p = profile(Language::English);
        let mut rng = StdRng::seed_from_u64(7);
        let (words, tags) = g.sentence(&mut rng, &p, Some(&p.mention));
        let joined = words.join(" ");
        assert!(joined.contains("corneal injuries"), "{joined}");
        // Tag sequence of the mention is A N.
        let i = words.iter().position(|w| w == "corneal").expect("present");
        assert_eq!(tags[i], PosTag::Adjective);
        assert_eq!(tags[i + 1], PosTag::Noun);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = AbstractGenerator::new(Language::English);
        let p = profile(Language::English);
        let s1 = g.sentence(&mut StdRng::seed_from_u64(42), &p, None);
        let s2 = g.sentence(&mut StdRng::seed_from_u64(42), &p, None);
        assert_eq!(s1, s2);
    }

    #[test]
    fn topic_words_dominate_contexts() {
        let g = AbstractGenerator::new(Language::English);
        let p = profile(Language::English);
        let mut rng = StdRng::seed_from_u64(3);
        let mut topic = 0usize;
        let mut nouns = 0usize;
        for _ in 0..200 {
            let (words, tags) = g.sentence(&mut rng, &p, None);
            for (w, t) in words.iter().zip(&tags) {
                if *t == PosTag::Noun {
                    nouns += 1;
                    if p.nouns.contains(w) {
                        topic += 1;
                    }
                }
            }
        }
        let ratio = topic as f64 / nouns as f64;
        assert!(ratio > 0.5, "topic ratio {ratio}");
    }

    #[test]
    fn romance_np_order() {
        let g = AbstractGenerator::new(Language::French);
        let p = profile(Language::French);
        let mut rng = StdRng::seed_from_u64(9);
        // Over many sentences, every adjective directly follows a noun or
        // another adjective (N A, N A A) — never follows a determiner.
        for _ in 0..50 {
            let (_, tags) = g.sentence(&mut rng, &p, None);
            for w in tags.windows(2) {
                if w[1] == PosTag::Adjective {
                    assert!(
                        matches!(w[0], PosTag::Noun | PosTag::Adjective),
                        "adjective after {:?}",
                        w[0]
                    );
                }
            }
        }
    }

    #[test]
    fn abstract_mentions_appear_with_requested_rate() {
        let g = AbstractGenerator::new(Language::English);
        let p = profile(Language::English);
        let mut rng = StdRng::seed_from_u64(11);
        let sents = g.abstract_for(&mut rng, &[&p], 300, 0.5);
        let with_mention = sents
            .iter()
            .filter(|(w, _)| w.join(" ").contains("corneal injuries"))
            .count();
        let rate = with_mention as f64 / 300.0;
        assert!((0.35..=0.65).contains(&rate), "mention rate {rate}");
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_profiles_panics() {
        let g = AbstractGenerator::new(Language::English);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = g.abstract_for(&mut rng, &[], 3, 0.5);
    }

    #[test]
    fn pair_sentence_contains_both_mentions() {
        let g = AbstractGenerator::new(Language::English);
        let p = profile(Language::English);
        let other = mention_tokens(Language::English, "corneal", "diseases");
        let mut rng = StdRng::seed_from_u64(5);
        let (words, tags) = g.pair_sentence(&mut rng, &p, &p.mention, &other);
        let joined = words.join(" ");
        assert!(joined.contains("corneal injuries"), "{joined}");
        assert!(joined.contains("corneal diseases"), "{joined}");
        assert_eq!(words.len(), tags.len());
        assert!(tags.contains(&PosTag::Verb));
    }

    #[test]
    fn exclusive_pools_are_disjoint_between_concepts() {
        let pools = LexiconPools::generate(Language::English);
        let a = ConceptProfile::with_exclusive_pools(0, 0, vec![], &pools, 12, 6);
        let b = ConceptProfile::with_exclusive_pools(1, 1, vec![], &pools, 12, 6);
        assert!(a.nouns.iter().all(|w| !b.nouns.contains(w)));
        assert!(a.adjectives.iter().all(|w| !b.adjectives.contains(w)));
    }
}
