//! MSH-WSD-like word-sense-disambiguation dataset.
//!
//! The paper evaluates sense-number prediction on MSH WSD
//! (Jimeno-Yepes et al., 2011): 203 ambiguous biomedical entities, each
//! linked to 2–5 UMLS concepts, with ~100 MEDLINE citations per sense.
//! This generator reproduces that structure synthetically: each entity is
//! a surface token shared by k concept profiles with exclusive topic
//! vocabularies; each sense contributes `snippets_per_sense` short
//! documents embedding the ambiguous term in that sense's context.

use crate::corpus::Corpus;
use crate::corpus::CorpusBuilder;
use crate::doc::DocId;
use crate::synth::topic::{AbstractGenerator, ConceptProfile, TaggedWord};
use crate::synth::vocabgen::LexiconPools;
use boe_rng::StdRng;
use boe_textkit::pos::PosTag;
use boe_textkit::Language;

/// Configuration for the MSH-WSD-like generator.
#[derive(Debug, Clone)]
pub struct MshWsdConfig {
    /// Number of ambiguous entities (the paper's dataset has 203).
    pub n_entities: usize,
    /// Context snippets (documents) per sense (~100 in MSH WSD).
    pub snippets_per_sense: usize,
    /// Unnormalized weights of sense counts k = 2, 3, 4, 5. The default is
    /// the UMLS-English polysemy skew from the paper's Table 1
    /// (54 257 : 7 770 : 1 842 : 1 677).
    pub sense_weights: [f64; 4],
    /// Topic nouns per sense profile.
    pub nouns_per_sense: usize,
    /// Topic adjectives per sense profile.
    pub adjectives_per_sense: usize,
    /// Probability a content slot draws from the sense's topic pool.
    pub topic_prob: f64,
    /// Sentences per snippet (inclusive range).
    pub sentences_per_snippet: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for MshWsdConfig {
    fn default() -> Self {
        MshWsdConfig {
            n_entities: 203,
            snippets_per_sense: 100,
            sense_weights: [54_257.0, 7_770.0, 1_842.0, 1_677.0],
            nouns_per_sense: 8,
            adjectives_per_sense: 4,
            topic_prob: 0.85,
            sentences_per_snippet: (2, 4),
            seed: 0x5EED_2016,
        }
    }
}

/// One ambiguous entity with its gold sense structure.
#[derive(Debug, Clone)]
pub struct AmbiguousEntity {
    /// Entity index.
    pub id: usize,
    /// The ambiguous surface term (single token).
    pub surface: TaggedWord,
    /// Gold number of senses, in `[2, 5]`.
    pub k: usize,
    /// `(document, gold sense index)` per snippet.
    pub snippets: Vec<(DocId, usize)>,
}

impl AmbiguousEntity {
    /// The surface string.
    pub fn surface_text(&self) -> &str {
        &self.surface.0
    }
}

/// The generated dataset: one corpus containing all snippets, plus the
/// gold entity structure.
#[derive(Debug)]
pub struct MshWsdDataset {
    /// The snippet corpus (one document per snippet).
    pub corpus: Corpus,
    /// The entities with gold labels.
    pub entities: Vec<AmbiguousEntity>,
}

impl MshWsdDataset {
    /// Generate a dataset for `lang` under `config`.
    pub fn generate(lang: Language, config: &MshWsdConfig) -> Self {
        assert!(config.n_entities >= 1, "need at least one entity");
        assert!(config.snippets_per_sense >= 1, "need snippets");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pools = LexiconPools::generate(lang);
        let mut generator = AbstractGenerator::new(lang);
        generator.topic_prob = config.topic_prob;
        let mut builder = CorpusBuilder::new(lang);
        let mut entities = Vec::with_capacity(config.n_entities);

        let total_w: f64 = config.sense_weights.iter().sum();
        for e in 0..config.n_entities {
            // Sample k ∈ {2..5} from the weighted skew.
            let mut u = rng.gen::<f64>() * total_w;
            let mut k = 5;
            for (i, w) in config.sense_weights.iter().enumerate() {
                if u < *w {
                    k = i + 2;
                    break;
                }
                u -= *w;
            }
            // Ambiguous surface token: digits keep it out of the stemmer
            // and unique across the vocabulary.
            let surface: TaggedWord = (format!("ambigram{e}"), PosTag::Noun);
            // k sense profiles with exclusive pools *within this entity*
            // (cross-entity pool reuse is harmless: entities are clustered
            // independently).
            let profiles: Vec<ConceptProfile> = (0..k)
                .map(|s| {
                    let mut p = ConceptProfile::with_exclusive_pools(
                        e * 5 + s,
                        e * 5 + s,
                        vec![surface.clone()],
                        &pools,
                        config.nouns_per_sense,
                        config.adjectives_per_sense,
                    );
                    p.mention = vec![surface.clone()];
                    p
                })
                .collect();
            let mut snippets = Vec::with_capacity(k * config.snippets_per_sense);
            for (s, profile) in profiles.iter().enumerate() {
                for _ in 0..config.snippets_per_sense {
                    let n_sents = rng
                        .gen_range(config.sentences_per_snippet.0..=config.sentences_per_snippet.1);
                    let mut sents = Vec::with_capacity(n_sents);
                    // First sentence embeds the ambiguous term.
                    sents.push(generator.sentence(&mut rng, profile, Some(&profile.mention)));
                    for _ in 1..n_sents {
                        sents.push(generator.sentence(&mut rng, profile, None));
                    }
                    let doc = builder.add_tokenized(sents);
                    snippets.push((doc, s));
                }
            }
            entities.push(AmbiguousEntity {
                id: e,
                surface,
                k,
                snippets,
            });
        }
        MshWsdDataset {
            corpus: builder.build(),
            entities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{contexts, ContextOptions, ContextScope};

    fn small() -> MshWsdDataset {
        MshWsdDataset::generate(
            Language::English,
            &MshWsdConfig {
                n_entities: 8,
                snippets_per_sense: 10,
                seed: 42,
                ..Default::default()
            },
        )
    }

    #[test]
    fn entity_count_and_k_range() {
        let d = small();
        assert_eq!(d.entities.len(), 8);
        for e in &d.entities {
            assert!((2..=5).contains(&e.k), "k={}", e.k);
            assert_eq!(e.snippets.len(), e.k * 10);
        }
    }

    #[test]
    fn sense_skew_favours_two() {
        let d = MshWsdDataset::generate(
            Language::English,
            &MshWsdConfig {
                n_entities: 300,
                snippets_per_sense: 1,
                seed: 7,
                ..Default::default()
            },
        );
        let two = d.entities.iter().filter(|e| e.k == 2).count();
        // UMLS skew: 82.7% of polysemic terms have exactly 2 senses.
        assert!(two > 200, "only {two}/300 entities with k=2");
    }

    #[test]
    fn every_snippet_contains_the_surface() {
        let d = small();
        for e in &d.entities {
            let id = d
                .corpus
                .vocab()
                .get(e.surface_text())
                .expect("surface interned");
            for &(doc, _) in &e.snippets {
                let found = d.corpus.doc(doc).iter_tokens().any(|(_, _, t, _)| t == id);
                assert!(found, "entity {} missing in {doc}", e.id);
            }
        }
    }

    #[test]
    fn contexts_of_different_senses_are_separable() {
        let d = small();
        let e = &d.entities[0];
        let id = d.corpus.vocab().get(e.surface_text()).expect("interned");
        let opts = ContextOptions {
            window: None,
            stemmed: false,
            scope: ContextScope::Sentence,
        };
        let ctxs = contexts(&d.corpus, &[id], opts, None);
        assert!(!ctxs.is_empty());
        // Aggregate per gold sense and check cross-sense cosine is far
        // below within-sense self-similarity.
        use crate::vector::SparseVector;
        let mut per_sense: Vec<Vec<&SparseVector>> = vec![Vec::new(); e.k];
        // contexts() iterates docs in order; snippets are grouped by sense
        // in generation order, so map occurrences back via snippet list.
        // (One occurrence per snippet: the embedded mention.)
        assert_eq!(ctxs.len(), e.snippets.len());
        for (v, &(_, sense)) in ctxs.iter().zip(&e.snippets) {
            per_sense[sense].push(v);
        }
        let centroids: Vec<SparseVector> = per_sense
            .iter()
            .map(|vs| {
                let owned: Vec<SparseVector> = vs.iter().map(|v| (*v).clone()).collect();
                SparseVector::centroid(&owned)
            })
            .collect();
        let cross = centroids[0].cosine(&centroids[1]);
        assert!(cross < 0.5, "senses not separable: cross-cosine {cross}");
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.corpus.token_count(), b.corpus.token_count());
        assert_eq!(
            a.entities.iter().map(|e| e.k).collect::<Vec<_>>(),
            b.entities.iter().map(|e| e.k).collect::<Vec<_>>()
        );
    }

    #[test]
    fn surfaces_are_unique() {
        let d = small();
        let mut seen = std::collections::HashSet::new();
        for e in &d.entities {
            assert!(seen.insert(e.surface_text().to_owned()));
        }
    }
}
