//! Morpheme-based biomedical-like vocabulary generation.
//!
//! Words are composed from Greco-Latin roots and derivational suffixes so
//! that (a) they look like biomedical vocabulary, (b) the `boe-textkit`
//! suffix tagger classifies them correctly, and (c) the pool is large
//! enough (thousands of forms) to give every synthetic concept an
//! exclusive sub-vocabulary.

use boe_textkit::Language;

/// Anatomical/clinical roots shared by all three languages.
pub const ROOTS: &[&str] = &[
    "cardi", "hepat", "nephr", "neur", "derm", "gastr", "oste", "arthr", "pulmon", "ocul", "corne",
    "retin", "vascul", "hemat", "onc", "cyt", "immun", "thyr", "gluc", "lip", "angi", "bronch",
    "col", "crani", "cyst", "encephal", "enter", "fibr", "gingiv", "gloss", "kerat", "lact",
    "laryng", "leuk", "mening", "myel", "nas", "necr", "odont", "ophthalm", "oss", "ot", "phleb",
    "pneum", "proct", "psych", "rhin", "scler", "splen", "stomat", "thromb", "tox", "trache", "ur",
    "uter", "ven", "vertebr", "aden", "chondr", "cortic", "cutane", "digit", "dors", "febr", "gon",
    "hemorrh", "hypn", "lingu", "mamm", "muscul", "ocell", "palat", "pector", "pharyng", "plasm",
    "sebac", "tend", "vesic",
];

/// A per-language pool of generated open-class words plus the closed-class
/// fillers the sentence templates need.
#[derive(Debug, Clone)]
pub struct LexiconPools {
    /// The language of the pools.
    pub lang: Language,
    /// Topic-grade nouns ("carditis", "hepatoma", …).
    pub nouns: Vec<String>,
    /// Topic-grade adjectives ("cardial", "hepatic", …).
    pub adjectives: Vec<String>,
    /// Verbs usable as sentence predicates; all present in the tagger's
    /// closed-class lexicon so tagging stays consistent.
    pub verbs: Vec<&'static str>,
    /// Determiners.
    pub determiners: Vec<&'static str>,
    /// Prepositions for N-P-N constructions.
    pub prepositions: Vec<&'static str>,
    /// General scientific background nouns.
    pub background_nouns: Vec<&'static str>,
    /// General scientific background adjectives.
    pub background_adjectives: Vec<&'static str>,
}

impl LexiconPools {
    /// Generate the pools for `lang`.
    pub fn generate(lang: Language) -> Self {
        let (noun_sufs, adj_sufs): (&[&str], &[&str]) = match lang {
            Language::English => (
                &[
                    "itis",
                    "osis",
                    "oma",
                    "opathy",
                    "ectomy",
                    "ography",
                    "emia",
                    "ology",
                    "oplasty",
                    "ogram",
                    "ocyte",
                    "ogenesis",
                    "oplasia",
                    "osclerosis",
                ],
                &["al", "ic", "ous", "ar", "oid"],
            ),
            Language::French => (
                &[
                    "ite", "ose", "ome", "opathie", "ectomie", "ographie", "émie", "ologie",
                    "oplastie", "ogenèse",
                ],
                &["ique", "al", "aire", "eux"],
            ),
            Language::Spanish => (
                &[
                    "itis",
                    "osis",
                    "oma",
                    "opatía",
                    "ectomía",
                    "ografía",
                    "emia",
                    "ología",
                    "oplastia",
                    "ogénesis",
                ],
                &["ico", "al", "ario", "oso"],
            ),
        };
        let nouns: Vec<String> = ROOTS
            .iter()
            .flat_map(|r| noun_sufs.iter().map(move |s| format!("{r}{s}")))
            .collect();
        let adjectives: Vec<String> = ROOTS
            .iter()
            .flat_map(|r| adj_sufs.iter().map(move |s| format!("{r}{s}")))
            .collect();
        let (verbs, determiners, prepositions): (
            Vec<&'static str>,
            Vec<&'static str>,
            Vec<&'static str>,
        ) = match lang {
            Language::English => (
                vec![
                    "causes",
                    "shows",
                    "affects",
                    "induces",
                    "requires",
                    "involves",
                    "suggests",
                    "indicates",
                    "reveals",
                ],
                vec!["the", "a", "this"],
                vec!["of", "in", "with", "for", "during"],
            ),
            Language::French => (
                vec!["provoque", "montre", "présente", "entraîne"],
                vec!["le", "la", "les", "une"],
                vec!["de", "dans", "avec", "pour"],
            ),
            Language::Spanish => (
                vec!["causa", "muestra", "presenta", "produce"],
                vec!["el", "la", "los", "una"],
                vec!["de", "en", "con", "para"],
            ),
        };
        let (background_nouns, background_adjectives): (Vec<&'static str>, Vec<&'static str>) =
            match lang {
                Language::English => (
                    vec![
                        "patient",
                        "patients",
                        "treatment",
                        "therapy",
                        "diagnosis",
                        "analysis",
                        "outcome",
                        "response",
                        "lesion",
                        "tissue",
                        "sample",
                        "syndrome",
                        "disease",
                        "disorder",
                        "infection",
                        "inflammation",
                        "symptom",
                        "cell",
                        "membrane",
                        "protein",
                        "receptor",
                        "gene",
                        "expression",
                        "function",
                        "surgery",
                        "procedure",
                        "evaluation",
                        "examination",
                        "population",
                        "incidence",
                    ],
                    vec![
                        "acute",
                        "chronic",
                        "severe",
                        "mild",
                        "clinical",
                        "surgical",
                        "common",
                        "rare",
                        "early",
                        "late",
                        "bilateral",
                        "benign",
                        "malignant",
                        "human",
                    ],
                ),
                Language::French => (
                    vec![
                        "patient",
                        "patients",
                        "traitement",
                        "thérapie",
                        "diagnostic",
                        "analyse",
                        "lésion",
                        "tissu",
                        "échantillon",
                        "syndrome",
                        "maladie",
                        "infection",
                        "inflammation",
                        "symptôme",
                        "cellule",
                        "membrane",
                        "protéine",
                        "récepteur",
                        "gène",
                        "fonction",
                        "chirurgie",
                        "procédure",
                        "évaluation",
                        "incidence",
                    ],
                    vec![
                        "aigu",
                        "chronique",
                        "sévère",
                        "clinique",
                        "chirurgical",
                        "rare",
                        "bénin",
                        "humain",
                        "précoce",
                        "tardif",
                    ],
                ),
                Language::Spanish => (
                    vec![
                        "paciente",
                        "pacientes",
                        "tratamiento",
                        "terapia",
                        "diagnóstico",
                        "análisis",
                        "lesión",
                        "tejido",
                        "muestra",
                        "síndrome",
                        "enfermedad",
                        "infección",
                        "inflamación",
                        "síntoma",
                        "célula",
                        "membrana",
                        "proteína",
                        "receptor",
                        "gen",
                        "función",
                        "cirugía",
                        "procedimiento",
                        "evaluación",
                        "incidencia",
                    ],
                    vec![
                        "agudo",
                        "crónico",
                        "severo",
                        "clínico",
                        "quirúrgico",
                        "raro",
                        "benigno",
                        "humano",
                        "precoz",
                        "tardío",
                    ],
                ),
            };
        LexiconPools {
            lang,
            nouns,
            adjectives,
            verbs,
            determiners,
            prepositions,
            background_nouns,
            background_adjectives,
        }
    }

    /// Take `n` nouns starting at `offset` (wrapping); used to give each
    /// concept an exclusive noun sub-pool when `offset` strides by `n`.
    pub fn noun_slice(&self, offset: usize, n: usize) -> Vec<String> {
        take_wrapping(&self.nouns, offset, n)
    }

    /// Take `n` adjectives starting at `offset` (wrapping).
    pub fn adjective_slice(&self, offset: usize, n: usize) -> Vec<String> {
        take_wrapping(&self.adjectives, offset, n)
    }
}

fn take_wrapping(pool: &[String], offset: usize, n: usize) -> Vec<String> {
    assert!(!pool.is_empty(), "empty pool");
    (0..n)
        .map(|i| pool[(offset + i) % pool.len()].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_textkit::pos::{PosTag, PosTagger};
    use boe_textkit::Tokenizer;
    use std::collections::HashSet;

    #[test]
    fn pools_are_large_and_unique() {
        for lang in Language::ALL {
            let p = LexiconPools::generate(lang);
            assert!(p.nouns.len() >= 700, "{lang}: {}", p.nouns.len());
            assert!(p.adjectives.len() >= 280, "{lang}");
            let set: HashSet<_> = p.nouns.iter().collect();
            assert_eq!(set.len(), p.nouns.len(), "{lang}: duplicate nouns");
        }
    }

    #[test]
    fn generated_nouns_tag_as_nouns() {
        for lang in Language::ALL {
            let p = LexiconPools::generate(lang);
            let tagger = PosTagger::new(lang);
            let tk = Tokenizer::new(lang);
            for w in p.nouns.iter().step_by(97) {
                let toks = tk.tokenize(w);
                assert_eq!(toks.len(), 1, "{lang}: {w} split");
                let tags = tagger.tag(&toks);
                assert_eq!(tags[0], PosTag::Noun, "{lang}: {w} tagged {:?}", tags[0]);
            }
        }
    }

    #[test]
    fn generated_adjectives_tag_as_adjectives() {
        for lang in Language::ALL {
            let p = LexiconPools::generate(lang);
            let tagger = PosTagger::new(lang);
            let tk = Tokenizer::new(lang);
            for w in p.adjectives.iter().step_by(41) {
                let toks = tk.tokenize(w);
                let tags = tagger.tag(&toks);
                assert_eq!(
                    tags[0],
                    PosTag::Adjective,
                    "{lang}: {w} tagged {:?}",
                    tags[0]
                );
            }
        }
    }

    #[test]
    fn verbs_are_in_closed_lexicon() {
        for lang in Language::ALL {
            let p = LexiconPools::generate(lang);
            let tagger = PosTagger::new(lang);
            let tk = Tokenizer::new(lang);
            for v in &p.verbs {
                let toks = tk.tokenize(v);
                let tags = tagger.tag(&toks);
                assert_eq!(tags[0], PosTag::Verb, "{lang}: {v} tagged {:?}", tags[0]);
            }
        }
    }

    #[test]
    fn noun_slices_stride_disjointly() {
        let p = LexiconPools::generate(Language::English);
        let a = p.noun_slice(0, 10);
        let b = p.noun_slice(10, 10);
        let sa: HashSet<_> = a.iter().collect();
        assert!(b.iter().all(|w| !sa.contains(w)));
    }

    #[test]
    fn noun_slice_wraps() {
        let p = LexiconPools::generate(Language::English);
        let n = p.nouns.len();
        let s = p.noun_slice(n - 2, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[2], p.nouns[0]);
    }
}
