//! PubMed-like abstract collections.
//!
//! Generates a [`Corpus`] of short abstracts over a set of concept
//! profiles, standing in for the PubMed retrievals the paper feeds BIOTEX
//! and the semantic-linkage step.

use crate::corpus::{Corpus, CorpusBuilder};
use crate::synth::topic::{AbstractGenerator, ConceptProfile};
use boe_rng::StdRng;
use boe_textkit::Language;

/// Configuration for [`PubMedGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct PubMedConfig {
    /// Number of abstracts.
    pub n_abstracts: usize,
    /// Sentences per abstract (inclusive range).
    pub sentences: (usize, usize),
    /// Concepts mixed per abstract (inclusive range).
    pub concepts_per_abstract: (usize, usize),
    /// Probability a sentence embeds its concept's term.
    pub mention_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PubMedConfig {
    fn default() -> Self {
        PubMedConfig {
            n_abstracts: 200,
            sentences: (3, 8),
            concepts_per_abstract: (1, 3),
            mention_prob: 0.35,
            seed: 0x000B_100E,
        }
    }
}

/// Generator of PubMed-like corpora.
#[derive(Debug)]
pub struct PubMedGenerator {
    gen: AbstractGenerator,
    config: PubMedConfig,
}

impl PubMedGenerator {
    /// A generator for `lang` with `config`.
    pub fn new(lang: Language, config: PubMedConfig) -> Self {
        PubMedGenerator {
            gen: AbstractGenerator::new(lang),
            config,
        }
    }

    /// Generate the corpus. Every abstract mixes a random subset of
    /// `profiles`.
    pub fn generate(&self, profiles: &[ConceptProfile]) -> Corpus {
        assert!(
            !profiles.is_empty(),
            "at least one concept profile required"
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut builder = CorpusBuilder::new(self.gen.language());
        for _ in 0..self.config.n_abstracts {
            let k = rng
                .gen_range(
                    self.config.concepts_per_abstract.0..=self.config.concepts_per_abstract.1,
                )
                .min(profiles.len());
            // Sample k distinct profiles.
            let mut chosen: Vec<&ConceptProfile> = Vec::with_capacity(k);
            while chosen.len() < k {
                let p = &profiles[rng.gen_range(0..profiles.len())];
                if !chosen.iter().any(|c| c.concept == p.concept) {
                    chosen.push(p);
                }
            }
            let n_sents = rng.gen_range(self.config.sentences.0..=self.config.sentences.1);
            let sents = self
                .gen
                .abstract_for(&mut rng, &chosen, n_sents, self.config.mention_prob);
            builder.add_tokenized(sents.into_iter().collect::<Vec<_>>());
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::topic::mention_tokens;
    use crate::synth::vocabgen::LexiconPools;

    fn profiles(lang: Language, n: usize) -> Vec<ConceptProfile> {
        let pools = LexiconPools::generate(lang);
        (0..n)
            .map(|i| {
                let adj = pools.adjectives[(i * 7) % pools.adjectives.len()].clone();
                let noun = pools.nouns[(i * 13 + 300) % pools.nouns.len()].clone();
                ConceptProfile::with_exclusive_pools(
                    i,
                    i,
                    mention_tokens(lang, &adj, &noun),
                    &pools,
                    12,
                    6,
                )
            })
            .collect()
    }

    #[test]
    fn generates_requested_number_of_abstracts() {
        let ps = profiles(Language::English, 5);
        let cfg = PubMedConfig {
            n_abstracts: 37,
            ..Default::default()
        };
        let corpus = PubMedGenerator::new(Language::English, cfg).generate(&ps);
        assert_eq!(corpus.len(), 37);
        assert!(corpus.token_count() > 37 * 3 * 5);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let ps = profiles(Language::English, 3);
        let cfg = PubMedConfig {
            n_abstracts: 10,
            seed: 99,
            ..Default::default()
        };
        let c1 = PubMedGenerator::new(Language::English, cfg).generate(&ps);
        let c2 = PubMedGenerator::new(Language::English, cfg).generate(&ps);
        assert_eq!(c1.token_count(), c2.token_count());
        assert_eq!(c1.vocab().len(), c2.vocab().len());
    }

    #[test]
    fn different_seeds_differ() {
        let ps = profiles(Language::English, 3);
        let base = PubMedConfig {
            n_abstracts: 10,
            ..Default::default()
        };
        let c1 = PubMedGenerator::new(Language::English, base).generate(&ps);
        let c2 = PubMedGenerator::new(
            Language::English,
            PubMedConfig {
                seed: base.seed + 1,
                ..base
            },
        )
        .generate(&ps);
        assert_ne!(c1.token_count(), c2.token_count());
    }

    #[test]
    fn mentions_occur_in_corpus() {
        let ps = profiles(Language::English, 4);
        let cfg = PubMedConfig {
            n_abstracts: 100,
            mention_prob: 0.5,
            ..Default::default()
        };
        let corpus = PubMedGenerator::new(Language::English, cfg).generate(&ps);
        // At least one profile's mention must be findable as a phrase.
        let surface: String = ps[0]
            .mention
            .iter()
            .map(|(w, _)| w.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let ids = corpus.phrase_ids(&surface).expect("mention words interned");
        let occs = crate::context::find_occurrences_naive(&corpus, &ids);
        assert!(!occs.is_empty(), "no occurrence of {surface:?}");
    }

    #[test]
    fn works_for_all_languages() {
        for lang in Language::ALL {
            let ps = profiles(lang, 2);
            let cfg = PubMedConfig {
                n_abstracts: 5,
                ..Default::default()
            };
            let corpus = PubMedGenerator::new(lang, cfg).generate(&ps);
            assert_eq!(corpus.language(), lang);
            assert_eq!(corpus.len(), 5);
        }
    }
}
