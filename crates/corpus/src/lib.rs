//! # boe-corpus
//!
//! Corpus and information-retrieval substrate for the ontology-enrichment
//! workflow:
//!
//! * [`doc`] / [`corpus`] — tokenized, POS-tagged document collections over
//!   an interned vocabulary;
//! * [`index`] — inverted index with positional postings;
//! * [`occurrence`] — index-backed phrase-occurrence resolution shared
//!   by Steps I–IV (rarest-token postings walk, batch context
//!   harvesting), bit-identical to the naive scans it replaces;
//! * [`stats`] — frequency and windowed co-occurrence statistics;
//! * [`vector`] — sparse vectors and the cosine kernel every downstream
//!   step (clustering, linkage) runs on;
//! * [`weighting`] — TF-IDF and Okapi BM25;
//! * [`context`] — harvesting context windows around term occurrences;
//! * [`synth`] — the synthetic-data generators that stand in for PubMed
//!   and MSH-WSD (see DESIGN.md §2 for the substitution argument).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod corpus;
pub mod doc;
pub mod index;
pub mod occurrence;
pub mod stats;
pub mod synth;
pub mod vector;
pub mod weighting;

pub use corpus::{Corpus, CorpusBuilder, CorpusHygiene};
pub use doc::{DocId, Document, Sentence};
pub use occurrence::{OccurrenceIndex, OccurrenceResolution};
pub use vector::SparseVector;
