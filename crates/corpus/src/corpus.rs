//! The corpus container and its builder.

use crate::doc::{DocId, Document, Sentence};
use boe_textkit::pos::{PosTag, PosTagger};
use boe_textkit::sentence::split_sentences;
use boe_textkit::stopwords::StopwordSet;
use boe_textkit::{Language, Token, TokenId, Tokenizer, Vocabulary};

/// A tokenized, tagged, interned document collection for one language.
#[derive(Debug, Clone)]
pub struct Corpus {
    lang: Language,
    vocab: Vocabulary,
    docs: Vec<Document>,
    /// `stop[id] == true` iff the token is a stopword (parallel to vocab).
    stop: Vec<bool>,
}

impl Corpus {
    /// The corpus language.
    pub fn language(&self) -> Language {
        self.lang
    }

    /// The interned vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The documents.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus contains no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total token count.
    pub fn token_count(&self) -> usize {
        self.docs.iter().map(Document::token_count).sum()
    }

    /// Get a document by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Is `id` a stopword in this corpus's language?
    pub fn is_stopword(&self, id: TokenId) -> bool {
        self.stop.get(id.index()).copied().unwrap_or(false)
    }

    /// Resolve a token id back to its surface form.
    pub fn text(&self, id: TokenId) -> &str {
        self.vocab.text(id)
    }

    /// Intern a phrase ("corneal injuries") into the token-id sequence it
    /// would have in this corpus, or `None` if any word is unknown.
    pub fn phrase_ids(&self, phrase: &str) -> Option<Vec<TokenId>> {
        phrase
            .split_whitespace()
            .map(|w| self.vocab.get(&w.to_lowercase()))
            .collect()
    }

    /// Ingestion hygiene counters: documents with no tokens at all and
    /// zero-length sentences that survived ingestion. The builder repairs
    /// what it can at load time ([`CorpusBuilder::add_text`] and
    /// [`CorpusBuilder::add_tokenized`] both drop empty sentences), so
    /// nonzero counters here mean a document was empty to begin with —
    /// usable but worth a validation warning.
    pub fn hygiene(&self) -> CorpusHygiene {
        let mut h = CorpusHygiene::default();
        for d in &self.docs {
            if d.token_count() == 0 {
                h.empty_docs += 1;
            }
            h.empty_sentences += d.sentences.iter().filter(|s| s.is_empty()).count();
        }
        h
    }
}

/// What [`Corpus::hygiene`] found: counts of degenerate-but-tolerated
/// ingestion artefacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusHygiene {
    /// Documents containing no tokens.
    pub empty_docs: usize,
    /// Sentences containing no tokens (should be repaired at load time).
    pub empty_sentences: usize,
}

impl CorpusHygiene {
    /// Whether anything suspicious was found.
    pub fn is_clean(&self) -> bool {
        self.empty_docs == 0 && self.empty_sentences == 0
    }
}

/// Incremental corpus builder: feed raw texts, get a [`Corpus`].
#[derive(Debug)]
pub struct CorpusBuilder {
    lang: Language,
    tokenizer: Tokenizer,
    tagger: PosTagger,
    stopwords: StopwordSet,
    vocab: Vocabulary,
    docs: Vec<Document>,
    stop: Vec<bool>,
}

impl CorpusBuilder {
    /// A builder for `lang`.
    pub fn new(lang: Language) -> Self {
        CorpusBuilder {
            lang,
            tokenizer: Tokenizer::new(lang),
            tagger: PosTagger::new(lang),
            stopwords: StopwordSet::for_language(lang),
            vocab: Vocabulary::new(),
            docs: Vec::new(),
            stop: Vec::new(),
        }
    }

    /// Tokenize, tag and intern one raw text as a new document. Returns its
    /// id.
    pub fn add_text(&mut self, text: &str) -> DocId {
        let tagged = tokenize_doc(&self.tokenizer, &self.tagger, text);
        self.intern_doc(tagged)
    }

    /// Batch ingestion: tokenize + POS-tag every text **in parallel**
    /// (`boe_par::par_map` over documents), then intern the un-interned
    /// sentence buffers into the shared [`Vocabulary`] in a serial
    /// in-document-order pass. The serial intern pass assigns exactly the
    /// `TokenId`s a serial [`add_text`](Self::add_text) loop would — first
    /// occurrence in reading order wins — so the built corpus is
    /// bit-identical at any thread count (equality-tested in
    /// `tests/step1_parallel_equality.rs`).
    pub fn add_texts<S: AsRef<str> + Sync>(&mut self, texts: &[S]) -> Vec<DocId> {
        let (ids, interrupted) = self.try_add_texts(texts, &|| false);
        debug_assert!(!interrupted, "never-stop predicate cannot interrupt");
        ids
    }

    /// [`add_texts`](Self::add_texts) with cooperative cancellation:
    /// `should_stop` is polled before each document in both phases (the
    /// parallel tokenize/tag fan-out and the serial intern pass). When it
    /// first returns `true`, only the deterministic completed prefix of
    /// documents is added and the second tuple field is `true`. The
    /// predicate must be monotonic (once `true`, stay `true`).
    pub fn try_add_texts<S, F>(&mut self, texts: &[S], should_stop: &F) -> (Vec<DocId>, bool)
    where
        S: AsRef<str> + Sync,
        F: Fn() -> bool + Sync,
    {
        // Phase 1 (parallel, no shared state): raw text → tagged token
        // buffers. Tokenizer and tagger are reentrant (`&self`, Sync).
        let (tokenizer, tagger) = (&self.tokenizer, &self.tagger);
        let outcome = boe_par::try_par_map(texts, should_stop, |t| {
            tokenize_doc(tokenizer, tagger, t.as_ref())
        });
        let interrupted = outcome.is_interrupted();
        let tagged_docs = outcome.into_results();
        // Phase 2 (serial, in order): intern into the shared vocabulary.
        // Token ids depend only on first-seen order, which this pass
        // replays exactly as the serial ingestion loop would.
        let mut ids = Vec::with_capacity(tagged_docs.len());
        let mut stopped_at = None;
        for (i, tagged) in tagged_docs.into_iter().enumerate() {
            if should_stop() {
                stopped_at = Some(i);
                break;
            }
            ids.push(self.intern_doc(tagged));
        }
        (ids, interrupted || stopped_at.is_some())
    }

    /// Serial intern pass shared by [`add_text`](Self::add_text) and
    /// [`add_texts`](Self::add_texts): push one document of tagged
    /// sentence buffers, interning tokens in reading order.
    fn intern_doc(&mut self, tagged: Vec<(Vec<Token>, Vec<PosTag>)>) -> DocId {
        let id = DocId(u32::try_from(self.docs.len()).expect("more than u32::MAX documents"));
        let sentences = tagged
            .into_iter()
            .map(|(toks, tags)| {
                let ids: Vec<TokenId> = toks
                    .iter()
                    .map(|t| {
                        let id = self.vocab.intern(&t.text);
                        if id.index() == self.stop.len() {
                            self.stop.push(self.stopwords.contains(&t.text));
                        }
                        id
                    })
                    .collect();
                Sentence::new(ids, tags)
            })
            .collect();
        self.docs.push(Document { id, sentences });
        id
    }

    /// Add a pre-tokenized sentence list as one document (used by the
    /// synthetic generators, which emit tokens directly). Zero-length
    /// sentences are repaired away at load time, matching
    /// [`add_text`](Self::add_text)'s behaviour for raw text.
    pub fn add_tokenized(&mut self, sentences: Vec<(Vec<String>, Vec<PosTag>)>) -> DocId {
        let id = DocId(u32::try_from(self.docs.len()).expect("more than u32::MAX documents"));
        let sents = sentences
            .into_iter()
            .filter(|(words, _)| !words.is_empty())
            .map(|(words, tags)| {
                let ids: Vec<TokenId> = words
                    .iter()
                    .map(|w| {
                        let tid = self.vocab.intern(w);
                        if tid.index() == self.stop.len() {
                            self.stop.push(self.stopwords.contains(w.as_str()));
                        }
                        tid
                    })
                    .collect();
                Sentence::new(ids, tags)
            })
            .collect();
        self.docs.push(Document {
            id,
            sentences: sents,
        });
        id
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether no documents were added yet.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Finish building.
    pub fn build(self) -> Corpus {
        Corpus {
            lang: self.lang,
            vocab: self.vocab,
            docs: self.docs,
            stop: self.stop,
        }
    }
}

/// The pure per-document half of ingestion: sentence-split, tokenize and
/// POS-tag one raw text, dropping empty sentences. Free of builder state
/// so the batch path can run it on worker threads.
fn tokenize_doc(
    tokenizer: &Tokenizer,
    tagger: &PosTagger,
    text: &str,
) -> Vec<(Vec<Token>, Vec<PosTag>)> {
    let mut out = Vec::new();
    for raw_sentence in split_sentences(text) {
        let toks = tokenizer.tokenize(raw_sentence);
        if toks.is_empty() {
            continue;
        }
        let tags = tagger.tag(&toks);
        out.push((toks, tags));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("Corneal injuries are severe. The cornea heals slowly.");
        b.add_text("Eye injuries include corneal injuries.");
        b.build()
    }

    #[test]
    fn builds_documents_and_sentences() {
        let c = small_corpus();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.doc(DocId(0)).sentences.len(), 2);
        assert_eq!(c.doc(DocId(1)).sentences.len(), 1);
    }

    #[test]
    fn vocabulary_is_shared_across_documents() {
        let c = small_corpus();
        let id = c.vocab().get("corneal").expect("interned");
        // "corneal" occurs in both docs under the same id.
        let occurs_in = |d: &Document| d.iter_tokens().any(|(_, _, t, _)| t == id);
        assert!(occurs_in(c.doc(DocId(0))));
        assert!(occurs_in(c.doc(DocId(1))));
    }

    #[test]
    fn stopword_flags() {
        let c = small_corpus();
        let the = c.vocab().get("the").expect("interned");
        let cornea = c.vocab().get("cornea").expect("interned");
        assert!(c.is_stopword(the));
        assert!(!c.is_stopword(cornea));
    }

    #[test]
    fn phrase_ids_round_trip() {
        let c = small_corpus();
        let ids = c.phrase_ids("corneal injuries").expect("known words");
        assert_eq!(ids.len(), 2);
        assert_eq!(c.text(ids[0]), "corneal");
        assert!(c.phrase_ids("unknown gibberish").is_none());
    }

    #[test]
    fn token_count() {
        let c = small_corpus();
        assert_eq!(
            c.token_count(),
            c.docs().iter().map(Document::token_count).sum::<usize>()
        );
        assert!(c.token_count() > 10);
    }

    #[test]
    fn add_tokenized_interns_and_flags() {
        let mut b = CorpusBuilder::new(Language::English);
        let id = b.add_tokenized(vec![(
            vec!["the".into(), "cornea".into()],
            vec![PosTag::Determiner, PosTag::Noun],
        )]);
        let c = b.build();
        assert_eq!(id, DocId(0));
        let the = c.vocab().get("the").expect("interned");
        assert!(c.is_stopword(the));
    }

    #[test]
    fn add_tokenized_repairs_empty_sentences() {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_tokenized(vec![
            (Vec::new(), Vec::new()),
            (vec!["cornea".into()], vec![PosTag::Noun]),
            (Vec::new(), Vec::new()),
        ]);
        let c = b.build();
        assert_eq!(
            c.doc(DocId(0)).sentences.len(),
            1,
            "empty sentences dropped"
        );
        assert!(c.hygiene().is_clean());
    }

    #[test]
    fn add_texts_matches_serial_ingestion() {
        let texts = [
            "Corneal injuries are severe. The cornea heals slowly.",
            "Eye injuries include corneal injuries.",
            "",
            "Amniotic membrane grafts support the epithelium.",
        ];
        let mut serial = CorpusBuilder::new(Language::English);
        for t in &texts {
            serial.add_text(t);
        }
        let serial = serial.build();
        for threads in [1usize, 8] {
            boe_par::set_threads(Some(threads));
            let mut batch = CorpusBuilder::new(Language::English);
            let ids = batch.add_texts(&texts);
            let batch = batch.build();
            boe_par::set_threads(None);
            assert_eq!(ids.len(), texts.len());
            assert_eq!(batch.len(), serial.len());
            assert_eq!(batch.vocab().len(), serial.vocab().len());
            for (a, b) in batch.vocab().iter().zip(serial.vocab().iter()) {
                assert_eq!(a, b, "vocab diverges at {threads} thread(s)");
            }
            for (da, db) in batch.docs().iter().zip(serial.docs().iter()) {
                assert_eq!(da.sentences, db.sentences);
            }
            assert_eq!(batch.stop, serial.stop);
        }
    }

    #[test]
    fn try_add_texts_keeps_deterministic_prefix() {
        let texts = ["one cornea.", "two corneas.", "three corneas."];
        let mut b = CorpusBuilder::new(Language::English);
        let (ids, interrupted) = b.try_add_texts(&texts, &|| true);
        assert!(interrupted);
        assert!(ids.is_empty());
        assert!(b.is_empty());
        let (ids, interrupted) = b.try_add_texts(&texts, &|| false);
        assert!(!interrupted);
        assert_eq!(ids.len(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn hygiene_flags_empty_documents() {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("the cornea heals.");
        b.add_text("");
        b.add_tokenized(Vec::new());
        let c = b.build();
        let h = c.hygiene();
        assert_eq!(h.empty_docs, 2);
        assert_eq!(h.empty_sentences, 0);
        assert!(!h.is_clean());
        assert!(small_corpus().hygiene().is_clean());
    }
}
