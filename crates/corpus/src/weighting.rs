//! Term weighting: TF-IDF variants and Okapi BM25.
//!
//! These are the IR measures the BIOTEX term-extraction step combines
//! (F-TFIDF-C fuses TF-IDF with C-value; F-OCapi fuses Okapi with
//! C-value; LIDF-value uses IDF).

use crate::doc::DocId;
use crate::index::InvertedIndex;
use boe_textkit::TokenId;

/// Smoothed inverse document frequency: `ln((N + 1) / (df + 1)) + 1`.
pub fn idf(index: &InvertedIndex, token: TokenId) -> f64 {
    let n = index.doc_count() as f64;
    let df = index.doc_freq(token) as f64;
    ((n + 1.0) / (df + 1.0)).ln() + 1.0
}

/// Raw TF-IDF of `token` in `doc` (log-scaled tf).
pub fn tf_idf(index: &InvertedIndex, token: TokenId, doc: DocId) -> f64 {
    let tf = f64::from(index.tf_in_doc(token, doc));
    if tf == 0.0 {
        return 0.0;
    }
    (1.0 + tf.ln()) * idf(index, token)
}

/// Corpus-level TF-IDF of a token: max over documents, the variant BIOTEX
/// uses to produce a single per-term score.
pub fn max_tf_idf(index: &InvertedIndex, token: TokenId) -> f64 {
    index
        .postings(token)
        .iter()
        .map(|p| {
            let tf = p.positions.len() as f64;
            (1.0 + tf.ln()) * idf(index, token)
        })
        .fold(0.0, f64::max)
}

/// BM25 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`), usually 1.2–2.0.
    pub k1: f64,
    /// Length normalization (`b`), usually 0.75.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Okapi BM25 score of `token` in `doc`.
pub fn bm25(index: &InvertedIndex, token: TokenId, doc: DocId, params: Bm25Params) -> f64 {
    let tf = f64::from(index.tf_in_doc(token, doc));
    if tf == 0.0 {
        return 0.0;
    }
    let n = index.doc_count() as f64;
    let df = index.doc_freq(token) as f64;
    // Okapi IDF with +1 smoothing so common tokens never go negative.
    let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
    let dl = f64::from(index.doc_len(doc));
    let avg = index.avg_doc_len().max(1e-9);
    let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avg);
    idf * tf * (params.k1 + 1.0) / denom
}

/// Corpus-level Okapi score of a token: max over documents (the BIOTEX
/// convention, mirroring [`max_tf_idf`]).
pub fn max_bm25(index: &InvertedIndex, token: TokenId, params: Bm25Params) -> f64 {
    index
        .postings(token)
        .iter()
        .map(|p| bm25(index, token, p.doc, params))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn setup() -> (crate::Corpus, InvertedIndex) {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("cornea cornea cornea injury");
        b.add_text("injury repair");
        b.add_text("repair repair process");
        let c = b.build();
        let ix = InvertedIndex::build(&c);
        (c, ix)
    }

    #[test]
    fn idf_decreases_with_df() {
        let (c, ix) = setup();
        let cornea = c.vocab().get("cornea").expect("id"); // df 1
        let injury = c.vocab().get("injury").expect("id"); // df 2
        assert!(idf(&ix, cornea) > idf(&ix, injury));
    }

    #[test]
    fn tf_idf_zero_when_absent() {
        let (c, ix) = setup();
        let cornea = c.vocab().get("cornea").expect("id");
        assert_eq!(tf_idf(&ix, cornea, DocId(1)), 0.0);
        assert!(tf_idf(&ix, cornea, DocId(0)) > 0.0);
    }

    #[test]
    fn max_tf_idf_matches_best_doc() {
        let (c, ix) = setup();
        let repair = c.vocab().get("repair").expect("id");
        let best = tf_idf(&ix, repair, DocId(2));
        assert!((max_tf_idf(&ix, repair) - best).abs() < 1e-12);
    }

    #[test]
    fn bm25_is_positive_and_saturating() {
        // Both tokens have df = 1 so the score ratio isolates the tf
        // saturation: tf = 3 must score more than tf = 1 but less than 3x.
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("cornea cornea cornea stroma");
        b.add_text("filler filler filler filler");
        let c = b.build();
        let ix = InvertedIndex::build(&c);
        let cornea = c.vocab().get("cornea").expect("id");
        let stroma = c.vocab().get("stroma").expect("id");
        let p = Bm25Params::default();
        let s3 = bm25(&ix, cornea, DocId(0), p);
        let s1 = bm25(&ix, stroma, DocId(0), p);
        assert!(s3 > 0.0 && s1 > 0.0);
        assert!(s3 > s1);
        assert!(s3 < 3.0 * s1, "not saturating: {s3} vs {s1}");
    }

    #[test]
    fn bm25_zero_when_absent() {
        let (c, ix) = setup();
        let cornea = c.vocab().get("cornea").expect("id");
        assert_eq!(bm25(&ix, cornea, DocId(2), Bm25Params::default()), 0.0);
    }

    #[test]
    fn max_bm25_nonnegative_for_ubiquitous_terms() {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("common word");
        b.add_text("common word");
        let c = b.build();
        let ix = InvertedIndex::build(&c);
        let common = c.vocab().get("common").expect("id");
        assert!(max_bm25(&ix, common, Bm25Params::default()) >= 0.0);
    }
}
