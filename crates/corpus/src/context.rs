//! Context harvesting around term occurrences.
//!
//! Steps III (sense induction) and IV (semantic linkage) both operate on
//! *contexts*: the non-stopword lexical tokens found in a window around
//! each occurrence of a target term. This module finds occurrences of
//! multi-word phrases and turns their surroundings into sparse vectors,
//! optionally in a stem-conflated dimension space.

use crate::corpus::Corpus;
use crate::doc::DocId;
use crate::vector::SparseVector;
use boe_textkit::stem;
use boe_textkit::{TokenId, Vocabulary};

/// One occurrence of a phrase in a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// Containing document.
    pub doc: DocId,
    /// Sentence index within the document.
    pub sentence: usize,
    /// Start token position within the sentence.
    pub start: usize,
}

/// Maps every corpus token id to a stem id in a separate stem vocabulary,
/// so context vectors can conflate inflectional variants.
#[derive(Debug, Clone)]
pub struct StemMap {
    map: Vec<u32>,
    stems: Vocabulary,
}

impl StemMap {
    /// Build the stem map for `corpus` (one stemmer pass over the vocab).
    pub fn build(corpus: &Corpus) -> Self {
        let lang = corpus.language();
        let mut stems = Vocabulary::new();
        let mut map = Vec::with_capacity(corpus.vocab().len());
        for (_, text) in corpus.vocab().iter() {
            let stemmed = stem::stem(lang, text);
            map.push(stems.intern(&stemmed).0);
        }
        StemMap { map, stems }
    }

    /// Stem dimension for a corpus token id. Token ids from a different
    /// corpus than the map was built for fall back to the raw token
    /// dimension (same vector-space shape, no conflation) instead of
    /// panicking.
    pub fn stem_dim(&self, t: TokenId) -> u32 {
        debug_assert!(t.index() < self.map.len(), "token id from another corpus");
        self.map.get(t.index()).copied().unwrap_or(t.0)
    }

    /// The stem vocabulary (dimension ↔ stem string).
    pub fn stems(&self) -> &Vocabulary {
        &self.stems
    }
}

/// Find all occurrences of `phrase` (exact adjacent token-id sequence)
/// by scanning every sentence of the corpus.
///
/// This is the O(corpus tokens) reference implementation; hot paths
/// resolve occurrences through
/// [`crate::occurrence::OccurrenceIndex::find_occurrences`], which walks
/// only the postings of the phrase's rarest token and is verified
/// bit-identical to this scan (same occurrences, same order).
pub fn find_occurrences_naive(corpus: &Corpus, phrase: &[TokenId]) -> Vec<Occurrence> {
    let mut out = Vec::new();
    if phrase.is_empty() {
        return out;
    }
    for doc in corpus.docs() {
        for (si, s) in doc.sentences.iter().enumerate() {
            if s.tokens.len() < phrase.len() {
                continue;
            }
            for start in 0..=(s.tokens.len() - phrase.len()) {
                if s.tokens[start..start + phrase.len()] == *phrase {
                    out.push(Occurrence {
                        doc: doc.id,
                        sentence: si,
                        start,
                    });
                }
            }
        }
    }
    out
}

/// How far a context reaches around an occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextScope {
    /// The occurrence's sentence (optionally narrowed by a window).
    #[default]
    Sentence,
    /// The occurrence's whole document — MSH-WSD style, where each
    /// citation is one context.
    Document,
}

/// Options for context-vector construction.
#[derive(Debug, Clone, Copy)]
pub struct ContextOptions {
    /// Window half-width in tokens on each side of the occurrence;
    /// `None` means the whole sentence. Ignored under
    /// [`ContextScope::Document`].
    pub window: Option<usize>,
    /// Conflate dimensions through a stem map.
    pub stemmed: bool,
    /// Context reach.
    pub scope: ContextScope,
}

impl Default for ContextOptions {
    fn default() -> Self {
        ContextOptions {
            window: None,
            stemmed: true,
            scope: ContextScope::Sentence,
        }
    }
}

/// Build the context vector of one occurrence. The phrase's own tokens are
/// excluded; stopwords and non-lexical tokens are skipped.
pub fn context_vector(
    corpus: &Corpus,
    occ: Occurrence,
    phrase_len: usize,
    opts: ContextOptions,
    stems: Option<&StemMap>,
) -> SparseVector {
    let doc = corpus.doc(occ.doc);
    // Occurrences come from `find_occurrences_naive` on the same corpus, so
    // the sentence index is in range by construction.
    debug_assert!(occ.sentence < doc.sentences.len());
    let mut pairs = Vec::new();
    let mut collect = |sentence_idx: usize, lo: usize, hi: usize| {
        let s = &doc.sentences[sentence_idx];
        for i in lo..hi.min(s.tokens.len()) {
            if sentence_idx == occ.sentence && i >= occ.start && i < occ.start + phrase_len {
                continue; // the term itself
            }
            let t = s.tokens[i];
            if corpus.is_stopword(t) || !s.tags[i].is_term_internal() {
                continue;
            }
            let dim = match (opts.stemmed, stems) {
                (true, Some(sm)) => sm.stem_dim(t),
                _ => t.0,
            };
            pairs.push((dim, 1.0));
        }
    };
    match opts.scope {
        ContextScope::Sentence => {
            let n = doc.sentences[occ.sentence].tokens.len();
            let (lo, hi) = match opts.window {
                Some(w) => (
                    occ.start.saturating_sub(w),
                    (occ.start + phrase_len + w).min(n),
                ),
                None => (0, n),
            };
            collect(occ.sentence, lo, hi);
        }
        ContextScope::Document => {
            for si in 0..doc.sentences.len() {
                collect(si, 0, usize::MAX);
            }
        }
    }
    SparseVector::from_pairs(pairs)
}

/// Precomputed per-document context bases for
/// [`ContextScope::Document`] harvesting.
///
/// At document scope every occurrence's context is the whole document
/// minus the phrase's own tokens, so building it from scratch repeats
/// the stopword/tag filtering and stem lookups of the entire document
/// per occurrence. This cache does that work once per document; each
/// occurrence context is then the cached base minus the dimensions at
/// the occupied positions. Context values are exact integer counts, so
/// the subtraction reproduces [`context_vector`]'s output bit for bit.
#[derive(Debug)]
pub struct DocContextCache {
    /// Per doc: the full filtered context vector.
    base: Vec<SparseVector>,
    /// Per doc, per sentence: the dimension each position contributes
    /// (`None` for stopwords and non-lexical tokens).
    dims: Vec<Vec<Vec<Option<u32>>>>,
}

impl DocContextCache {
    /// Precompute the base vector and position-dimension map of every
    /// document under `opts`/`stems` (the window option is ignored, as
    /// it is at document scope generally).
    pub fn build(corpus: &Corpus, opts: ContextOptions, stems: Option<&StemMap>) -> Self {
        let mut base = Vec::with_capacity(corpus.len());
        let mut dims = Vec::with_capacity(corpus.len());
        for doc in corpus.docs() {
            let mut doc_dims: Vec<Vec<Option<u32>>> = Vec::with_capacity(doc.sentences.len());
            let mut pairs = Vec::new();
            for s in &doc.sentences {
                let mut sent_dims = Vec::with_capacity(s.tokens.len());
                for (i, &t) in s.tokens.iter().enumerate() {
                    if corpus.is_stopword(t) || !s.tags[i].is_term_internal() {
                        sent_dims.push(None);
                        continue;
                    }
                    let dim = match (opts.stemmed, stems) {
                        (true, Some(sm)) => sm.stem_dim(t),
                        _ => t.0,
                    };
                    sent_dims.push(Some(dim));
                    pairs.push((dim, 1.0));
                }
                doc_dims.push(sent_dims);
            }
            base.push(SparseVector::from_pairs(pairs));
            dims.push(doc_dims);
        }
        DocContextCache { base, dims }
    }

    /// The document-scope context vector of one occurrence —
    /// bit-identical to [`context_vector`] with
    /// [`ContextScope::Document`].
    pub fn context_vector(&self, occ: Occurrence, phrase_len: usize) -> SparseVector {
        let doc = occ.doc.0 as usize;
        let mut removed: Vec<u32> = self.removed_dims(occ, phrase_len).collect();
        if removed.is_empty() {
            return self.base[doc].clone();
        }
        removed.sort_unstable();
        self.base[doc].minus_counts(&removed)
    }

    /// The cached base vector of a document.
    pub fn base(&self, doc: crate::doc::DocId) -> &SparseVector {
        &self.base[doc.0 as usize]
    }

    /// The dimensions an occurrence's own tokens contribute to its
    /// document base (filtered positions yield nothing).
    pub fn removed_dims(
        &self,
        occ: Occurrence,
        phrase_len: usize,
    ) -> impl Iterator<Item = u32> + '_ {
        let sent = &self.dims[occ.doc.0 as usize][occ.sentence];
        sent[occ.start..(occ.start + phrase_len).min(sent.len())]
            .iter()
            .flatten()
            .copied()
    }

    /// The aggregate (summed) document-scope context over `occs` (sorted
    /// by document, as occurrence resolution emits them) — bit-identical
    /// to summing [`context_vector`] per occurrence. Occurrences sharing
    /// a document contribute `k × base` in one pass; every value stays
    /// an exact integer count, so the grouped arithmetic reproduces the
    /// per-occurrence sum bit for bit.
    pub fn aggregate(&self, occs: &[Occurrence], phrase_len: usize) -> SparseVector {
        let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut i = 0;
        while i < occs.len() {
            let doc = occs[i].doc;
            let mut j = i;
            while j < occs.len() && occs[j].doc == doc {
                j += 1;
            }
            let k = (j - i) as f64;
            for (d, v) in self.base(doc).iter() {
                *acc.entry(d).or_insert(0.0) += k * v;
            }
            for &o in &occs[i..j] {
                for dim in self.removed_dims(o, phrase_len) {
                    *acc.entry(dim).or_insert(0.0) -= 1.0;
                }
            }
            i = j;
        }
        SparseVector::from_pairs(acc)
    }
}

/// All per-occurrence context vectors of `phrase`, resolved through the
/// naive full-corpus scan (reference path; see
/// [`crate::occurrence::OccurrenceIndex::contexts`] for the indexed one).
pub fn contexts(
    corpus: &Corpus,
    phrase: &[TokenId],
    opts: ContextOptions,
    stems: Option<&StemMap>,
) -> Vec<SparseVector> {
    find_occurrences_naive(corpus, phrase)
        .into_iter()
        .map(|occ| context_vector(corpus, occ, phrase.len(), opts, stems))
        .collect()
}

/// The aggregate (summed) context vector of `phrase` over the corpus —
/// what Step IV compares with cosine.
pub fn aggregate_context(
    corpus: &Corpus,
    phrase: &[TokenId],
    opts: ContextOptions,
    stems: Option<&StemMap>,
) -> SparseVector {
    SparseVector::sum_of(&contexts(corpus, phrase, opts, stems))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("Corneal injuries damage the epithelium badly.");
        b.add_text("Severe corneal injuries require amniotic membrane grafts.");
        b.add_text("The cornea is transparent.");
        b.build()
    }

    #[test]
    fn finds_all_occurrences() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let occs = find_occurrences_naive(&c, &phrase);
        assert_eq!(occs.len(), 2);
        assert_eq!(occs[0].doc, DocId(0));
        assert_eq!(occs[1].doc, DocId(1));
        assert_eq!(occs[1].start, 1);
    }

    #[test]
    fn context_excludes_phrase_and_stopwords() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let occs = find_occurrences_naive(&c, &phrase);
        let opts = ContextOptions {
            window: None,
            stemmed: false,
            scope: ContextScope::Sentence,
        };
        let v = context_vector(&c, occs[0], phrase.len(), opts, None);
        let epithelium = c.vocab().get("epithelium").expect("id");
        let the = c.vocab().get("the").expect("id");
        let corneal = c.vocab().get("corneal").expect("id");
        assert!(v.get(epithelium.0) > 0.0);
        assert_eq!(v.get(the.0), 0.0, "stopword excluded");
        assert_eq!(v.get(corneal.0), 0.0, "phrase token excluded");
    }

    #[test]
    fn window_limits_context() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let occs = find_occurrences_naive(&c, &phrase);
        let narrow = ContextOptions {
            window: Some(1),
            stemmed: false,
            scope: ContextScope::Sentence,
        };
        // Occurrence in doc 1: "Severe corneal injuries require amniotic ..."
        let v = context_vector(&c, occs[1], phrase.len(), narrow, None);
        let severe = c.vocab().get("severe").expect("id");
        let grafts = c.vocab().get("grafts").expect("id");
        assert!(v.get(severe.0) > 0.0);
        assert_eq!(v.get(grafts.0), 0.0, "outside window");
    }

    #[test]
    fn stemmed_dims_conflate_variants() {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("graft tissue heals. grafts tissue heal.");
        let c = b.build();
        let sm = StemMap::build(&c);
        let graft = c.vocab().get("graft").expect("id");
        let grafts = c.vocab().get("grafts").expect("id");
        assert_eq!(sm.stem_dim(graft), sm.stem_dim(grafts));
    }

    #[test]
    fn aggregate_sums_occurrences() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let opts = ContextOptions {
            window: None,
            stemmed: false,
            scope: ContextScope::Sentence,
        };
        let per = contexts(&c, &phrase, opts, None);
        let agg = aggregate_context(&c, &phrase, opts, None);
        let manual = SparseVector::sum_of(&per);
        assert_eq!(agg, manual);
        assert!(agg.sum() >= per[0].sum());
    }

    #[test]
    fn empty_phrase_has_no_occurrences() {
        let c = corpus();
        assert!(find_occurrences_naive(&c, &[]).is_empty());
    }

    #[test]
    fn unknown_phrase_yields_empty_contexts() {
        let c = corpus();
        // Construct an id sequence that never occurs adjacently.
        let a = c.vocab().get("cornea").expect("id");
        let b2 = c.vocab().get("grafts").expect("id");
        assert!(contexts(&c, &[a, b2], ContextOptions::default(), None).is_empty());
    }
}
