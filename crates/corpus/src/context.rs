//! Context harvesting around term occurrences.
//!
//! Steps III (sense induction) and IV (semantic linkage) both operate on
//! *contexts*: the non-stopword lexical tokens found in a window around
//! each occurrence of a target term. This module finds occurrences of
//! multi-word phrases and turns their surroundings into sparse vectors,
//! optionally in a stem-conflated dimension space.

use crate::corpus::Corpus;
use crate::doc::DocId;
use crate::vector::SparseVector;
use boe_textkit::stem;
use boe_textkit::{TokenId, Vocabulary};

/// One occurrence of a phrase in a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// Containing document.
    pub doc: DocId,
    /// Sentence index within the document.
    pub sentence: usize,
    /// Start token position within the sentence.
    pub start: usize,
}

/// Maps every corpus token id to a stem id in a separate stem vocabulary,
/// so context vectors can conflate inflectional variants.
#[derive(Debug, Clone)]
pub struct StemMap {
    map: Vec<u32>,
    stems: Vocabulary,
}

impl StemMap {
    /// Build the stem map for `corpus` (one stemmer pass over the vocab).
    pub fn build(corpus: &Corpus) -> Self {
        let lang = corpus.language();
        let mut stems = Vocabulary::new();
        let mut map = Vec::with_capacity(corpus.vocab().len());
        for (_, text) in corpus.vocab().iter() {
            let stemmed = stem::stem(lang, text);
            map.push(stems.intern(&stemmed).0);
        }
        StemMap { map, stems }
    }

    /// Stem dimension for a corpus token id. Token ids from a different
    /// corpus than the map was built for fall back to the raw token
    /// dimension (same vector-space shape, no conflation) instead of
    /// panicking.
    pub fn stem_dim(&self, t: TokenId) -> u32 {
        debug_assert!(t.index() < self.map.len(), "token id from another corpus");
        self.map.get(t.index()).copied().unwrap_or(t.0)
    }

    /// The stem vocabulary (dimension ↔ stem string).
    pub fn stems(&self) -> &Vocabulary {
        &self.stems
    }
}

/// Find all occurrences of `phrase` (exact adjacent token-id sequence).
pub fn find_occurrences(corpus: &Corpus, phrase: &[TokenId]) -> Vec<Occurrence> {
    let mut out = Vec::new();
    if phrase.is_empty() {
        return out;
    }
    for doc in corpus.docs() {
        for (si, s) in doc.sentences.iter().enumerate() {
            if s.tokens.len() < phrase.len() {
                continue;
            }
            for start in 0..=(s.tokens.len() - phrase.len()) {
                if s.tokens[start..start + phrase.len()] == *phrase {
                    out.push(Occurrence {
                        doc: doc.id,
                        sentence: si,
                        start,
                    });
                }
            }
        }
    }
    out
}

/// How far a context reaches around an occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextScope {
    /// The occurrence's sentence (optionally narrowed by a window).
    #[default]
    Sentence,
    /// The occurrence's whole document — MSH-WSD style, where each
    /// citation is one context.
    Document,
}

/// Options for context-vector construction.
#[derive(Debug, Clone, Copy)]
pub struct ContextOptions {
    /// Window half-width in tokens on each side of the occurrence;
    /// `None` means the whole sentence. Ignored under
    /// [`ContextScope::Document`].
    pub window: Option<usize>,
    /// Conflate dimensions through a stem map.
    pub stemmed: bool,
    /// Context reach.
    pub scope: ContextScope,
}

impl Default for ContextOptions {
    fn default() -> Self {
        ContextOptions {
            window: None,
            stemmed: true,
            scope: ContextScope::Sentence,
        }
    }
}

/// Build the context vector of one occurrence. The phrase's own tokens are
/// excluded; stopwords and non-lexical tokens are skipped.
pub fn context_vector(
    corpus: &Corpus,
    occ: Occurrence,
    phrase_len: usize,
    opts: ContextOptions,
    stems: Option<&StemMap>,
) -> SparseVector {
    let doc = corpus.doc(occ.doc);
    // Occurrences come from `find_occurrences` on the same corpus, so
    // the sentence index is in range by construction.
    debug_assert!(occ.sentence < doc.sentences.len());
    let mut pairs = Vec::new();
    let mut collect = |sentence_idx: usize, lo: usize, hi: usize| {
        let s = &doc.sentences[sentence_idx];
        for i in lo..hi.min(s.tokens.len()) {
            if sentence_idx == occ.sentence && i >= occ.start && i < occ.start + phrase_len {
                continue; // the term itself
            }
            let t = s.tokens[i];
            if corpus.is_stopword(t) || !s.tags[i].is_term_internal() {
                continue;
            }
            let dim = match (opts.stemmed, stems) {
                (true, Some(sm)) => sm.stem_dim(t),
                _ => t.0,
            };
            pairs.push((dim, 1.0));
        }
    };
    match opts.scope {
        ContextScope::Sentence => {
            let n = doc.sentences[occ.sentence].tokens.len();
            let (lo, hi) = match opts.window {
                Some(w) => (
                    occ.start.saturating_sub(w),
                    (occ.start + phrase_len + w).min(n),
                ),
                None => (0, n),
            };
            collect(occ.sentence, lo, hi);
        }
        ContextScope::Document => {
            for si in 0..doc.sentences.len() {
                collect(si, 0, usize::MAX);
            }
        }
    }
    SparseVector::from_pairs(pairs)
}

/// All per-occurrence context vectors of `phrase`.
pub fn contexts(
    corpus: &Corpus,
    phrase: &[TokenId],
    opts: ContextOptions,
    stems: Option<&StemMap>,
) -> Vec<SparseVector> {
    find_occurrences(corpus, phrase)
        .into_iter()
        .map(|occ| context_vector(corpus, occ, phrase.len(), opts, stems))
        .collect()
}

/// The aggregate (summed) context vector of `phrase` over the corpus —
/// what Step IV compares with cosine.
pub fn aggregate_context(
    corpus: &Corpus,
    phrase: &[TokenId],
    opts: ContextOptions,
    stems: Option<&StemMap>,
) -> SparseVector {
    SparseVector::sum_of(&contexts(corpus, phrase, opts, stems))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("Corneal injuries damage the epithelium badly.");
        b.add_text("Severe corneal injuries require amniotic membrane grafts.");
        b.add_text("The cornea is transparent.");
        b.build()
    }

    #[test]
    fn finds_all_occurrences() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let occs = find_occurrences(&c, &phrase);
        assert_eq!(occs.len(), 2);
        assert_eq!(occs[0].doc, DocId(0));
        assert_eq!(occs[1].doc, DocId(1));
        assert_eq!(occs[1].start, 1);
    }

    #[test]
    fn context_excludes_phrase_and_stopwords() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let occs = find_occurrences(&c, &phrase);
        let opts = ContextOptions {
            window: None,
            stemmed: false,
            scope: ContextScope::Sentence,
        };
        let v = context_vector(&c, occs[0], phrase.len(), opts, None);
        let epithelium = c.vocab().get("epithelium").expect("id");
        let the = c.vocab().get("the").expect("id");
        let corneal = c.vocab().get("corneal").expect("id");
        assert!(v.get(epithelium.0) > 0.0);
        assert_eq!(v.get(the.0), 0.0, "stopword excluded");
        assert_eq!(v.get(corneal.0), 0.0, "phrase token excluded");
    }

    #[test]
    fn window_limits_context() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let occs = find_occurrences(&c, &phrase);
        let narrow = ContextOptions {
            window: Some(1),
            stemmed: false,
            scope: ContextScope::Sentence,
        };
        // Occurrence in doc 1: "Severe corneal injuries require amniotic ..."
        let v = context_vector(&c, occs[1], phrase.len(), narrow, None);
        let severe = c.vocab().get("severe").expect("id");
        let grafts = c.vocab().get("grafts").expect("id");
        assert!(v.get(severe.0) > 0.0);
        assert_eq!(v.get(grafts.0), 0.0, "outside window");
    }

    #[test]
    fn stemmed_dims_conflate_variants() {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("graft tissue heals. grafts tissue heal.");
        let c = b.build();
        let sm = StemMap::build(&c);
        let graft = c.vocab().get("graft").expect("id");
        let grafts = c.vocab().get("grafts").expect("id");
        assert_eq!(sm.stem_dim(graft), sm.stem_dim(grafts));
    }

    #[test]
    fn aggregate_sums_occurrences() {
        let c = corpus();
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let opts = ContextOptions {
            window: None,
            stemmed: false,
            scope: ContextScope::Sentence,
        };
        let per = contexts(&c, &phrase, opts, None);
        let agg = aggregate_context(&c, &phrase, opts, None);
        let manual = SparseVector::sum_of(&per);
        assert_eq!(agg, manual);
        assert!(agg.sum() >= per[0].sum());
    }

    #[test]
    fn empty_phrase_has_no_occurrences() {
        let c = corpus();
        assert!(find_occurrences(&c, &[]).is_empty());
    }

    #[test]
    fn unknown_phrase_yields_empty_contexts() {
        let c = corpus();
        // Construct an id sequence that never occurs adjacently.
        let a = c.vocab().get("cornea").expect("id");
        let b2 = c.vocab().get("grafts").expect("id");
        assert!(contexts(&c, &[a, b2], ContextOptions::default(), None).is_empty());
    }
}
