//! Inverted index with positional postings.

use crate::corpus::Corpus;
use crate::doc::DocId;
use boe_textkit::TokenId;
use std::collections::HashMap;

/// One posting: a document and the flat token positions (sentence-relative
/// positions flattened document-wide) where the token occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// `(sentence index, token position within sentence)` pairs, sorted.
    pub positions: Vec<(u32, u32)>,
}

/// Inverted index over a [`Corpus`].
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: HashMap<TokenId, Vec<Posting>>,
    doc_count: usize,
    /// Total corpus frequency per token.
    term_freq: HashMap<TokenId, u64>,
    avg_doc_len: f64,
    doc_lens: Vec<u32>,
}

impl InvertedIndex {
    /// Build the index over `corpus`.
    pub fn build(corpus: &Corpus) -> Self {
        let mut postings: HashMap<TokenId, Vec<Posting>> = HashMap::new();
        let mut term_freq: HashMap<TokenId, u64> = HashMap::new();
        let mut doc_lens = Vec::with_capacity(corpus.len());
        for doc in corpus.docs() {
            let mut local: HashMap<TokenId, Vec<(u32, u32)>> = HashMap::new();
            let mut len = 0u32;
            for (si, s) in doc.sentences.iter().enumerate() {
                for (pi, &t) in s.tokens.iter().enumerate() {
                    local.entry(t).or_default().push((si as u32, pi as u32));
                    *term_freq.entry(t).or_insert(0) += 1;
                    len += 1;
                }
            }
            doc_lens.push(len);
            for (t, positions) in local {
                postings.entry(t).or_default().push(Posting {
                    doc: doc.id,
                    positions,
                });
            }
        }
        // Posting lists come out in doc order already (we iterate docs in
        // order), but sort defensively for stable downstream iteration.
        for list in postings.values_mut() {
            list.sort_by_key(|p| p.doc);
        }
        let total: u64 = doc_lens.iter().map(|&l| u64::from(l)).sum();
        let avg_doc_len = if doc_lens.is_empty() {
            0.0
        } else {
            total as f64 / doc_lens.len() as f64
        };
        InvertedIndex {
            postings,
            doc_count: corpus.len(),
            term_freq,
            avg_doc_len,
            doc_lens,
        }
    }

    /// Number of documents in the indexed corpus.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Average document length in tokens.
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_doc_len
    }

    /// Length of one document in tokens.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_lens[doc.index()]
    }

    /// Posting list for `token` (empty slice if unseen).
    pub fn postings(&self, token: TokenId) -> &[Posting] {
        self.postings.get(&token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Document frequency of `token`.
    pub fn doc_freq(&self, token: TokenId) -> usize {
        self.postings(token).len()
    }

    /// Corpus frequency (total occurrences) of `token`.
    pub fn term_freq(&self, token: TokenId) -> u64 {
        self.term_freq.get(&token).copied().unwrap_or(0)
    }

    /// The posting of `token` in `doc`, if any. Posting lists are sorted
    /// by document, so this is a binary search rather than a linear scan.
    pub fn posting_for(&self, token: TokenId, doc: DocId) -> Option<&Posting> {
        let list = self.postings(token);
        list.binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| &list[i])
    }

    /// Term frequency of `token` within one document.
    pub fn tf_in_doc(&self, token: TokenId, doc: DocId) -> u32 {
        self.posting_for(token, doc)
            .map(|p| p.positions.len() as u32)
            .unwrap_or(0)
    }

    /// Documents containing every token of `phrase` *adjacently in order*
    /// (exact phrase match), with the match count per document.
    pub fn phrase_matches(&self, phrase: &[TokenId]) -> Vec<(DocId, u32)> {
        let Some((first, rest)) = phrase.split_first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        'doc: for p in self.postings(*first) {
            // Resolve each remaining token's posting in this document
            // once, up front; a token absent from the document rules out
            // every position.
            let mut rests = Vec::with_capacity(rest.len());
            for t in rest {
                match self.posting_for(*t, p.doc) {
                    Some(q) => rests.push(q),
                    None => continue 'doc,
                }
            }
            let mut count = 0u32;
            'pos: for &(si, pi) in &p.positions {
                for (offset, q) in rests.iter().enumerate() {
                    let want = (si, pi + 1 + offset as u32);
                    if q.positions.binary_search(&want).is_err() {
                        continue 'pos;
                    }
                }
                count += 1;
            }
            if count > 0 {
                out.push((p.doc, count));
            }
        }
        out
    }

    /// Iterate all indexed tokens in id order.
    pub fn tokens(&self) -> Vec<TokenId> {
        let mut v: Vec<TokenId> = self.postings.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text("Corneal injuries heal. Corneal scarring follows corneal injuries.");
        b.add_text("Eye injuries are common.");
        b.build()
    }

    #[test]
    fn doc_and_term_freq() {
        let c = corpus();
        let ix = InvertedIndex::build(&c);
        let injuries = c.vocab().get("injuries").expect("interned");
        let corneal = c.vocab().get("corneal").expect("interned");
        assert_eq!(ix.doc_freq(injuries), 2);
        assert_eq!(ix.term_freq(corneal), 3);
        assert_eq!(ix.doc_count(), 2);
    }

    #[test]
    fn tf_in_doc() {
        let c = corpus();
        let ix = InvertedIndex::build(&c);
        let corneal = c.vocab().get("corneal").expect("interned");
        assert_eq!(ix.tf_in_doc(corneal, DocId(0)), 3);
        assert_eq!(ix.tf_in_doc(corneal, DocId(1)), 0);
    }

    #[test]
    fn phrase_matching() {
        let c = corpus();
        let ix = InvertedIndex::build(&c);
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let matches = ix.phrase_matches(&phrase);
        assert_eq!(matches, vec![(DocId(0), 2)]);
    }

    #[test]
    fn phrase_does_not_cross_sentences() {
        let mut b = CorpusBuilder::new(Language::English);
        // "corneal" ends sentence 1, "injuries" begins sentence 2 — the
        // phrase must not match across the boundary.
        b.add_text("Damage was corneal. Injuries were treated.");
        let c = b.build();
        let ix = InvertedIndex::build(&c);
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        assert!(ix.phrase_matches(&phrase).is_empty());
    }

    #[test]
    fn empty_phrase_matches_nothing() {
        let c = corpus();
        let ix = InvertedIndex::build(&c);
        assert!(ix.phrase_matches(&[]).is_empty());
    }

    #[test]
    fn avg_and_doc_lengths() {
        let c = corpus();
        let ix = InvertedIndex::build(&c);
        let total: u32 = (0..c.len() as u32).map(|i| ix.doc_len(DocId(i))).sum();
        assert_eq!(total as usize, c.token_count());
        assert!((ix.avg_doc_len() - total as f64 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn tokens_listing_is_sorted() {
        let c = corpus();
        let ix = InvertedIndex::build(&c);
        let toks = ix.tokens();
        assert!(toks.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(toks.len(), c.vocab().len());
    }
}
