//! Sparse vectors and the cosine kernel.
//!
//! Dimensions are `u32` (interned token ids or feature ids), entries are
//! kept sorted by dimension, so dot products are linear merges — this is
//! the hot kernel of Steps III and IV.

use std::collections::HashMap;

/// A sparse vector: sorted `(dimension, value)` pairs with no duplicate
/// dimensions and no explicit zeros.
///
/// The Euclidean norm is cached at construction and kept in sync by the
/// mutating operations, so [`SparseVector::cosine`] in the Step-III/IV
/// inner loops never recomputes `sqrt(Σv²)` per call.
///
/// ```
/// use boe_corpus::SparseVector;
///
/// let a = SparseVector::from_pairs([(0, 3.0), (1, 4.0)]);
/// let b = SparseVector::from_pairs([(1, 1.0)]);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a.dot(&b), 4.0);
/// assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
    /// Cached Euclidean norm of `entries` (0.0 for the empty vector).
    norm: f64,
}

/// Equality is defined by the entries alone; the cached norm is derived
/// from them deterministically.
impl PartialEq for SparseVector {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl SparseVector {
    /// The empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted `(dim, value)` pairs, summing duplicates and
    /// dropping zeros.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, f64)>) -> Self {
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for (d, v) in pairs {
            *acc.entry(d).or_insert(0.0) += v;
        }
        let mut entries: Vec<(u32, f64)> = acc.into_iter().filter(|(_, v)| *v != 0.0).collect();
        entries.sort_unstable_by_key(|(d, _)| *d);
        Self::from_sorted(entries)
    }

    /// Build from already-sorted, deduplicated, zero-free entries,
    /// computing the cached norm once.
    fn from_sorted(entries: Vec<(u32, f64)>) -> Self {
        let norm = compute_norm(&entries);
        SparseVector { entries, norm }
    }

    /// Build from integer counts.
    pub fn from_counts(counts: impl IntoIterator<Item = (u32, u32)>) -> Self {
        Self::from_pairs(counts.into_iter().map(|(d, c)| (d, f64::from(c))))
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all zeros.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value at `dim` (0.0 if absent).
    pub fn get(&self, dim: u32) -> f64 {
        match self.entries.binary_search_by_key(&dim, |(d, _)| *d) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Dot product (merge join over sorted entries).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (a, b) = (&self.entries, &other.entries);
        let mut i = 0;
        let mut j = 0;
        let mut sum = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Euclidean norm (cached; O(1)).
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Sum of values (L1 mass for non-negative vectors).
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// A copy with one unit subtracted per listed dimension (`removals`
    /// sorted ascending, repeats allowed); entries reaching zero are
    /// dropped. For integral count vectors the subtraction is exact, so
    /// the result is bit-identical to rebuilding the vector without the
    /// removed contributions.
    pub fn minus_counts(&self, removals: &[u32]) -> SparseVector {
        debug_assert!(removals.windows(2).all(|w| w[0] <= w[1]), "sorted");
        let mut entries = Vec::with_capacity(self.entries.len());
        let mut r = 0usize;
        for &(d, v) in &self.entries {
            while r < removals.len() && removals[r] < d {
                r += 1;
            }
            let mut k = 0.0;
            while r < removals.len() && removals[r] == d {
                k += 1.0;
                r += 1;
            }
            let nv = v - k;
            if nv != 0.0 {
                entries.push((d, nv));
            }
        }
        Self::from_sorted(entries)
    }

    /// Cosine similarity; 0.0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// In-place scale by `s` (dropping entries if `s == 0`).
    pub fn scale(&mut self, s: f64) {
        if s == 0.0 {
            self.entries.clear();
        } else {
            for (_, v) in &mut self.entries {
                *v *= s;
            }
        }
        // Recompute rather than multiplying the cached value by |s|: the
        // cache must stay bit-identical to a fresh computation over the
        // scaled entries.
        self.norm = compute_norm(&self.entries);
    }

    /// Return a unit-norm copy (zero vector stays zero).
    pub fn normalized(&self) -> SparseVector {
        let n = self.norm();
        let mut out = self.clone();
        if n > 0.0 {
            out.scale(1.0 / n);
        }
        out
    }

    /// Apply `f` to every stored value in place, dropping entries that
    /// become zero and recomputing the cached norm.
    pub fn map_values(&mut self, f: impl Fn(f64) -> f64) {
        for (_, v) in &mut self.entries {
            *v = f(*v);
        }
        self.entries.retain(|(_, v)| *v != 0.0);
        self.norm = compute_norm(&self.entries);
    }

    /// Drop non-finite entries (NaN, ±∞) and recompute the cached norm,
    /// returning how many entries were removed. Downstream kernels
    /// (cosine, clustering) assume finite weights; corrupted or
    /// ill-conditioned inputs are repaired here instead of poisoning
    /// every similarity they touch.
    pub fn sanitize(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, v)| v.is_finite());
        let dropped = before - self.entries.len();
        if dropped > 0 {
            self.norm = compute_norm(&self.entries);
        }
        dropped
    }

    /// Add `other` into `self` (merge).
    pub fn add_assign(&mut self, other: &SparseVector) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (a, b) = (&self.entries, &other.entries);
        let mut i = 0;
        let mut j = 0;
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&(da, va)), Some(&(db, vb))) => match da.cmp(&db) {
                    std::cmp::Ordering::Less => {
                        merged.push((da, va));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((db, vb));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        let v = va + vb;
                        if v != 0.0 {
                            merged.push((da, v));
                        }
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(da, va)), None) => {
                    merged.push((da, va));
                    i += 1;
                }
                (None, Some(&(db, vb))) => {
                    merged.push((db, vb));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.entries = merged;
        self.norm = compute_norm(&self.entries);
    }

    /// Sum a slice of vectors (centroid numerator).
    ///
    /// Accumulates every entry in a single hash map pass — per-dimension
    /// addition order still follows the slice order, so the result is
    /// identical to folding with [`SparseVector::add_assign`], without
    /// that fold's quadratic re-merging of the growing accumulator.
    pub fn sum_of(vectors: &[SparseVector]) -> SparseVector {
        match vectors {
            [] => SparseVector::new(),
            [one] => one.clone(),
            many => Self::from_pairs(many.iter().flat_map(SparseVector::iter)),
        }
    }

    /// Centroid (mean) of a slice; the empty slice yields the zero vector.
    pub fn centroid(vectors: &[SparseVector]) -> SparseVector {
        let mut acc = Self::sum_of(vectors);
        if !vectors.is_empty() {
            acc.scale(1.0 / vectors.len() as f64);
        }
        acc
    }

    /// Iterate `(dim, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }
}

/// Euclidean norm of an entry list (the single source of truth for the
/// cached field).
fn compute_norm(entries: &[(u32, f64)]) -> f64 {
    entries.iter().map(|(_, v)| v * v).sum::<f64>().sqrt()
}

impl FromIterator<(u32, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn sanitize_drops_non_finite_and_fixes_norm() {
        let mut x = v(&[(0, 3.0), (1, 4.0)]);
        assert_eq!(x.sanitize(), 0, "finite vectors are untouched");
        assert_eq!(x.norm(), 5.0);
        x.map_values(|val| if val > 3.5 { f64::NAN } else { val });
        assert!(x.norm().is_nan());
        assert_eq!(x.sanitize(), 1);
        assert_eq!(x.entries(), &[(0, 3.0)]);
        assert_eq!(x.norm(), 3.0);
        let mut y = v(&[(0, 1.0), (2, 2.0)]);
        y.map_values(|_| f64::INFINITY);
        assert_eq!(y.sanitize(), 2);
        assert!(y.is_empty());
        assert_eq!(y.norm(), 0.0);
    }

    #[test]
    fn map_values_drops_zeros_and_recomputes_norm() {
        let mut x = v(&[(0, 3.0), (1, 4.0)]);
        x.map_values(|val| if val > 3.5 { 0.0 } else { val * 2.0 });
        assert_eq!(x.entries(), &[(0, 6.0)]);
        assert_eq!(x.norm(), 6.0);
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let x = v(&[(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        assert_eq!(x.entries(), &[(1, 2.0), (3, 5.0)]);
        assert_eq!(x.nnz(), 2);
    }

    #[test]
    fn dot_product() {
        let a = v(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = v(&[(2, 4.0), (5, 1.0), (7, 9.0)]);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + 3.0 * 1.0);
    }

    #[test]
    fn cosine_identity_and_orthogonal() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        let b = v(&[(2, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let a = v(&[(0, 1.0)]);
        let z = SparseVector::new();
        assert_eq!(a.cosine(&z), 0.0);
        assert_eq!(z.cosine(&z), 0.0);
    }

    #[test]
    fn norm_and_sum() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        assert!(SparseVector::new().normalized().is_empty());
    }

    #[test]
    fn add_assign_merges_and_cancels() {
        let mut a = v(&[(0, 1.0), (2, 2.0)]);
        a.add_assign(&v(&[(1, 5.0), (2, -2.0)]));
        assert_eq!(a.entries(), &[(0, 1.0), (1, 5.0)]);
    }

    #[test]
    fn centroid_of_two() {
        let c = SparseVector::centroid(&[v(&[(0, 2.0)]), v(&[(0, 4.0), (1, 2.0)])]);
        assert_eq!(c.entries(), &[(0, 3.0), (1, 1.0)]);
        assert!(SparseVector::centroid(&[]).is_empty());
    }

    #[test]
    fn get_by_dim() {
        let a = v(&[(4, 2.5)]);
        assert_eq!(a.get(4), 2.5);
        assert_eq!(a.get(5), 0.0);
    }

    #[test]
    fn from_counts() {
        let a = SparseVector::from_counts([(1, 2u32), (1, 3u32)]);
        assert_eq!(a.entries(), &[(1, 5.0)]);
    }

    #[test]
    fn cached_norm_tracks_mutations() {
        let fresh = |v: &SparseVector| compute_norm(v.entries());
        let mut a = v(&[(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm().to_bits(), fresh(&a).to_bits());
        a.scale(2.5);
        assert_eq!(a.norm().to_bits(), fresh(&a).to_bits());
        a.add_assign(&v(&[(1, -10.0), (7, 2.0)]));
        assert_eq!(a.norm().to_bits(), fresh(&a).to_bits());
        a.scale(0.0);
        assert_eq!(a.norm(), 0.0);
        assert_eq!(SparseVector::new().norm(), 0.0);
    }

    #[test]
    fn sum_of_matches_add_assign_fold() {
        // Mixed magnitudes + a dimension that cancels mid-way: the fast
        // single-pass accumulation must agree bit-for-bit with the old
        // pairwise-merge fold.
        let vs = vec![
            v(&[(0, 1.0e16), (2, 3.0), (9, -1.0)]),
            v(&[(0, 1.0), (2, -3.0)]),
            v(&[(2, 0.125), (5, 2.0), (9, 1.0)]),
            SparseVector::new(),
            v(&[(0, -0.625)]),
        ];
        let mut slow = SparseVector::new();
        for x in &vs {
            slow.add_assign(x);
        }
        let fast = SparseVector::sum_of(&vs);
        assert_eq!(fast.entries().len(), slow.entries().len());
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "dim {}", a.0);
        }
    }
}
