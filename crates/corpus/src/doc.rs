//! Documents and sentences.

use boe_textkit::pos::PosTag;
use boe_textkit::TokenId;
use std::fmt;

/// Dense document identifier within one [`crate::Corpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One sentence: parallel arrays of interned token ids and POS tags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sentence {
    /// Interned token ids (lexical and punctuation tokens alike).
    pub tokens: Vec<TokenId>,
    /// POS tag per token; same length as `tokens`.
    pub tags: Vec<PosTag>,
}

impl Sentence {
    /// Construct, checking the parallel-array invariant.
    pub fn new(tokens: Vec<TokenId>, tags: Vec<PosTag>) -> Self {
        assert_eq!(tokens.len(), tags.len(), "tokens/tags length mismatch");
        Sentence { tokens, tags }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sentence has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// A tokenized document: a sequence of sentences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// This document's id within its corpus.
    pub id: DocId,
    /// The sentences, in order.
    pub sentences: Vec<Sentence>,
}

impl Document {
    /// Total token count across sentences.
    pub fn token_count(&self) -> usize {
        self.sentences.iter().map(Sentence::len).sum()
    }

    /// Iterate all `(sentence_idx, position, token, tag)` quadruples.
    pub fn iter_tokens(&self) -> impl Iterator<Item = (usize, usize, TokenId, PosTag)> + '_ {
        self.sentences.iter().enumerate().flat_map(|(si, s)| {
            s.tokens
                .iter()
                .zip(s.tags.iter())
                .enumerate()
                .map(move |(pi, (&t, &g))| (si, pi, t, g))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_invariant() {
        let s = Sentence::new(
            vec![TokenId(0), TokenId(1)],
            vec![PosTag::Noun, PosTag::Noun],
        );
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sentence_mismatch_panics() {
        let _ = Sentence::new(vec![TokenId(0)], vec![]);
    }

    #[test]
    fn document_token_count_and_iter() {
        let d = Document {
            id: DocId(3),
            sentences: vec![
                Sentence::new(vec![TokenId(0)], vec![PosTag::Noun]),
                Sentence::new(
                    vec![TokenId(1), TokenId(2)],
                    vec![PosTag::Noun, PosTag::Verb],
                ),
            ],
        };
        assert_eq!(d.token_count(), 3);
        let items: Vec<_> = d.iter_tokens().collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2], (1, 1, TokenId(2), PosTag::Verb));
        assert_eq!(d.id.to_string(), "d3");
        assert_eq!(d.id.index(), 3);
    }
}
