//! Property tests for the NLP substrate.
//!
//! Formerly written against `proptest`; now driven by the workspace's
//! own deterministic PRNG so the suite builds and runs with no external
//! dependencies (hermetic/offline builds). Each test sweeps a fixed
//! number of seeded random cases, so failures reproduce exactly.

use boe_rng::StdRng;
use boe_textkit::pattern::PatternSet;
use boe_textkit::pos::{PosTag, PosTagger};
use boe_textkit::sentence::split_sentences;
use boe_textkit::stem;
use boe_textkit::{Language, Tokenizer, Vocabulary};

const CASES: usize = 200;

fn rand_string(rng: &mut StdRng, charset: &str, max_len: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

fn rand_word(rng: &mut StdRng, charset: &str, min_len: usize, max_len: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    let len = rng.gen_range(min_len..=max_len);
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

#[test]
fn tokenization_is_deterministic_and_span_consistent() {
    let mut rng = StdRng::seed_from_u64(1);
    let charset = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJàéèêëíñóúüç0123456789 .,;:()'-";
    for _ in 0..CASES {
        let s = rand_string(&mut rng, charset, 120);
        for lang in Language::ALL {
            let tk = Tokenizer::new(lang);
            let a = tk.tokenize(&s);
            let b = tk.tokenize(&s);
            assert_eq!(a, b, "{lang}: {s:?}");
            // Spans are in order and non-overlapping.
            for w in a.windows(2) {
                assert!(w[0].span.end <= w[1].span.start, "{lang}: {s:?}");
            }
            for t in &a {
                assert!(!t.is_empty(), "{lang}: {s:?}");
            }
        }
    }
}

#[test]
fn sentences_cover_only_source_material() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let s = rand_string(&mut rng, "abcdefghijklmnopqrstuvwxyzABC .!?0123456789", 150);
        let sentences = split_sentences(&s);
        for sent in &sentences {
            assert!(s.contains(sent), "{sent:?} not in source {s:?}");
            assert!(!sent.trim().is_empty());
        }
    }
}

#[test]
fn tagger_output_is_total_and_aligned() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let s = rand_string(&mut rng, "abcdefghijklmnopqrstuvwxyz .,;-", 100);
        for lang in Language::ALL {
            let toks = Tokenizer::new(lang).tokenize(&s);
            let tags = PosTagger::new(lang).tag(&toks);
            assert_eq!(tags.len(), toks.len(), "{lang}: {s:?}");
        }
    }
}

#[test]
fn pattern_matches_stay_in_bounds() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..20);
        let tags: Vec<PosTag> = (0..n)
            .map(|_| PosTag::ALL[rng.gen_range(0..11usize)])
            .collect();
        for lang in Language::ALL {
            let set = PatternSet::for_language(lang);
            for m in set.matches(&tags) {
                assert!(m.start + m.len <= tags.len());
                assert!(m.pattern < set.patterns().len());
                assert_eq!(
                    &tags[m.start..m.start + m.len],
                    &set.patterns()[m.pattern].tags[..]
                );
            }
        }
    }
}

#[test]
fn stemmers_produce_nonempty_stems() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..CASES {
        let w = rand_word(&mut rng, "abcdefghijklmnopqrstuvwxyzàéñç", 1, 18);
        for lang in Language::ALL {
            let s = stem::stem(lang, &w);
            assert!(!s.is_empty(), "{lang}: {w:?}");
        }
    }
}

#[test]
fn vocabulary_intern_get_agree() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..40);
        let words: Vec<String> = (0..n)
            .map(|_| rand_word(&mut rng, "abcdefghijklmnopqrstuvwxyz", 1, 10))
            .collect();
        let mut v = Vocabulary::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            assert_eq!(v.get(w), Some(*id));
            assert_eq!(v.text(*id), w.as_str());
        }
        // Distinct strings ⇔ distinct ids.
        let mut uniq: Vec<&String> = words.iter().collect();
        uniq.sort();
        uniq.dedup();
        assert_eq!(v.len(), uniq.len());
    }
}
