//! Property tests for the NLP substrate.

use boe_textkit::pattern::PatternSet;
use boe_textkit::pos::{PosTag, PosTagger};
use boe_textkit::sentence::split_sentences;
use boe_textkit::stem;
use boe_textkit::{Language, Tokenizer, Vocabulary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenization_is_deterministic_and_span_consistent(
        s in "[a-zA-Zàéèêëíñóúüç0-9 .,;:()'-]{0,120}"
    ) {
        for lang in Language::ALL {
            let tk = Tokenizer::new(lang);
            let a = tk.tokenize(&s);
            let b = tk.tokenize(&s);
            prop_assert_eq!(&a, &b, "{}", lang);
            // Spans are in order and non-overlapping.
            for w in a.windows(2) {
                prop_assert!(w[0].span.end <= w[1].span.start);
            }
            for t in &a {
                prop_assert!(!t.is_empty());
            }
        }
    }

    #[test]
    fn sentences_cover_only_source_material(s in "[a-zA-Z .!?0-9]{0,150}") {
        let sentences = split_sentences(&s);
        for sent in &sentences {
            prop_assert!(s.contains(sent), "{sent:?} not in source");
            prop_assert!(!sent.trim().is_empty());
        }
    }

    #[test]
    fn tagger_output_is_total_and_aligned(s in "[a-zA-Z .,;-]{0,100}") {
        for lang in Language::ALL {
            let toks = Tokenizer::new(lang).tokenize(&s);
            let tags = PosTagger::new(lang).tag(&toks);
            prop_assert_eq!(tags.len(), toks.len());
        }
    }

    #[test]
    fn pattern_matches_stay_in_bounds(tags in proptest::collection::vec(0u8..11, 0..20)) {
        let tags: Vec<PosTag> = tags.into_iter().map(|i| PosTag::ALL[i as usize]).collect();
        for lang in Language::ALL {
            let set = PatternSet::for_language(lang);
            for m in set.matches(&tags) {
                prop_assert!(m.start + m.len <= tags.len());
                prop_assert!(m.pattern < set.patterns().len());
                prop_assert_eq!(&tags[m.start..m.start + m.len], &set.patterns()[m.pattern].tags[..]);
            }
        }
    }

    #[test]
    fn stemmers_produce_nonempty_stems(w in "[a-zàéñç]{1,18}") {
        for lang in Language::ALL {
            let s = stem::stem(lang, &w);
            prop_assert!(!s.is_empty(), "{lang}: {w:?}");
        }
    }

    #[test]
    fn vocabulary_intern_get_agree(words in proptest::collection::vec("[a-z]{1,10}", 0..40)) {
        let mut v = Vocabulary::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.get(w), Some(*id));
            prop_assert_eq!(v.text(*id), w.as_str());
        }
        // Distinct strings ⇔ distinct ids.
        let mut uniq: Vec<&String> = words.iter().collect();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(v.len(), uniq.len());
    }
}
