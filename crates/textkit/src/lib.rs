//! # boe-textkit
//!
//! Text-processing substrate for the biomedical ontology-enrichment
//! workflow (EDBT 2016 reproduction). Provides the NLP layer the paper's
//! BIOTEX term extractor depends on:
//!
//! * [`tokenizer`] — rule-based word tokenizer for English, French and
//!   Spanish biomedical text;
//! * [`sentence`] — sentence segmentation;
//! * [`normalize`] — case folding and accent folding;
//! * [`stopwords`] — per-language stopword lists;
//! * [`stem`] — Porter stemmer (EN) and light stemmers (FR/ES);
//! * [`pos`] — lexicon + suffix-rule part-of-speech tagger;
//! * [`pattern`] — the linguistic term patterns (POS-tag sequences) that
//!   filter multi-word candidate terms, with the pattern probabilities
//!   LIDF-value needs;
//! * [`ngram`] — n-gram extraction;
//! * [`vocab`] — string interning so downstream crates work on `u32` ids.
//!
//! Everything is deterministic and allocation-conscious: hot paths operate
//! on interned ids and byte slices, strings only appear at the edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lang;
pub mod ngram;
pub mod normalize;
pub mod pattern;
pub mod pos;
pub mod sentence;
pub mod stem;
pub mod stopwords;
pub mod token;
pub mod tokenizer;
pub mod vocab;

pub use lang::Language;
pub use token::{Token, TokenKind};
pub use tokenizer::Tokenizer;
pub use vocab::{TokenId, Vocabulary};
