//! Stemming.
//!
//! Context vectors and bag-of-words representations (Steps III/IV of the
//! workflow) conflate inflectional variants via stemming:
//!
//! * English — the full Porter (1980) algorithm ([`porter`]);
//! * French — a light suffix stemmer in the spirit of Savoy (2002)
//!   ([`french`]);
//! * Spanish — a light suffix stemmer ([`spanish`]).

pub mod french;
pub mod porter;
pub mod spanish;

use crate::lang::Language;

/// Stem `word` (already lower-cased) according to `lang`.
pub fn stem(lang: Language, word: &str) -> String {
    match lang {
        Language::English => porter::stem(word),
        Language::French => french::stem(word),
        Language::Spanish => spanish::stem(word),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_by_language() {
        assert_eq!(stem(Language::English, "injuries"), "injuri");
        assert_eq!(stem(Language::French, "maladies"), "maladi");
        assert_eq!(stem(Language::Spanish, "enfermedades"), "enfermedad");
    }

    #[test]
    fn stemming_is_idempotent_on_samples() {
        for (lang, w) in [
            (Language::English, "relational"),
            (Language::French, "hépatiques"),
            (Language::Spanish, "crónicas"),
        ] {
            let once = stem(lang, w);
            let twice = stem(lang, &once);
            assert_eq!(once, twice, "{lang}: {w}");
        }
    }
}
