//! The Porter stemming algorithm (M. F. Porter, 1980), implemented from the
//! original paper's rule tables.
//!
//! Operates on lower-case ASCII words; tokens containing non-ASCII bytes or
//! digits are returned unchanged (biomedical identifiers like `p53` must
//! not be mangled).

/// Stem one lower-case word.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b[..s.k].to_vec()).expect("ascii in, ascii out")
}

struct Stemmer {
    /// Working buffer; only `b[..k]` is live.
    b: Vec<u8>,
    k: usize,
}

impl Stemmer {
    /// Is `b[i]` a consonant (Porter's definition: `y` is a consonant when
    /// preceded by a vowel position... precisely, when at 0 or after a
    /// vowel-position)?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// m(): the number of VC sequences in `b[..j]` (Porter's *measure* of
    /// the stem that precedes the candidate suffix ending at `j`).
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < j {
            if !self.is_consonant(i) {
                break;
            }
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < j {
                if self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            if i >= j {
                return n;
            }
            n += 1;
            // Skip consonants.
            while i < j {
                if !self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            if i >= j {
                return n;
            }
        }
    }

    /// Does `b[..j]` contain a vowel?
    fn has_vowel(&self, j: usize) -> bool {
        (0..j).any(|i| !self.is_consonant(i))
    }

    /// Does `b[..k]` end with a double consonant?
    fn double_consonant(&self, k: usize) -> bool {
        k >= 2 && self.b[k - 1] == self.b[k - 2] && self.is_consonant(k - 1)
    }

    /// cvc test at position `i` (0-based index of last char): consonant -
    /// vowel - consonant, where the final consonant is not w, x or y.
    /// Used to restore a trailing `e` (hop → hope is prevented; fil → file).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &str) -> bool {
        let s = suffix.as_bytes();
        self.k >= s.len() && &self.b[self.k - s.len()..self.k] == s
    }

    /// If the live word ends with `suffix`, return the stem length
    /// (index just before the suffix), else None.
    fn stem_end(&self, suffix: &str) -> Option<usize> {
        if self.ends_with(suffix) {
            Some(self.k - suffix.len())
        } else {
            None
        }
    }

    /// Replace the suffix ending the word with `rep`, shrinking/extending
    /// the live region.
    fn set_suffix(&mut self, stem_len: usize, rep: &str) {
        self.b.truncate(stem_len);
        self.b.extend_from_slice(rep.as_bytes());
        self.k = self.b.len();
    }

    /// `(m > threshold)`-guarded replacement; returns true if a rule fired
    /// (whether or not the guard passed — Porter's rules match the longest
    /// suffix first and stop).
    fn replace_if_measure(&mut self, suffix: &str, rep: &str, min_m: usize) -> bool {
        if let Some(j) = self.stem_end(suffix) {
            if self.measure(j) > min_m {
                self.set_suffix(j, rep);
            }
            true
        } else {
            false
        }
    }

    // Step 1a: plurals. SSES→SS, IES→I, SS→SS, S→(drop)
    fn step1a(&mut self) {
        if let Some(j) = self.stem_end("sses") {
            self.set_suffix(j, "ss");
        } else if let Some(j) = self.stem_end("ies") {
            self.set_suffix(j, "i");
        } else if self.ends_with("ss") {
            // keep
        } else if let Some(j) = self.stem_end("s") {
            self.set_suffix(j, "");
        }
    }

    // Step 1b: -ed / -ing.
    fn step1b(&mut self) {
        if let Some(j) = self.stem_end("eed") {
            if self.measure(j) > 0 {
                self.set_suffix(j + 2, ""); // eed → ee
            }
            return;
        }
        let fired = if let Some(j) = self.stem_end("ed") {
            if self.has_vowel(j) {
                self.set_suffix(j, "");
                true
            } else {
                false
            }
        } else if let Some(j) = self.stem_end("ing") {
            if self.has_vowel(j) {
                self.set_suffix(j, "");
                true
            } else {
                false
            }
        } else {
            false
        };
        if fired {
            if self.ends_with("at") || self.ends_with("bl") || self.ends_with("iz") {
                let k = self.k;
                self.set_suffix(k, "e");
            } else if self.double_consonant(self.k)
                && !matches!(self.b[self.k - 1], b'l' | b's' | b'z')
            {
                self.k -= 1;
                self.b.truncate(self.k);
            } else if self.measure(self.k) == 1 && self.cvc(self.k - 1) {
                let k = self.k;
                self.set_suffix(k, "e");
            }
        }
    }

    // Step 1c: Y → I when there is a vowel in the stem.
    fn step1c(&mut self) {
        if let Some(j) = self.stem_end("y") {
            if self.has_vowel(j) {
                self.set_suffix(j, "i");
            }
        }
    }

    // Step 2: double suffixes, guarded by m > 0.
    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suf, rep) in RULES {
            if self.replace_if_measure(suf, rep, 0) {
                return;
            }
        }
    }

    // Step 3.
    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suf, rep) in RULES {
            if self.replace_if_measure(suf, rep, 0) {
                return;
            }
        }
    }

    // Step 4: drop suffixes when m > 1.
    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suf in SUFFIXES {
            if let Some(j) = self.stem_end(suf) {
                if *suf == "ion" && !(j > 0 && matches!(self.b[j - 1], b's' | b't')) {
                    return; // ION only drops after S or T; rule matched, stop.
                }
                if self.measure(j) > 1 {
                    self.set_suffix(j, "");
                }
                return;
            }
        }
    }

    // Step 5a: drop final E.
    fn step5a(&mut self) {
        if let Some(j) = self.stem_end("e") {
            let m = self.measure(j);
            if m > 1 || (m == 1 && !(j >= 1 && self.cvc(j - 1))) {
                self.set_suffix(j, "");
            }
        }
    }

    // Step 5b: LL → L when m > 1.
    fn step5b(&mut self) {
        if self.k >= 2
            && self.b[self.k - 1] == b'l'
            && self.double_consonant(self.k)
            && self.measure(self.k - 1) > 1
        {
            self.k -= 1;
            self.b.truncate(self.k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's paper and the standard test vocabulary.
    #[test]
    fn porter_reference_pairs() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn biomedical_terms() {
        assert_eq!(stem("injuries"), "injuri");
        assert_eq!(stem("diseases"), "diseas");
        assert_eq!(stem("corneal"), "corneal");
        assert_eq!(stem("injury"), "injuri");
        // Singular and plural conflate.
        assert_eq!(stem("tumors"), stem("tumor"));
        assert_eq!(stem("infections"), stem("infection"));
    }

    #[test]
    fn short_words_and_identifiers_untouched() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("p53"), "p53");
        assert_eq!(stem("covid-19"), "covid-19");
        assert_eq!(stem("a"), "a");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(stem("hépatite"), "hépatite");
    }
}
