//! Light French stemmer.
//!
//! Follows the spirit of Savoy's light stemmer for French IR: strip plural
//! and feminine inflection plus a handful of very productive derivational
//! endings, without attempting full Snowball morphology. Light stemming is
//! what the paper's context-vector comparisons need — aggressive stemming
//! hurts precision on biomedical terms.

/// Stem one lower-case French word.
pub fn stem(word: &str) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() <= 3 || !chars.iter().all(|c| c.is_alphabetic() || *c == '-') {
        return word.to_owned();
    }
    let mut w: String = word.to_owned();

    // Plural / feminine-plural endings, longest first.
    w = strip_one(&w, &["eaux"], "eau");
    w = strip_one(&w, &["aux"], "al");
    for suf in ["ées", "ères", "ions", "ment"] {
        if let Some(stripped) = try_strip(&w, suf, 4) {
            w = stripped;
            break;
        }
    }
    for suf in ["és", "ée", "es", "er", "ez"] {
        if let Some(stripped) = try_strip(&w, suf, 4) {
            w = stripped;
            break;
        }
    }
    if let Some(stripped) = try_strip(&w, "s", 4) {
        w = stripped;
    }
    if let Some(stripped) = try_strip(&w, "e", 4) {
        w = stripped;
    }
    // Collapse doubled final consonant left by stripping (-elle → -ell → -el).
    let cs: Vec<char> = w.chars().collect();
    if cs.len() >= 2 && cs[cs.len() - 1] == cs[cs.len() - 2] && !is_vowel(cs[cs.len() - 1]) {
        w.pop();
    }
    w
}

fn is_vowel(c: char) -> bool {
    matches!(
        c,
        'a' | 'e' | 'i' | 'o' | 'u' | 'y' | 'é' | 'è' | 'ê' | 'à' | 'â' | 'î' | 'ô' | 'û' | 'ù'
    )
}

/// Strip `suffix` if the remaining stem keeps at least `min_stem` chars.
fn try_strip(w: &str, suffix: &str, min_stem: usize) -> Option<String> {
    let stripped = w.strip_suffix(suffix)?;
    if stripped.chars().count() >= min_stem {
        Some(stripped.to_owned())
    } else {
        None
    }
}

/// Replace the first matching suffix in `sufs` with `rep`.
fn strip_one(w: &str, sufs: &[&str], rep: &str) -> String {
    for suf in sufs {
        if let Some(stem) = w.strip_suffix(suf) {
            if stem.chars().count() >= 2 {
                return format!("{stem}{rep}");
            }
        }
    }
    w.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_conflation() {
        assert_eq!(stem("maladies"), stem("maladie"));
        assert_eq!(stem("chevaux"), "cheval");
        assert_eq!(stem("tumeurs"), stem("tumeur"));
    }

    #[test]
    fn feminine_conflation() {
        assert_eq!(stem("chronique"), stem("chroniques"));
        assert_eq!(stem("virales"), stem("viral"));
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("foie"), "foie");
        assert_eq!(stem("os"), "os");
    }

    #[test]
    fn biomedical_examples() {
        assert_eq!(stem("hépatiques"), stem("hépatique"));
        assert_eq!(stem("cardiaques"), stem("cardiaque"));
    }

    #[test]
    fn idempotent() {
        for w in ["maladies", "hépatiques", "chevaux", "chroniques"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "{w}");
        }
    }
}
