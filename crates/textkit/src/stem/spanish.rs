//! Light Spanish stemmer.
//!
//! Strips plural inflection and the most productive adjective/noun endings.
//! Like the French stemmer, deliberately light: the workflow only needs
//! singular/plural and gender variants to conflate.

/// Stem one lower-case Spanish word.
pub fn stem(word: &str) -> String {
    let n = word.chars().count();
    if n <= 3 || !word.chars().all(|c| c.is_alphabetic() || c == '-') {
        return word.to_owned();
    }
    let mut w = word.to_owned();

    // -ciones → -ción (infecciones → infección ... we fold accents later, so
    // map straight to "cion").
    if let Some(stem) = w.strip_suffix("ciones") {
        if stem.chars().count() >= 2 {
            return format!("{stem}cion");
        }
    }
    if let Some(stem) = w.strip_suffix("ción") {
        if stem.chars().count() >= 2 {
            return format!("{stem}cion");
        }
    }
    // Plurals: -es after consonant (enfermedades → enfermedad), -s.
    if let Some(stem) = w.strip_suffix("es") {
        let cs: Vec<char> = stem.chars().collect();
        if cs.len() >= 3 && !is_vowel(*cs.last().expect("nonempty")) {
            w = stem.to_owned();
            // crónicas/crónicos handled by -s branch; -les/-res keep the stem.
            return w;
        }
    }
    if let Some(stem) = w.strip_suffix('s') {
        if stem.chars().count() >= 3 {
            w = stem.to_owned();
        }
    }
    // Gender endings -o/-a conflate for adjectives (crónico/crónica).
    let cs: Vec<char> = w.chars().collect();
    if cs.len() > 4 && matches!(cs[cs.len() - 1], 'o' | 'a') {
        w.pop();
    }
    w
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'á' | 'é' | 'í' | 'ó' | 'ú')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_conflation() {
        assert_eq!(stem("enfermedades"), "enfermedad");
        assert_eq!(stem("tumores"), "tumor");
    }

    #[test]
    fn gender_conflation() {
        assert_eq!(stem("crónico"), stem("crónica"));
        assert_eq!(stem("crónicos"), stem("crónicas"));
    }

    #[test]
    fn cion_normalization() {
        assert_eq!(stem("infección"), "infeccion");
        assert_eq!(stem("infecciones"), "infeccion");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("ojo"), "ojo");
        assert_eq!(stem("piel"), "piel");
    }

    #[test]
    fn idempotent() {
        for w in ["enfermedades", "crónicas", "infecciones", "tumores"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "{w}");
        }
    }
}
