//! Sentence segmentation.
//!
//! Splits running text into sentences on `.`, `!`, `?` and newlines, with
//! an abbreviation guard (common biomedical/bibliographic abbreviations and
//! single-letter initials do not end a sentence). Good enough for abstract
//! style prose; the synthetic corpus generator emits exactly this style.

/// Abbreviations that should not terminate a sentence (lower-case, without
/// the trailing dot).
const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "fig", "figs", "eq", "eqs", "ref", "refs", "et", "al", "etc",
    "vs", "e.g", "i.e", "cf", "ca", "approx", "resp", "no", "nos", "vol", "pp", "inc", "st", "mg",
    "ml", "kg", "dl",
];

/// Split `text` into sentence substrings (trimmed, non-empty).
pub fn split_sentences(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut sentences = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let is_break = match b {
            b'!' | b'?' => true,
            b'\n' => true,
            b'.' => !is_abbreviation(text, i) && !is_decimal_point(bytes, i),
            _ => false,
        };
        if is_break {
            // Consume any run of closing punctuation after the breaker.
            let mut end = i + 1;
            while end < bytes.len() && matches!(bytes[end], b'"' | b')' | b']' | b'.') {
                end += 1;
            }
            let s = text[start..end].trim();
            if !s.is_empty() {
                sentences.push(s);
            }
            start = end;
            i = end;
        } else {
            i += 1;
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        sentences.push(tail);
    }
    sentences
}

/// Is the `.` at byte `dot` part of a known abbreviation or an initial?
fn is_abbreviation(text: &str, dot: usize) -> bool {
    // Find the word immediately before the dot.
    let before = &text[..dot];
    let word_start = before
        .rfind(|c: char| !c.is_alphanumeric() && c != '.')
        .map(|p| p + 1)
        .unwrap_or(0);
    let word = &before[word_start..];
    if word.is_empty() {
        return false;
    }
    // Single-letter initial ("J." in "J. A. Lossio").
    if word.chars().count() == 1 && word.chars().next().is_some_and(|c| c.is_alphabetic()) {
        return true;
    }
    let lower = word.to_lowercase();
    ABBREVIATIONS.contains(&lower.as_str())
}

/// Is the `.` at byte `dot` a decimal point (digit on both sides)?
fn is_decimal_point(bytes: &[u8], dot: usize) -> bool {
    dot > 0
        && dot + 1 < bytes.len()
        && bytes[dot - 1].is_ascii_digit()
        && bytes[dot + 1].is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_simple_sentences() {
        let s = split_sentences("Hepatitis is viral. Cirrhosis follows. Treatment helps!");
        assert_eq!(
            s,
            vec![
                "Hepatitis is viral.",
                "Cirrhosis follows.",
                "Treatment helps!"
            ]
        );
    }

    #[test]
    fn keeps_abbreviations_together() {
        let s = split_sentences("Samples were collected by Dr. Smith et al. in 2014.");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keeps_decimals_together() {
        let s = split_sentences("The dose was 3.5 mg daily. Outcomes improved.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("3.5"));
    }

    #[test]
    fn newline_breaks_sentences() {
        let s = split_sentences("Title line\nBody sentence.");
        assert_eq!(s, vec!["Title line", "Body sentence."]);
    }

    #[test]
    fn single_letter_initials() {
        let s = split_sentences("Written by J. A. Lossio-Ventura. It was published.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("  \n  ").is_empty());
    }

    #[test]
    fn question_marks_split() {
        let s = split_sentences("Is it viral? Yes.");
        assert_eq!(s, vec!["Is it viral?", "Yes."]);
    }
}
