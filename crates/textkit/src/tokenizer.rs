//! Rule-based word tokenizer.
//!
//! Handles the surface phenomena that matter for biomedical term
//! extraction: internal hyphens (`beta-blocker` stays one token),
//! alphanumeric identifiers (`p53`, `COVID-19`), decimal numbers,
//! French elision (`l'hépatite` → `l'` + `hépatite`), and punctuation.
//!
//! Tokens carry lower-cased text (accents preserved — accent folding is a
//! separate, later normalization step) plus the byte span into the source.

use crate::lang::Language;
use crate::token::{Token, TokenKind};

/// Configurable tokenizer. Construct once per language and reuse.
///
/// Tokenization is reentrant: every method takes `&self` and touches no
/// shared mutable state, so one tokenizer can be shared across worker
/// threads (the batch ingestion path in `boe-corpus` relies on this).
#[derive(Debug, Clone)]
pub struct Tokenizer {
    lang: Language,
    /// Keep single-character word tokens (default: true; the stopword
    /// filter usually removes them later anyway).
    pub keep_single_chars: bool,
}

/// Compile-time proof that [`Tokenizer`] stays shareable across threads;
/// the parallel ingestion path breaks if a future field loses `Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tokenizer>();
};

impl Tokenizer {
    /// Tokenizer for `lang` with default settings.
    pub fn new(lang: Language) -> Self {
        Tokenizer {
            lang,
            keep_single_chars: true,
        }
    }

    /// The language this tokenizer was built for.
    pub fn language(&self) -> Language {
        self.lang
    }

    /// Tokenize `text` into a fresh vector.
    pub fn tokenize(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        self.tokenize_into(text, &mut out);
        out
    }

    /// Tokenize `text`, appending into `out` (workhorse-buffer pattern).
    pub fn tokenize_into(&self, text: &str, out: &mut Vec<Token>) {
        let chars: Vec<(usize, char)> = text.char_indices().collect();
        let n = chars.len();
        let mut i = 0;
        while i < n {
            let (start, c) = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() {
                i = self.lex_wordlike(text, &chars, i, out);
                continue;
            }
            if c.is_ascii_digit() {
                i = lex_number(text, &chars, i, out);
                continue;
            }
            // Single-char punctuation or other symbol.
            let end = byte_end(&chars, i, text);
            let kind = if is_punct(c) {
                TokenKind::Punctuation
            } else {
                TokenKind::Other
            };
            out.push(Token::new(
                text[start..end].to_lowercase(),
                start..end,
                kind,
            ));
            i += 1;
        }
        if !self.keep_single_chars {
            out.retain(|t| t.kind != TokenKind::Word || t.text.chars().count() > 1);
        }
    }

    /// Lex a token starting with an alphabetic char: word, elided clitic,
    /// or alphanumeric identifier. Returns the next char index.
    fn lex_wordlike(
        &self,
        text: &str,
        chars: &[(usize, char)],
        start_idx: usize,
        out: &mut Vec<Token>,
    ) -> usize {
        let n = chars.len();
        let start = chars[start_idx].0;
        let mut i = start_idx;
        let mut saw_digit = false;
        while i < n {
            let (_, c) = chars[i];
            if c.is_alphabetic() {
                i += 1;
            } else if c.is_ascii_digit() {
                saw_digit = true;
                i += 1;
            } else if (c == '-' || c == '\u{2019}' || c == '\'') && i + 1 < n {
                let (_, next) = chars[i + 1];
                // French/Spanish elision: split "l'hépatite" after the
                // apostrophe so the article becomes its own token.
                if (c == '\'' || c == '\u{2019}')
                    && matches!(self.lang, Language::French | Language::Spanish)
                {
                    let prefix_len = i - start_idx;
                    if prefix_len <= 2 && next.is_alphabetic() {
                        // Emit the clitic (e.g. "l'") and restart after it.
                        let end = chars[i + 1].0;
                        out.push(Token::new(
                            text[start..end].to_lowercase(),
                            start..end,
                            TokenKind::Word,
                        ));
                        return i + 1;
                    }
                }
                if next.is_alphanumeric() {
                    if next.is_ascii_digit() {
                        saw_digit = true;
                    }
                    i += 2;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        let end = byte_end(chars, i - 1, text);
        let kind = if saw_digit {
            TokenKind::Alphanumeric
        } else {
            TokenKind::Word
        };
        out.push(Token::new(
            text[start..end].to_lowercase(),
            start..end,
            kind,
        ));
        i
    }
}

/// Lex a number starting at `start_idx` (digits, optional single decimal
/// point or comma between digits, optional trailing alphanumeric making it
/// an identifier like `19a`). Returns the next char index.
fn lex_number(
    text: &str,
    chars: &[(usize, char)],
    start_idx: usize,
    out: &mut Vec<Token>,
) -> usize {
    let n = chars.len();
    let start = chars[start_idx].0;
    let mut i = start_idx;
    let mut saw_alpha = false;
    while i < n {
        let (_, c) = chars[i];
        if c.is_ascii_digit() {
            i += 1;
        } else if (c == '.' || c == ',') && i + 1 < n && chars[i + 1].1.is_ascii_digit() {
            i += 2;
        } else if c.is_alphabetic() {
            saw_alpha = true;
            i += 1;
        } else if c == '-' && i + 1 < n && chars[i + 1].1.is_alphanumeric() {
            saw_alpha = true;
            i += 2;
        } else {
            break;
        }
    }
    let end = byte_end(chars, i - 1, text);
    let kind = if saw_alpha {
        TokenKind::Alphanumeric
    } else {
        TokenKind::Number
    };
    out.push(Token::new(
        text[start..end].to_lowercase(),
        start..end,
        kind,
    ));
    i
}

/// Byte offset one past the char at `idx`.
fn byte_end(chars: &[(usize, char)], idx: usize, text: &str) -> usize {
    let (off, c) = chars[idx];
    debug_assert!(off + c.len_utf8() <= text.len());
    off + c.len_utf8()
}

fn is_punct(c: char) -> bool {
    matches!(
        c,
        '.' | ','
            | ';'
            | ':'
            | '!'
            | '?'
            | '('
            | ')'
            | '['
            | ']'
            | '{'
            | '}'
            | '"'
            | '\''
            | '«'
            | '»'
            | '¿'
            | '¡'
            | '-'
            | '–'
            | '—'
            | '/'
            | '\\'
            | '%'
            | '&'
            | '*'
            | '+'
            | '='
            | '<'
            | '>'
            | '|'
            | '~'
            | '^'
            | '_'
            | '@'
            | '#'
            | '$'
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(lang: Language, s: &str) -> Vec<String> {
        Tokenizer::new(lang)
            .tokenize(s)
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_english_sentence() {
        let toks = texts(Language::English, "Corneal injuries are severe.");
        assert_eq!(toks, vec!["corneal", "injuries", "are", "severe", "."]);
    }

    #[test]
    fn hyphenated_word_stays_together() {
        let toks = texts(Language::English, "beta-blocker therapy");
        assert_eq!(toks, vec!["beta-blocker", "therapy"]);
    }

    #[test]
    fn alphanumeric_identifiers() {
        let toks = texts(Language::English, "p53 and COVID-19 variants");
        assert_eq!(toks[0], "p53");
        assert_eq!(toks[2], "covid-19");
        let kinds: Vec<_> = Tokenizer::new(Language::English)
            .tokenize("p53 and COVID-19")
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokenKind::Alphanumeric);
        assert_eq!(kinds[2], TokenKind::Alphanumeric);
    }

    #[test]
    fn decimal_numbers() {
        let toks = Tokenizer::new(Language::English).tokenize("dose of 3.5 mg");
        assert_eq!(toks[2].text, "3.5");
        assert_eq!(toks[2].kind, TokenKind::Number);
    }

    #[test]
    fn french_elision_splits_clitic() {
        let toks = texts(Language::French, "l'hépatite d'origine virale");
        assert_eq!(toks, vec!["l'", "hépatite", "d'", "origine", "virale"]);
    }

    #[test]
    fn english_apostrophe_is_not_split() {
        let toks = texts(Language::English, "Crohn's disease");
        assert_eq!(toks, vec!["crohn's", "disease"]);
    }

    #[test]
    fn spans_point_into_source() {
        let src = "Acute  hepatitis";
        let toks = Tokenizer::new(Language::English).tokenize(src);
        for t in &toks {
            assert_eq!(src[t.span.clone()].to_lowercase(), t.text);
        }
    }

    #[test]
    fn punctuation_tokens() {
        let toks = Tokenizer::new(Language::English).tokenize("(acute) injury;");
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Punctuation,
                TokenKind::Word,
                TokenKind::Punctuation,
                TokenKind::Word,
                TokenKind::Punctuation
            ]
        );
    }

    #[test]
    fn empty_and_whitespace_input() {
        assert!(texts(Language::English, "").is_empty());
        assert!(texts(Language::English, "   \t\n ").is_empty());
    }

    #[test]
    fn trailing_hyphen_is_punctuation() {
        let toks = texts(Language::English, "pre- and postoperative");
        assert_eq!(toks, vec!["pre", "-", "and", "postoperative"]);
    }

    #[test]
    fn single_char_filter() {
        let mut tk = Tokenizer::new(Language::English);
        tk.keep_single_chars = false;
        let toks: Vec<String> = tk
            .tokenize("a big dog")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(toks, vec!["big", "dog"]);
    }
}
