//! Case and accent normalization.
//!
//! The workflow compares surface strings across corpora, ontologies and
//! languages; normalization keeps those comparisons stable. Two levels are
//! provided:
//!
//! * [`fold_case`] — Unicode-aware lower-casing (what the tokenizer applies);
//! * [`fold_accents`] — maps the Latin-1/Latin-Extended accented letters used
//!   by French and Spanish onto their ASCII bases (`é → e`, `ñ → n`), which
//!   the matching layer uses when aligning corpus terms with ontology labels.

/// Lower-case a string (Unicode-aware).
pub fn fold_case(s: &str) -> String {
    s.to_lowercase()
}

/// Map one character to its unaccented base, if it is an accented Latin
/// letter common in French/Spanish biomedical text; otherwise return the
/// character unchanged.
pub fn fold_accent_char(c: char) -> char {
    match c {
        'á' | 'à' | 'â' | 'ä' | 'ã' | 'å' => 'a',
        'é' | 'è' | 'ê' | 'ë' => 'e',
        'í' | 'ì' | 'î' | 'ï' => 'i',
        'ó' | 'ò' | 'ô' | 'ö' | 'õ' => 'o',
        'ú' | 'ù' | 'û' | 'ü' => 'u',
        'ý' | 'ÿ' => 'y',
        'ñ' => 'n',
        'ç' => 'c',
        'œ' => 'o', // approximation: œdème → oedeme handled by fold_accents
        'æ' => 'a',
        'Á' | 'À' | 'Â' | 'Ä' | 'Ã' | 'Å' => 'A',
        'É' | 'È' | 'Ê' | 'Ë' => 'E',
        'Í' | 'Ì' | 'Î' | 'Ï' => 'I',
        'Ó' | 'Ò' | 'Ô' | 'Ö' | 'Õ' => 'O',
        'Ú' | 'Ù' | 'Û' | 'Ü' => 'U',
        'Ñ' => 'N',
        'Ç' => 'C',
        other => other,
    }
}

/// Replace accented Latin letters with their ASCII bases. Ligatures `œ`/`æ`
/// expand to two letters (`oe`, `ae`).
pub fn fold_accents(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'œ' => out.push_str("oe"),
            'Œ' => out.push_str("OE"),
            'æ' => out.push_str("ae"),
            'Æ' => out.push_str("AE"),
            other => out.push(fold_accent_char(other)),
        }
    }
    out
}

/// Full normalization used for cross-resource string matching: lower-case
/// then accent-fold, collapsing internal whitespace runs to single spaces.
pub fn match_key(s: &str) -> String {
    let lowered = fold_case(s);
    let folded = fold_accents(&lowered);
    let mut out = String::with_capacity(folded.len());
    let mut last_was_space = true; // trims leading whitespace
    for c in folded.chars() {
        if c.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            out.push(c);
            last_was_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_french_accents() {
        assert_eq!(fold_accents("hépatite aiguë"), "hepatite aigue");
        assert_eq!(fold_accents("œdème"), "oedeme");
    }

    #[test]
    fn folds_spanish_accents() {
        assert_eq!(fold_accents("riñón"), "rinon");
        assert_eq!(fold_accents("corazón"), "corazon");
    }

    #[test]
    fn match_key_normalizes_case_space_and_accents() {
        assert_eq!(match_key("  Hépatite   C  "), "hepatite c");
        assert_eq!(match_key("Corneal\tInjuries"), "corneal injuries");
    }

    #[test]
    fn ascii_is_untouched() {
        assert_eq!(fold_accents("corneal injuries"), "corneal injuries");
    }

    #[test]
    fn match_key_of_empty_is_empty() {
        assert_eq!(match_key(""), "");
        assert_eq!(match_key("   "), "");
    }
}
