//! The POS tagger: lexicon lookup → suffix rules → contextual repair →
//! noun default.

use crate::lang::Language;
use crate::pos::lexicon::Lexicon;
use crate::pos::tags::PosTag;
use crate::token::{Token, TokenKind};

/// Deterministic POS tagger (see module docs of [`crate::pos`]).
///
/// Tagging is reentrant: [`tag`](Self::tag) takes `&self` and the
/// lexicon is read-only after construction, so one tagger can be shared
/// across worker threads (the batch ingestion path in `boe-corpus`
/// relies on this).
#[derive(Debug, Clone)]
pub struct PosTagger {
    lang: Language,
    lexicon: Lexicon,
}

/// Compile-time proof that [`PosTagger`] stays shareable across threads;
/// the parallel ingestion path breaks if a future field loses `Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PosTagger>();
};

impl PosTagger {
    /// Build a tagger for `lang`.
    pub fn new(lang: Language) -> Self {
        PosTagger {
            lang,
            lexicon: Lexicon::for_language(lang),
        }
    }

    /// The tagger's language.
    pub fn language(&self) -> Language {
        self.lang
    }

    /// Tag a token sequence. Output length equals input length.
    pub fn tag(&self, tokens: &[Token]) -> Vec<PosTag> {
        let mut tags: Vec<PosTag> = tokens.iter().map(|t| self.tag_one(t)).collect();
        self.repair(tokens, &mut tags);
        tags
    }

    /// Context-free classification of one token.
    fn tag_one(&self, token: &Token) -> PosTag {
        match token.kind {
            TokenKind::Punctuation => PosTag::Punctuation,
            TokenKind::Number => PosTag::Number,
            TokenKind::Other => PosTag::Other,
            TokenKind::Alphanumeric => PosTag::Noun, // p53, covid-19 ⇒ nominal
            TokenKind::Word => {
                if let Some(tag) = self.lexicon.lookup(&token.text) {
                    tag
                } else if let Some(tag) = self.lexicon.by_suffix(&token.text) {
                    tag
                } else {
                    // Open-class default: noun. Biomedical abstracts are
                    // ~60% nominal and unknown tokens are overwhelmingly
                    // domain nouns.
                    PosTag::Noun
                }
            }
        }
    }

    /// Small set of contextual repairs that fix the suffix rules' most
    /// damaging systematic errors inside noun phrases.
    fn repair(&self, tokens: &[Token], tags: &mut [PosTag]) {
        for i in 0..tags.len() {
            // Participle between determiner/adjective and noun behaves as an
            // adjective: "the injured cornea".
            if tags[i] == PosTag::Verb
                && (tokens[i].text.ends_with("ed") || tokens[i].text.ends_with("ing"))
                && i + 1 < tags.len()
                && tags[i + 1] == PosTag::Noun
                && i > 0
                && matches!(tags[i - 1], PosTag::Determiner | PosTag::Adjective)
            {
                tags[i] = PosTag::Adjective;
            }
            // Sentence-initial capital verbs misclassified as nouns are
            // beyond a rule tagger; but noun directly after a pronoun and
            // before a determiner is almost surely a verb ("it causes the").
            if tags[i] == PosTag::Noun
                && i > 0
                && tags[i - 1] == PosTag::Pronoun
                && i + 1 < tags.len()
                && tags[i + 1] == PosTag::Determiner
            {
                tags[i] = PosTag::Verb;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn tag_sentence(lang: Language, s: &str) -> Vec<(String, PosTag)> {
        let toks = Tokenizer::new(lang).tokenize(s);
        let tagger = PosTagger::new(lang);
        let tags = tagger.tag(&toks);
        toks.into_iter()
            .zip(tags)
            .map(|(t, g)| (t.text, g))
            .collect()
    }

    #[test]
    fn english_noun_phrase() {
        let tagged = tag_sentence(Language::English, "the acute corneal injury");
        let tags: Vec<PosTag> = tagged.iter().map(|(_, t)| *t).collect();
        assert_eq!(
            tags,
            vec![
                PosTag::Determiner,
                PosTag::Adjective,
                PosTag::Adjective,
                PosTag::Noun
            ]
        );
    }

    #[test]
    fn english_prepositional_np() {
        let tagged = tag_sentence(Language::English, "carcinoma of the liver");
        let tags: Vec<PosTag> = tagged.iter().map(|(_, t)| *t).collect();
        assert_eq!(
            tags,
            vec![
                PosTag::Noun,
                PosTag::Preposition,
                PosTag::Determiner,
                PosTag::Noun
            ]
        );
    }

    #[test]
    fn unknown_word_defaults_to_noun() {
        let tagged = tag_sentence(Language::English, "zygomaticus");
        assert_eq!(tagged[0].1, PosTag::Noun);
    }

    #[test]
    fn participial_adjective_repair() {
        let tagged = tag_sentence(Language::English, "the injured cornea");
        assert_eq!(tagged[1].1, PosTag::Adjective);
    }

    #[test]
    fn numbers_and_punctuation() {
        let tagged = tag_sentence(Language::English, "grade 3 injury.");
        assert_eq!(tagged[1].1, PosTag::Number);
        assert_eq!(tagged[3].1, PosTag::Punctuation);
    }

    #[test]
    fn french_noun_phrase() {
        let tagged = tag_sentence(Language::French, "l'hépatite chronique du foie");
        let tags: Vec<PosTag> = tagged.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags[0], PosTag::Determiner);
        assert_eq!(tags[1], PosTag::Noun);
        assert_eq!(tags[2], PosTag::Adjective);
        assert_eq!(tags[3], PosTag::Preposition);
        assert_eq!(tags[4], PosTag::Noun);
    }

    #[test]
    fn spanish_noun_phrase() {
        let tagged = tag_sentence(Language::Spanish, "la infección crónica del hígado");
        let tags: Vec<PosTag> = tagged.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags[0], PosTag::Determiner);
        assert_eq!(tags[1], PosTag::Noun);
        assert_eq!(tags[2], PosTag::Adjective);
        assert_eq!(tags[3], PosTag::Preposition);
    }

    #[test]
    fn output_length_matches_input() {
        let toks = Tokenizer::new(Language::English)
            .tokenize("Corneal injuries are treated with amniotic membrane grafts.");
        let tags = PosTagger::new(Language::English).tag(&toks);
        assert_eq!(tags.len(), toks.len());
    }

    #[test]
    fn alphanumeric_is_nominal() {
        let tagged = tag_sentence(Language::English, "p53 expression");
        assert_eq!(tagged[0].1, PosTag::Noun);
    }
}
