//! The coarse POS tag set.

use std::fmt;
use std::str::FromStr;

/// Coarse part-of-speech tags — the granularity the linguistic term
/// patterns need (cf. the BIOTEX pattern inventory, which is defined over
/// {N, A, P, C, D, V, ...}).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PosTag {
    /// Noun (common or proper).
    Noun,
    /// Verb (all inflections).
    Verb,
    /// Adjective (including participial adjectives in NP context).
    Adjective,
    /// Adverb.
    Adverb,
    /// Determiner / article.
    Determiner,
    /// Preposition.
    Preposition,
    /// Coordinating or subordinating conjunction.
    Conjunction,
    /// Pronoun.
    Pronoun,
    /// Numeral.
    Number,
    /// Punctuation.
    Punctuation,
    /// Anything else (symbols, foreign material).
    Other,
}

impl PosTag {
    /// All tags, in a stable order.
    pub const ALL: [PosTag; 11] = [
        PosTag::Noun,
        PosTag::Verb,
        PosTag::Adjective,
        PosTag::Adverb,
        PosTag::Determiner,
        PosTag::Preposition,
        PosTag::Conjunction,
        PosTag::Pronoun,
        PosTag::Number,
        PosTag::Punctuation,
        PosTag::Other,
    ];

    /// Single-letter code used in pattern strings (`"N A N"` etc.).
    pub fn code(self) -> char {
        match self {
            PosTag::Noun => 'N',
            PosTag::Verb => 'V',
            PosTag::Adjective => 'A',
            PosTag::Adverb => 'R',
            PosTag::Determiner => 'D',
            PosTag::Preposition => 'P',
            PosTag::Conjunction => 'C',
            PosTag::Pronoun => 'O',
            PosTag::Number => 'M',
            PosTag::Punctuation => 'U',
            PosTag::Other => 'X',
        }
    }

    /// Parse a single-letter code.
    pub fn from_code(c: char) -> Option<PosTag> {
        Some(match c.to_ascii_uppercase() {
            'N' => PosTag::Noun,
            'V' => PosTag::Verb,
            'A' => PosTag::Adjective,
            'R' => PosTag::Adverb,
            'D' => PosTag::Determiner,
            'P' => PosTag::Preposition,
            'C' => PosTag::Conjunction,
            'O' => PosTag::Pronoun,
            'M' => PosTag::Number,
            'U' => PosTag::Punctuation,
            'X' => PosTag::Other,
            _ => return None,
        })
    }

    /// Can this tag appear inside a candidate term at all?
    pub fn is_term_internal(self) -> bool {
        matches!(
            self,
            PosTag::Noun | PosTag::Adjective | PosTag::Preposition | PosTag::Number
        )
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Error for unknown tag codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTag(pub char);

impl fmt::Display for UnknownTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown POS tag code {:?}", self.0)
    }
}

impl std::error::Error for UnknownTag {}

impl FromStr for PosTag {
    type Err = UnknownTag;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => PosTag::from_code(c).ok_or(UnknownTag(c)),
            _ => Err(UnknownTag(s.chars().next().unwrap_or('?'))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for tag in PosTag::ALL {
            assert_eq!(PosTag::from_code(tag.code()), Some(tag));
            assert_eq!(tag.code().to_string().parse::<PosTag>().unwrap(), tag);
        }
    }

    #[test]
    fn codes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for tag in PosTag::ALL {
            assert!(seen.insert(tag.code()), "duplicate code {}", tag.code());
        }
    }

    #[test]
    fn term_internal_tags() {
        assert!(PosTag::Noun.is_term_internal());
        assert!(PosTag::Adjective.is_term_internal());
        assert!(PosTag::Preposition.is_term_internal());
        assert!(!PosTag::Verb.is_term_internal());
        assert!(!PosTag::Determiner.is_term_internal());
    }

    #[test]
    fn unknown_code() {
        assert_eq!(PosTag::from_code('Z'), None);
        assert!("Z".parse::<PosTag>().is_err());
        assert!("NA".parse::<PosTag>().is_err());
    }
}
