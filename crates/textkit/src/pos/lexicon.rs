//! Closed-class lexicons and suffix rules for the POS tagger.

use crate::lang::Language;
use crate::pos::tags::PosTag;
use std::collections::HashMap;

/// A compiled lexicon: exact-match closed-class words plus ordered suffix
/// rules for open-class words.
#[derive(Debug, Clone)]
pub struct Lexicon {
    words: HashMap<&'static str, PosTag>,
    /// `(suffix, tag)` — checked longest-suffix-first by construction order.
    suffixes: Vec<(&'static str, PosTag)>,
}

impl Lexicon {
    /// Build the lexicon for `lang`.
    pub fn for_language(lang: Language) -> Self {
        match lang {
            Language::English => build(EN_WORDS, EN_SUFFIXES),
            Language::French => build(FR_WORDS, FR_SUFFIXES),
            Language::Spanish => build(ES_WORDS, ES_SUFFIXES),
        }
    }

    /// Exact lookup of a (lower-case) word.
    pub fn lookup(&self, word: &str) -> Option<PosTag> {
        self.words.get(word).copied()
    }

    /// Suffix-rule classification; `None` if no rule matches.
    pub fn by_suffix(&self, word: &str) -> Option<PosTag> {
        self.suffixes
            .iter()
            .find(|(suf, _)| word.len() > suf.len() && word.ends_with(suf))
            .map(|(_, tag)| *tag)
    }

    /// Number of exact-match entries.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the exact-match table is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

fn build(words: &[(&'static str, PosTag)], suffixes: &[(&'static str, PosTag)]) -> Lexicon {
    let mut sorted_suffixes = suffixes.to_vec();
    // Longest suffix first so "-ization" beats "-ion".
    sorted_suffixes.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(b.0)));
    Lexicon {
        words: words.iter().copied().collect(),
        suffixes: sorted_suffixes,
    }
}

use PosTag::*;

const EN_WORDS: &[(&str, PosTag)] = &[
    // Determiners.
    ("the", Determiner),
    ("a", Determiner),
    ("an", Determiner),
    ("this", Determiner),
    ("that", Determiner),
    ("these", Determiner),
    ("those", Determiner),
    ("each", Determiner),
    ("every", Determiner),
    ("some", Determiner),
    ("any", Determiner),
    ("no", Determiner),
    ("all", Determiner),
    ("both", Determiner),
    ("several", Determiner),
    ("most", Determiner),
    // Prepositions.
    ("of", Preposition),
    ("in", Preposition),
    ("on", Preposition),
    ("for", Preposition),
    ("with", Preposition),
    ("by", Preposition),
    ("to", Preposition),
    ("from", Preposition),
    ("at", Preposition),
    ("into", Preposition),
    ("during", Preposition),
    ("after", Preposition),
    ("before", Preposition),
    ("between", Preposition),
    ("under", Preposition),
    ("among", Preposition),
    ("within", Preposition),
    ("without", Preposition),
    ("through", Preposition),
    ("against", Preposition),
    ("via", Preposition),
    // Conjunctions.
    ("and", Conjunction),
    ("or", Conjunction),
    ("but", Conjunction),
    ("because", Conjunction),
    ("although", Conjunction),
    ("whereas", Conjunction),
    ("while", Conjunction),
    ("if", Conjunction),
    ("than", Conjunction),
    // Pronouns.
    ("it", Pronoun),
    ("its", Pronoun),
    ("they", Pronoun),
    ("their", Pronoun),
    ("we", Pronoun),
    ("our", Pronoun),
    ("he", Pronoun),
    ("she", Pronoun),
    ("his", Pronoun),
    ("her", Pronoun),
    ("which", Pronoun),
    ("who", Pronoun),
    ("whom", Pronoun),
    ("i", Pronoun),
    ("you", Pronoun),
    // Common verbs (incl. auxiliaries and abstract-register verbs).
    ("is", Verb),
    ("are", Verb),
    ("was", Verb),
    ("were", Verb),
    ("be", Verb),
    ("been", Verb),
    ("being", Verb),
    ("has", Verb),
    ("have", Verb),
    ("had", Verb),
    ("do", Verb),
    ("does", Verb),
    ("did", Verb),
    ("can", Verb),
    ("could", Verb),
    ("may", Verb),
    ("might", Verb),
    ("will", Verb),
    ("would", Verb),
    ("should", Verb),
    ("must", Verb),
    ("show", Verb),
    ("shows", Verb),
    ("showed", Verb),
    ("shown", Verb),
    ("suggest", Verb),
    ("suggests", Verb),
    ("indicate", Verb),
    ("indicates", Verb),
    ("cause", Verb),
    ("causes", Verb),
    ("caused", Verb),
    ("induce", Verb),
    ("induces", Verb),
    ("induced", Verb),
    ("treat", Verb),
    ("treats", Verb),
    ("treated", Verb),
    ("heal", Verb),
    ("heals", Verb),
    ("healed", Verb),
    ("cure", Verb),
    ("cures", Verb),
    ("cured", Verb),
    ("affect", Verb),
    ("affects", Verb),
    ("affected", Verb),
    ("reveal", Verb),
    ("reveals", Verb),
    ("remains", Verb),
    ("involve", Verb),
    ("involves", Verb),
    ("involved", Verb),
    ("require", Verb),
    ("requires", Verb),
    ("required", Verb),
    ("observed", Verb),
    ("reported", Verb),
    ("associated", Verb),
    ("compared", Verb),
    ("performed", Verb),
    ("used", Verb),
    ("using", Verb),
    ("including", Preposition),
    ("results", Verb),
    ("result", Verb),
    ("presents", Verb),
    ("present", Verb),
    ("occurs", Verb),
    ("occur", Verb),
    // Common adverbs.
    ("not", Adverb),
    ("also", Adverb),
    ("often", Adverb),
    ("however", Adverb),
    ("significantly", Adverb),
    ("respectively", Adverb),
    ("moreover", Adverb),
    ("furthermore", Adverb),
    ("therefore", Adverb),
    ("thus", Adverb),
    ("here", Adverb),
    ("well", Adverb),
    ("more", Adverb),
    ("less", Adverb),
    ("very", Adverb),
    // Common adjectives that the suffix rules would miss.
    ("acute", Adjective),
    ("chronic", Adjective),
    ("severe", Adjective),
    ("mild", Adjective),
    ("human", Adjective),
    ("new", Adjective),
    ("high", Adjective),
    ("low", Adjective),
    ("early", Adjective),
    ("late", Adjective),
    ("common", Adjective),
    ("rare", Adjective),
    ("large", Adjective),
    ("small", Adjective),
    ("major", Adjective),
    ("minor", Adjective),
    ("left", Adjective),
    ("right", Adjective),
    ("first", Adjective),
    ("second", Adjective),
    ("benign", Adjective),
    ("malignant", Adjective),
    ("distal", Adjective),
    ("proximal", Adjective),
    ("bilateral", Adjective),
    ("ocular", Adjective),
    ("corneal", Adjective),
    ("renal", Adjective),
    ("hepatic", Adjective),
    ("cardiac", Adjective),
    ("pulmonary", Adjective),
    ("gastric", Adjective),
    ("neural", Adjective),
    ("vascular", Adjective),
    ("cutaneous", Adjective),
    ("clinical", Adjective),
    ("surgical", Adjective),
];

const EN_SUFFIXES: &[(&str, PosTag)] = &[
    // Nominal derivational suffixes (biomedical-heavy).
    ("ization", Noun),
    ("isation", Noun),
    ("ation", Noun),
    ("ition", Noun),
    ("ment", Noun),
    ("ness", Noun),
    ("ity", Noun),
    ("ism", Noun),
    ("itis", Noun),
    ("osis", Noun),
    ("oma", Noun),
    ("emia", Noun),
    ("aemia", Noun),
    ("pathy", Noun),
    ("ology", Noun),
    ("graphy", Noun),
    ("scopy", Noun),
    ("ectomy", Noun),
    ("plasty", Noun),
    ("trophy", Noun),
    ("gram", Noun),
    ("cyte", Noun),
    ("blast", Noun),
    ("genesis", Noun),
    ("plasia", Noun),
    ("sclerosis", Noun),
    ("stenosis", Noun),
    ("ance", Noun),
    ("ence", Noun),
    ("ship", Noun),
    ("ure", Noun),
    ("age", Noun),
    ("ery", Noun),
    ("or", Noun),
    ("er", Noun),
    // Adjectival suffixes.
    ("ical", Adjective),
    ("ological", Adjective),
    ("ous", Adjective),
    ("ious", Adjective),
    ("eous", Adjective),
    ("al", Adjective),
    ("ar", Adjective),
    ("ary", Adjective),
    ("ic", Adjective),
    ("ive", Adjective),
    ("able", Adjective),
    ("ible", Adjective),
    ("ful", Adjective),
    ("less", Adjective),
    ("oid", Adjective),
    ("genic", Adjective),
    ("tropic", Adjective),
    // Adverbs.
    ("ly", Adverb),
    // Verbal suffixes. "-ed"/"-ing" are short and noisy, but the
    // contextual repair in the tagger reclassifies participles inside NPs.
    ("ize", Verb),
    ("ise", Verb),
    ("ify", Verb),
    ("ates", Verb),
    ("ed", Verb),
    ("ing", Verb),
];

const FR_WORDS: &[(&str, PosTag)] = &[
    ("le", Determiner),
    ("la", Determiner),
    ("les", Determiner),
    ("un", Determiner),
    ("une", Determiner),
    ("des", Determiner),
    ("l'", Determiner),
    ("ce", Determiner),
    ("cette", Determiner),
    ("ces", Determiner),
    ("cet", Determiner),
    ("chaque", Determiner),
    ("plusieurs", Determiner),
    ("tout", Determiner),
    ("toute", Determiner),
    ("tous", Determiner),
    ("toutes", Determiner),
    ("de", Preposition),
    ("d'", Preposition),
    ("du", Preposition),
    ("à", Preposition),
    ("au", Preposition),
    ("aux", Preposition),
    ("en", Preposition),
    ("dans", Preposition),
    ("par", Preposition),
    ("pour", Preposition),
    ("sur", Preposition),
    ("avec", Preposition),
    ("sans", Preposition),
    ("sous", Preposition),
    ("chez", Preposition),
    ("entre", Preposition),
    ("vers", Preposition),
    ("avant", Preposition),
    ("après", Preposition),
    ("pendant", Preposition),
    ("et", Conjunction),
    ("ou", Conjunction),
    ("mais", Conjunction),
    ("car", Conjunction),
    ("donc", Conjunction),
    ("si", Conjunction),
    ("que", Conjunction),
    ("qu'", Conjunction),
    ("il", Pronoun),
    ("elle", Pronoun),
    ("ils", Pronoun),
    ("elles", Pronoun),
    ("on", Pronoun),
    ("nous", Pronoun),
    ("qui", Pronoun),
    ("dont", Pronoun),
    ("se", Pronoun),
    ("s'", Pronoun),
    ("est", Verb),
    ("sont", Verb),
    ("était", Verb),
    ("étaient", Verb),
    ("être", Verb),
    ("a", Verb),
    ("ont", Verb),
    ("avait", Verb),
    ("avoir", Verb),
    ("peut", Verb),
    ("peuvent", Verb),
    ("doit", Verb),
    ("montre", Verb),
    ("montrent", Verb),
    ("provoque", Verb),
    ("provoquent", Verb),
    ("entraîne", Verb),
    ("présente", Verb),
    ("présentent", Verb),
    ("observe", Verb),
    ("observée", Verb),
    ("ne", Adverb),
    ("pas", Adverb),
    ("plus", Adverb),
    ("très", Adverb),
    ("souvent", Adverb),
    ("aussi", Adverb),
    ("ainsi", Adverb),
    ("cependant", Adverb),
    ("aigu", Adjective),
    ("aiguë", Adjective),
    ("chronique", Adjective),
    ("sévère", Adjective),
    ("grave", Adjective),
    ("humain", Adjective),
    ("humaine", Adjective),
    ("nouveau", Adjective),
    ("nouvelle", Adjective),
    ("gauche", Adjective),
    ("droit", Adjective),
    ("droite", Adjective),
];

const FR_SUFFIXES: &[(&str, PosTag)] = &[
    ("tion", Noun),
    ("sion", Noun),
    ("ité", Noun),
    ("isme", Noun),
    ("ite", Noun),
    ("ose", Noun),
    ("ome", Noun),
    ("émie", Noun),
    ("pathie", Noun),
    ("logie", Noun),
    ("graphie", Noun),
    ("scopie", Noun),
    ("ectomie", Noun),
    ("plastie", Noun),
    ("ance", Noun),
    ("ence", Noun),
    ("ment", Adverb),
    ("eur", Noun),
    ("euse", Noun),
    ("age", Noun),
    ("ade", Noun),
    ("ie", Noun),
    ("ique", Adjective),
    ("iques", Adjective),
    ("al", Adjective),
    ("ale", Adjective),
    ("aux", Adjective),
    ("ales", Adjective),
    ("if", Adjective),
    ("ive", Adjective),
    ("ifs", Adjective),
    ("ives", Adjective),
    ("eux", Adjective),
    ("euses", Adjective),
    ("aire", Adjective),
    ("aires", Adjective),
    ("ienne", Adjective),
    ("oïde", Adjective),
    ("er", Verb),
    ("ir", Verb),
    ("ée", Verb),
    ("és", Verb),
    ("ées", Verb),
];

const ES_WORDS: &[(&str, PosTag)] = &[
    ("el", Determiner),
    ("la", Determiner),
    ("los", Determiner),
    ("las", Determiner),
    ("un", Determiner),
    ("una", Determiner),
    ("unos", Determiner),
    ("unas", Determiner),
    ("este", Determiner),
    ("esta", Determiner),
    ("estos", Determiner),
    ("estas", Determiner),
    ("cada", Determiner),
    ("varios", Determiner),
    ("varias", Determiner),
    ("todo", Determiner),
    ("toda", Determiner),
    ("todos", Determiner),
    ("todas", Determiner),
    ("de", Preposition),
    ("del", Preposition),
    ("a", Preposition),
    ("al", Preposition),
    ("en", Preposition),
    ("por", Preposition),
    ("para", Preposition),
    ("con", Preposition),
    ("sin", Preposition),
    ("sobre", Preposition),
    ("entre", Preposition),
    ("desde", Preposition),
    ("hasta", Preposition),
    ("durante", Preposition),
    ("ante", Preposition),
    ("bajo", Preposition),
    ("tras", Preposition),
    ("y", Conjunction),
    ("e", Conjunction),
    ("o", Conjunction),
    ("u", Conjunction),
    ("pero", Conjunction),
    ("porque", Conjunction),
    ("aunque", Conjunction),
    ("que", Conjunction),
    ("si", Conjunction),
    ("él", Pronoun),
    ("ella", Pronoun),
    ("ellos", Pronoun),
    ("ellas", Pronoun),
    ("se", Pronoun),
    ("nos", Pronoun),
    ("quien", Pronoun),
    ("cual", Pronoun),
    ("es", Verb),
    ("son", Verb),
    ("era", Verb),
    ("eran", Verb),
    ("ser", Verb),
    ("fue", Verb),
    ("fueron", Verb),
    ("ha", Verb),
    ("han", Verb),
    ("había", Verb),
    ("haber", Verb),
    ("puede", Verb),
    ("pueden", Verb),
    ("debe", Verb),
    ("muestra", Verb),
    ("muestran", Verb),
    ("causa", Verb),
    ("causan", Verb),
    ("presenta", Verb),
    ("presentan", Verb),
    ("produce", Verb),
    ("producen", Verb),
    ("observa", Verb),
    ("no", Adverb),
    ("más", Adverb),
    ("muy", Adverb),
    ("también", Adverb),
    ("frecuentemente", Adverb),
    ("así", Adverb),
    ("además", Adverb),
    ("agudo", Adjective),
    ("aguda", Adjective),
    ("crónico", Adjective),
    ("crónica", Adjective),
    ("grave", Adjective),
    ("severo", Adjective),
    ("severa", Adjective),
    ("humano", Adjective),
    ("humana", Adjective),
    ("nuevo", Adjective),
    ("nueva", Adjective),
    ("izquierdo", Adjective),
    ("derecho", Adjective),
];

const ES_SUFFIXES: &[(&str, PosTag)] = &[
    ("ción", Noun),
    ("sión", Noun),
    ("ciones", Noun),
    ("dad", Noun),
    ("dades", Noun),
    ("ismo", Noun),
    ("itis", Noun),
    ("osis", Noun),
    ("oma", Noun),
    ("emia", Noun),
    ("patía", Noun),
    ("logía", Noun),
    ("grafía", Noun),
    ("scopia", Noun),
    ("ectomía", Noun),
    ("plastia", Noun),
    ("miento", Noun),
    ("ancia", Noun),
    ("encia", Noun),
    ("ura", Noun),
    ("aje", Noun),
    ("mente", Adverb),
    ("ico", Adjective),
    ("ica", Adjective),
    ("icos", Adjective),
    ("icas", Adjective),
    ("al", Adjective),
    ("ales", Adjective),
    ("ivo", Adjective),
    ("iva", Adjective),
    ("ario", Adjective),
    ("aria", Adjective),
    ("oso", Adjective),
    ("osa", Adjective),
    ("osos", Adjective),
    ("osas", Adjective),
    ("ar", Verb),
    ("er", Verb),
    ("ir", Verb),
    ("ado", Verb),
    ("ada", Verb),
    ("ido", Verb),
    ("ida", Verb),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_lookup() {
        let en = Lexicon::for_language(Language::English);
        assert_eq!(en.lookup("the"), Some(Determiner));
        assert_eq!(en.lookup("of"), Some(Preposition));
        assert_eq!(en.lookup("and"), Some(Conjunction));
        assert_eq!(en.lookup("hepatitis"), None);
    }

    #[test]
    fn suffix_rules_english() {
        let en = Lexicon::for_language(Language::English);
        assert_eq!(en.by_suffix("hepatitis"), Some(Noun));
        assert_eq!(en.by_suffix("carcinoma"), Some(Noun));
        assert_eq!(en.by_suffix("inflammation"), Some(Noun));
        assert_eq!(en.by_suffix("infectious"), Some(Adjective));
        assert_eq!(en.by_suffix("rapidly"), Some(Adverb));
    }

    #[test]
    fn longest_suffix_wins() {
        let en = Lexicon::for_language(Language::English);
        // "-ization" (Noun) must beat "-al"/"-ic" fragments.
        assert_eq!(en.by_suffix("immunization"), Some(Noun));
        // "-ical" (Adjective) must beat "-al" alone — same result but via
        // the longer rule; and "-ological" beats "-ical".
        assert_eq!(en.by_suffix("pathological"), Some(Adjective));
    }

    #[test]
    fn suffix_rules_french_spanish() {
        let fr = Lexicon::for_language(Language::French);
        assert_eq!(fr.by_suffix("hépatite"), Some(Noun));
        assert_eq!(fr.by_suffix("hépatique"), Some(Adjective));
        let es = Lexicon::for_language(Language::Spanish);
        assert_eq!(es.by_suffix("infección"), Some(Noun));
        assert_eq!(es.by_suffix("hepático"), Some(Adjective));
    }

    #[test]
    fn suffix_requires_proper_superstring() {
        let en = Lexicon::for_language(Language::English);
        // The whole word equals the suffix — rule must not fire.
        assert_eq!(en.by_suffix("ation"), None);
    }

    #[test]
    fn lexicons_nonempty() {
        for lang in Language::ALL {
            let lex = Lexicon::for_language(lang);
            assert!(lex.len() > 50, "{lang}");
            assert!(!lex.is_empty());
        }
    }
}
