//! Part-of-speech tagging.
//!
//! BIOTEX's linguistic filter keeps only token sequences that match noun-
//! phrase patterns; that requires POS tags. The paper used TreeTagger;
//! here we build a deterministic **lexicon + suffix-rule tagger** (see
//! DESIGN.md substitution #7): closed-class words come from per-language
//! lexicons, open-class words are classified by derivational suffix, and
//! the default class is *noun* — which is both the correct prior in
//! biomedical abstracts and the behaviour the synthetic corpus generator
//! is calibrated against.

pub mod lexicon;
pub mod tagger;
pub mod tags;

pub use tagger::PosTagger;
pub use tags::PosTag;
