//! Linguistic term patterns.
//!
//! BIOTEX filters candidate terms with POS-tag patterns learned from a
//! reference term bank (the IRJ-2016 paper ranks ~200 patterns by how many
//! UMLS terms instantiate them). We embed the high-mass head of that
//! distribution per language, with weights that reproduce its shape: a few
//! very productive noun-phrase skeletons carry most of the probability.
//! The weight is exactly what LIDF-value consumes as P(pattern | term).

use crate::lang::Language;
use crate::pos::tags::PosTag;

/// One POS-tag pattern with its prior probability among reference terms.
#[derive(Debug, Clone, PartialEq)]
pub struct TermPattern {
    /// The tag sequence, e.g. `[Adjective, Noun]` for "corneal injuries".
    pub tags: Vec<PosTag>,
    /// P(pattern) among reference-ontology terms — the LIDF prior.
    pub weight: f64,
}

impl TermPattern {
    /// Construct a pattern from single-letter codes, e.g. `"A N"`.
    ///
    /// # Panics
    /// Panics on an unknown code — patterns are compile-time data.
    pub fn parse(codes: &str, weight: f64) -> Self {
        let tags = codes
            .split_whitespace()
            .map(|c| {
                let ch = c.chars().next().expect("nonempty code");
                PosTag::from_code(ch).unwrap_or_else(|| panic!("bad POS code {c:?}"))
            })
            .collect();
        TermPattern { tags, weight }
    }

    /// Length of the pattern in tokens.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the pattern is empty (never true for built-ins).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// A compiled, per-language set of term patterns.
#[derive(Debug, Clone)]
pub struct PatternSet {
    lang: Language,
    patterns: Vec<TermPattern>,
    max_len: usize,
}

/// A candidate-term occurrence found by pattern matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMatch {
    /// Start token index.
    pub start: usize,
    /// Number of tokens covered.
    pub len: usize,
    /// Index into [`PatternSet::patterns`].
    pub pattern: usize,
}

impl PatternSet {
    /// The built-in pattern inventory for `lang`.
    pub fn for_language(lang: Language) -> Self {
        let raw: &[(&str, f64)] = match lang {
            // English: adjective-noun and noun-noun compounds dominate.
            Language::English => &[
                ("N", 0.201),
                ("A N", 0.185),
                ("N N", 0.166),
                ("N N N", 0.078),
                ("A N N", 0.065),
                ("A A N", 0.042),
                ("N P N", 0.040),
                ("N A N", 0.012),
                ("A N N N", 0.010),
                ("N N N N", 0.009),
                ("N P A N", 0.008),
                ("N P N N", 0.007),
                ("A A N N", 0.006),
                ("N P D N", 0.005),
                ("A N P N", 0.004),
            ],
            // French: noun-adjective order, de-phrases very productive.
            Language::French => &[
                ("N", 0.198),
                ("N A", 0.190),
                ("N P N", 0.137),
                ("N A A", 0.040),
                ("N P N A", 0.027),
                ("N A P N", 0.022),
                ("N P D N", 0.021),
                ("A N", 0.019),
                ("N P N P N", 0.009),
                ("N N", 0.008),
                ("N P A N", 0.006),
                ("N A A A", 0.004),
            ],
            // Spanish: same romance structure as French.
            Language::Spanish => &[
                ("N", 0.196),
                ("N A", 0.188),
                ("N P N", 0.141),
                ("N A A", 0.038),
                ("N P N A", 0.028),
                ("N A P N", 0.021),
                ("N P D N", 0.019),
                ("A N", 0.015),
                ("N N", 0.007),
                ("N P A N", 0.006),
            ],
        };
        let patterns: Vec<TermPattern> = raw
            .iter()
            .map(|(codes, w)| TermPattern::parse(codes, *w))
            .collect();
        let max_len = patterns.iter().map(TermPattern::len).max().unwrap_or(0);
        PatternSet {
            lang,
            patterns,
            max_len,
        }
    }

    /// The language this set belongs to.
    pub fn language(&self) -> Language {
        self.lang
    }

    /// The patterns, in decreasing-weight order.
    pub fn patterns(&self) -> &[TermPattern] {
        &self.patterns
    }

    /// Longest pattern length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The weight (prior probability) of pattern `idx`.
    pub fn weight(&self, idx: usize) -> f64 {
        self.patterns[idx].weight
    }

    /// Find the pattern matching an exact tag sequence, if any.
    pub fn find_exact(&self, tags: &[PosTag]) -> Option<usize> {
        self.patterns.iter().position(|p| p.tags == tags)
    }

    /// Enumerate every occurrence of every pattern over a tagged sentence.
    ///
    /// All matches are reported, including nested ones ("corneal injury"
    /// inside "acute corneal injury") — BIOTEX needs nested counts for
    /// C-value.
    pub fn matches(&self, tags: &[PosTag]) -> Vec<PatternMatch> {
        let mut out = Vec::new();
        for start in 0..tags.len() {
            for (pi, pat) in self.patterns.iter().enumerate() {
                let plen = pat.tags.len();
                if start + plen <= tags.len() && tags[start..start + plen] == pat.tags[..] {
                    out.push(PatternMatch {
                        start,
                        len: plen,
                        pattern: pi,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PosTag::*;

    #[test]
    fn parse_codes() {
        let p = TermPattern::parse("A N", 0.5);
        assert_eq!(p.tags, vec![Adjective, Noun]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn english_an_matches() {
        let set = PatternSet::for_language(Language::English);
        // "the acute corneal injury" → D A A N
        let tags = [Determiner, Adjective, Adjective, Noun];
        let ms = set.matches(&tags);
        // A A N at 1, A N at 2, N at 3.
        assert!(ms.iter().any(|m| m.start == 1
            && m.len == 3
            && set.patterns()[m.pattern].tags == [Adjective, Adjective, Noun]));
        assert!(ms.iter().any(|m| m.start == 2
            && m.len == 2
            && set.patterns()[m.pattern].tags == [Adjective, Noun]));
        assert!(ms.iter().any(|m| m.start == 3 && m.len == 1));
    }

    #[test]
    fn nested_matches_are_reported() {
        let set = PatternSet::for_language(Language::English);
        // N N N contains two N N and three N.
        let tags = [Noun, Noun, Noun];
        let ms = set.matches(&tags);
        let count_len = |l: usize| ms.iter().filter(|m| m.len == l).count();
        assert_eq!(count_len(3), 1);
        assert_eq!(count_len(2), 2);
        assert_eq!(count_len(1), 3);
    }

    #[test]
    fn weights_sum_below_one_and_decrease() {
        for lang in Language::ALL {
            let set = PatternSet::for_language(lang);
            let sum: f64 = set.patterns().iter().map(|p| p.weight).sum();
            assert!(sum <= 1.0 + 1e-9, "{lang}: {sum}");
            assert!(sum > 0.5, "{lang}: pattern head mass too small: {sum}");
            for w in set.patterns().windows(2) {
                assert!(w[0].weight >= w[1].weight, "{lang}: not sorted");
            }
        }
    }

    #[test]
    fn find_exact() {
        let set = PatternSet::for_language(Language::English);
        let idx = set.find_exact(&[Adjective, Noun]).expect("A N exists");
        assert!((set.weight(idx) - 0.185).abs() < 1e-12);
        assert!(set.find_exact(&[Verb, Verb]).is_none());
    }

    #[test]
    fn french_noun_adjective_order() {
        let set = PatternSet::for_language(Language::French);
        // "hépatite chronique" → N A must match.
        assert!(set.find_exact(&[Noun, Adjective]).is_some());
    }

    #[test]
    fn max_len_consistent() {
        for lang in Language::ALL {
            let set = PatternSet::for_language(lang);
            assert_eq!(
                set.max_len(),
                set.patterns().iter().map(TermPattern::len).max().unwrap()
            );
        }
    }
}
