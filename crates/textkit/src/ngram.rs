//! N-gram extraction over token sequences.

use crate::token::Token;

/// An n-gram: a contiguous run of token texts joined by single spaces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ngram {
    /// The joined surface form.
    pub text: String,
    /// Start token index in the source sequence.
    pub start: usize,
    /// Number of tokens.
    pub len: usize,
}

/// Extract all n-grams of length `min_n..=max_n` whose tokens are all
/// lexical (words/numbers/identifiers — no punctuation inside an n-gram).
pub fn extract(tokens: &[Token], min_n: usize, max_n: usize) -> Vec<Ngram> {
    assert!(min_n >= 1, "min_n must be at least 1");
    assert!(min_n <= max_n, "min_n must not exceed max_n");
    let mut out = Vec::new();
    let n = tokens.len();
    for start in 0..n {
        if !tokens[start].kind.is_lexical() {
            continue;
        }
        let mut text = String::new();
        for len in 1..=max_n.min(n - start) {
            let tok = &tokens[start + len - 1];
            if !tok.kind.is_lexical() {
                break;
            }
            if len > 1 {
                text.push(' ');
            }
            text.push_str(&tok.text);
            if len >= min_n {
                out.push(Ngram {
                    text: text.clone(),
                    start,
                    len,
                });
            }
        }
    }
    out
}

/// Join a token slice into an n-gram surface form.
pub fn join(tokens: &[Token]) -> String {
    let mut s = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Language;
    use crate::tokenizer::Tokenizer;

    fn toks(s: &str) -> Vec<Token> {
        Tokenizer::new(Language::English).tokenize(s)
    }

    #[test]
    fn unigrams_and_bigrams() {
        let grams = extract(&toks("corneal injury repair"), 1, 2);
        let texts: Vec<&str> = grams.iter().map(|g| g.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "corneal",
                "corneal injury",
                "injury",
                "injury repair",
                "repair"
            ]
        );
    }

    #[test]
    fn punctuation_blocks_ngrams() {
        let grams = extract(&toks("injury, repair"), 2, 2);
        assert!(grams.is_empty());
    }

    #[test]
    fn start_indices_are_correct() {
        let tokens = toks("acute corneal injury");
        let grams = extract(&tokens, 3, 3);
        assert_eq!(grams.len(), 1);
        assert_eq!(grams[0].start, 0);
        assert_eq!(grams[0].len, 3);
        assert_eq!(grams[0].text, "acute corneal injury");
    }

    #[test]
    fn join_tokens() {
        let tokens = toks("eye injuries");
        assert_eq!(join(&tokens), "eye injuries");
        assert_eq!(join(&[]), "");
    }

    #[test]
    #[should_panic(expected = "min_n")]
    fn zero_min_n_panics() {
        let _ = extract(&[], 0, 2);
    }

    #[test]
    fn max_n_longer_than_input() {
        let grams = extract(&toks("cornea"), 1, 5);
        assert_eq!(grams.len(), 1);
    }
}
