//! String interning.
//!
//! Everything downstream of tokenization (indexes, co-occurrence graphs,
//! sparse vectors, clustering) operates on dense `u32` ids; the vocabulary
//! owns the id ↔ string mapping.

use std::collections::HashMap;
use std::fmt;

/// Interned token id. Dense, starting at 0, stable for the lifetime of the
/// owning [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An append-only string interner.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    by_text: HashMap<String, TokenId>,
    by_id: Vec<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text`, returning its stable id.
    pub fn intern(&mut self, text: &str) -> TokenId {
        if let Some(&id) = self.by_text.get(text) {
            return id;
        }
        let id = TokenId(u32::try_from(self.by_id.len()).expect("vocabulary exceeds u32 ids"));
        self.by_id.push(text.to_owned());
        self.by_text.insert(text.to_owned(), id);
        id
    }

    /// Look up an existing id without interning.
    pub fn get(&self, text: &str) -> Option<TokenId> {
        self.by_text.get(text).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn text(&self, id: TokenId) -> &str {
        &self.by_id[id.index()]
    }

    /// The string for `id`, or `None` if out of range.
    pub fn try_text(&self, id: TokenId) -> Option<&str> {
        self.by_id.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate `(id, text)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (TokenId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("cornea");
        let b = v.intern("cornea");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        let c = v.intern("gamma");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(v.text(b), "beta");
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocabulary::new();
        assert!(v.get("x").is_none());
        v.intern("x");
        assert!(v.get("x").is_some());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn iteration_in_id_order() {
        let mut v = Vocabulary::new();
        for w in ["c", "a", "b"] {
            v.intern(w);
        }
        let items: Vec<(u32, &str)> = v.iter().map(|(id, s)| (id.0, s)).collect();
        assert_eq!(items, vec![(0, "c"), (1, "a"), (2, "b")]);
    }

    #[test]
    fn try_text_out_of_range() {
        let v = Vocabulary::new();
        assert!(v.try_text(TokenId(0)).is_none());
    }

    #[test]
    fn display_token_id() {
        assert_eq!(TokenId(7).to_string(), "#7");
        assert_eq!(TokenId(7).index(), 7);
    }
}
