//! Language identifiers.
//!
//! The paper's workflow is applied to English, French and Spanish; every
//! language-sensitive component in this workspace (stopwords, stemmers,
//! POS lexicons, linguistic patterns, synthetic generators) is keyed by
//! [`Language`].

use std::fmt;
use std::str::FromStr;

/// The three languages the EDBT-2016 workflow targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// English (`en`).
    English,
    /// French (`fr`).
    French,
    /// Spanish (`es`).
    Spanish,
}

impl Language {
    /// All supported languages, in a stable order.
    pub const ALL: [Language; 3] = [Language::English, Language::French, Language::Spanish];

    /// ISO-639-1 code (`"en"`, `"fr"`, `"es"`).
    pub fn code(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::French => "fr",
            Language::Spanish => "es",
        }
    }

    /// Human-readable English name.
    pub fn name(self) -> &'static str {
        match self {
            Language::English => "English",
            Language::French => "French",
            Language::Spanish => "Spanish",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Error returned when parsing an unknown language code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownLanguage(pub String);

impl fmt::Display for UnknownLanguage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown language code: {:?}", self.0)
    }
}

impl std::error::Error for UnknownLanguage {}

impl FromStr for Language {
    type Err = UnknownLanguage;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "en" | "eng" | "english" => Ok(Language::English),
            "fr" | "fra" | "fre" | "french" => Ok(Language::French),
            "es" | "spa" | "spanish" => Ok(Language::Spanish),
            other => Err(UnknownLanguage(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for lang in Language::ALL {
            assert_eq!(lang.code().parse::<Language>().unwrap(), lang);
        }
    }

    #[test]
    fn parses_long_names_case_insensitively() {
        assert_eq!("English".parse::<Language>().unwrap(), Language::English);
        assert_eq!("FRENCH".parse::<Language>().unwrap(), Language::French);
        assert_eq!("Spanish".parse::<Language>().unwrap(), Language::Spanish);
    }

    #[test]
    fn unknown_code_is_an_error() {
        let err = "de".parse::<Language>().unwrap_err();
        assert_eq!(err, UnknownLanguage("de".into()));
        assert!(err.to_string().contains("de"));
    }

    #[test]
    fn display_matches_code() {
        assert_eq!(Language::English.to_string(), "en");
        assert_eq!(Language::French.to_string(), "fr");
        assert_eq!(Language::Spanish.to_string(), "es");
    }
}
