//! Per-language stopword lists.
//!
//! BIOTEX filters candidate terms that begin or end with a stopword; the
//! polysemy features and context vectors also drop stopwords. The lists
//! below are the standard function-word inventories for each language plus
//! a few tokens ubiquitous in scientific abstracts ("study", "results" are
//! deliberately *not* stopped — they are content words the paper's context
//! vectors legitimately use).

use crate::lang::Language;
use std::collections::HashSet;

/// English stopwords.
pub const ENGLISH: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "however",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "may",
    "me",
    "might",
    "more",
    "most",
    "must",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "within",
    "without",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// French stopwords.
pub const FRENCH: &[&str] = &[
    "a",
    "afin",
    "ai",
    "ainsi",
    "alors",
    "au",
    "aucun",
    "aucune",
    "aujourd'hui",
    "auquel",
    "aussi",
    "autre",
    "autres",
    "aux",
    "avant",
    "avec",
    "avoir",
    "c'",
    "car",
    "ce",
    "ceci",
    "cela",
    "celle",
    "celles",
    "celui",
    "cependant",
    "ces",
    "cet",
    "cette",
    "ceux",
    "chaque",
    "chez",
    "comme",
    "comment",
    "d'",
    "dans",
    "de",
    "depuis",
    "des",
    "donc",
    "dont",
    "du",
    "elle",
    "elles",
    "en",
    "encore",
    "entre",
    "est",
    "et",
    "etc",
    "eu",
    "fait",
    "faire",
    "fois",
    "hors",
    "il",
    "ils",
    "j'",
    "je",
    "l'",
    "la",
    "le",
    "les",
    "leur",
    "leurs",
    "lors",
    "lui",
    "là",
    "m'",
    "ma",
    "mais",
    "me",
    "mes",
    "mon",
    "même",
    "n'",
    "ne",
    "ni",
    "non",
    "nos",
    "notre",
    "nous",
    "on",
    "ont",
    "ou",
    "où",
    "par",
    "parce",
    "pas",
    "pendant",
    "peu",
    "peut",
    "plus",
    "pour",
    "pourquoi",
    "qu'",
    "quand",
    "que",
    "quel",
    "quelle",
    "quelles",
    "quels",
    "qui",
    "s'",
    "sa",
    "sans",
    "se",
    "selon",
    "ses",
    "si",
    "sinon",
    "soit",
    "son",
    "sont",
    "sous",
    "sur",
    "t'",
    "ta",
    "tandis",
    "te",
    "tes",
    "ton",
    "tous",
    "tout",
    "toute",
    "toutes",
    "tu",
    "un",
    "une",
    "vers",
    "via",
    "vos",
    "votre",
    "vous",
    "y",
    "à",
    "été",
    "être",
];

/// Spanish stopwords.
pub const SPANISH: &[&str] = &[
    "a",
    "al",
    "algo",
    "algunas",
    "algunos",
    "ante",
    "antes",
    "aquel",
    "aquella",
    "aquellas",
    "aquellos",
    "aquí",
    "así",
    "aunque",
    "bajo",
    "bien",
    "cada",
    "casi",
    "como",
    "con",
    "contra",
    "cual",
    "cuales",
    "cualquier",
    "cuando",
    "de",
    "del",
    "desde",
    "donde",
    "dos",
    "durante",
    "e",
    "el",
    "ella",
    "ellas",
    "ellos",
    "en",
    "entre",
    "era",
    "eran",
    "es",
    "esa",
    "esas",
    "ese",
    "eso",
    "esos",
    "esta",
    "estaba",
    "estas",
    "este",
    "esto",
    "estos",
    "están",
    "fue",
    "fueron",
    "ha",
    "había",
    "han",
    "hasta",
    "hay",
    "la",
    "las",
    "le",
    "les",
    "lo",
    "los",
    "luego",
    "mas",
    "me",
    "mi",
    "mientras",
    "muy",
    "más",
    "ni",
    "no",
    "nos",
    "nosotros",
    "nuestra",
    "nuestras",
    "nuestro",
    "nuestros",
    "o",
    "otra",
    "otras",
    "otro",
    "otros",
    "para",
    "pero",
    "poco",
    "por",
    "porque",
    "pues",
    "que",
    "quien",
    "quienes",
    "qué",
    "se",
    "según",
    "ser",
    "si",
    "sido",
    "sin",
    "sobre",
    "son",
    "su",
    "sus",
    "sí",
    "también",
    "tanto",
    "te",
    "tiene",
    "tienen",
    "toda",
    "todas",
    "todo",
    "todos",
    "tras",
    "tu",
    "tus",
    "un",
    "una",
    "unas",
    "uno",
    "unos",
    "y",
    "ya",
    "yo",
    "él",
];

/// A compiled stopword set for one language.
#[derive(Debug, Clone)]
pub struct StopwordSet {
    lang: Language,
    words: HashSet<&'static str>,
}

impl StopwordSet {
    /// Build the set for `lang`.
    pub fn for_language(lang: Language) -> Self {
        let list = match lang {
            Language::English => ENGLISH,
            Language::French => FRENCH,
            Language::Spanish => SPANISH,
        };
        StopwordSet {
            lang,
            words: list.iter().copied().collect(),
        }
    }

    /// The language of this set.
    pub fn language(&self) -> Language {
        self.lang
    }

    /// Is `word` (already lower-cased) a stopword?
    pub fn contains(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Number of stopwords in the set.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the set is empty (never true for built-in lists).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_basics() {
        let sw = StopwordSet::for_language(Language::English);
        assert!(sw.contains("the"));
        assert!(sw.contains("of"));
        assert!(!sw.contains("hepatitis"));
        assert!(!sw.contains("study"));
    }

    #[test]
    fn french_basics() {
        let sw = StopwordSet::for_language(Language::French);
        assert!(sw.contains("le"));
        assert!(sw.contains("d'"));
        assert!(sw.contains("à"));
        assert!(!sw.contains("hépatite"));
    }

    #[test]
    fn spanish_basics() {
        let sw = StopwordSet::for_language(Language::Spanish);
        assert!(sw.contains("el"));
        assert!(sw.contains("según"));
        assert!(!sw.contains("hepatitis"));
    }

    #[test]
    fn lists_are_lowercase_and_deduplicated() {
        for lang in Language::ALL {
            let list: &[&str] = match lang {
                Language::English => ENGLISH,
                Language::French => FRENCH,
                Language::Spanish => SPANISH,
            };
            let set: HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len(), "duplicates in {lang} list");
            for w in list {
                assert_eq!(&w.to_lowercase(), w, "non-lowercase word {w:?} in {lang}");
            }
        }
    }

    #[test]
    fn sets_are_nonempty() {
        for lang in Language::ALL {
            let sw = StopwordSet::for_language(lang);
            assert!(sw.len() > 100, "{lang} has only {} stopwords", sw.len());
            assert!(!sw.is_empty());
        }
    }
}
