//! Token types produced by the tokenizer.

use std::fmt;
use std::ops::Range;

/// Coarse lexical class of a token, decided by the tokenizer from surface
/// form alone (no context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (may contain internal hyphens or apostrophes,
    /// e.g. `beta-blocker`, `l'hépatite`).
    Word,
    /// A number, possibly with decimal point or sign (`12`, `3.5`).
    Number,
    /// Mixed alphanumeric identifier (`p53`, `COVID-19`).
    Alphanumeric,
    /// A single punctuation character.
    Punctuation,
    /// Anything else (symbols, emoji, stray bytes).
    Other,
}

impl TokenKind {
    /// Whether this token can participate in a candidate term.
    pub fn is_lexical(self) -> bool {
        matches!(
            self,
            TokenKind::Word | TokenKind::Number | TokenKind::Alphanumeric
        )
    }
}

/// A token: a slice of the source text plus its classification.
///
/// The surface form is stored owned (tokens outlive the source buffer in
/// the corpus pipeline); `span` records where in the original text the
/// token came from so callers can recover the raw surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized surface form (lower-cased, accents preserved).
    pub text: String,
    /// Byte range in the source string.
    pub span: Range<usize>,
    /// Lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Construct a token.
    pub fn new(text: impl Into<String>, span: Range<usize>, kind: TokenKind) -> Self {
        Token {
            text: text.into(),
            span,
            kind,
        }
    }

    /// Length of the normalized form in bytes.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if the normalized form is empty (never produced by the
    /// tokenizer; exists for completeness).
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_kinds() {
        assert!(TokenKind::Word.is_lexical());
        assert!(TokenKind::Number.is_lexical());
        assert!(TokenKind::Alphanumeric.is_lexical());
        assert!(!TokenKind::Punctuation.is_lexical());
        assert!(!TokenKind::Other.is_lexical());
    }

    #[test]
    fn token_display_and_len() {
        let t = Token::new("hepatitis", 0..9, TokenKind::Word);
        assert_eq!(t.to_string(), "hepatitis");
        assert_eq!(t.len(), 9);
        assert!(!t.is_empty());
    }
}
