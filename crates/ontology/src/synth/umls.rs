//! UMLS-like terminology with a calibrated polysemy profile.
//!
//! Table 1 of the paper reports, per language, how many UMLS/MeSH terms
//! are attached to 2, 3, 4 or 5+ concepts. The real releases are licensed;
//! this generator builds a terminology whose [`crate::polysemy`]
//! statistics reproduce a *given* profile exactly, so the statistics
//! machinery and the Table-1 experiment can be validated end to end.

use crate::model::{Ontology, OntologyBuilder};
use boe_textkit::Language;

/// A polysemy target profile: total distinct terms plus polysemic-term
/// counts for k = 2, 3, 4 and 5 ("5+" is generated as exactly 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolysemyProfile {
    /// Total distinct terms to end up with.
    pub total_terms: usize,
    /// Polysemic terms with exactly 2, 3, 4, 5 senses.
    pub counts: [usize; 4],
}

impl PolysemyProfile {
    /// The paper's Table-1 UMLS row for `lang`, scaled down by `divisor`
    /// (the English release has ~9.9M distinct terms; experiments use a
    /// 1/100 scale by default).
    pub fn umls(lang: Language, divisor: usize) -> Self {
        assert!(divisor >= 1);
        let (total, counts) = match lang {
            Language::English => (9_919_000usize, [54_257usize, 7_770, 1_842, 1_677]),
            // FR/ES UMLS sizes (order-of-magnitude realistic; Table 1 only
            // reports the polysemic counts).
            Language::French => (330_000, [1_292, 36, 1, 1]),
            Language::Spanish => (1_200_000, [10_906, 414, 56, 18]),
        };
        PolysemyProfile {
            total_terms: (total / divisor).max(1),
            counts: counts.map(|c| c / divisor),
        }
    }

    /// The paper's Table-1 MeSH row for `lang` (no scaling needed).
    pub fn mesh(lang: Language) -> Self {
        let (total, counts) = match lang {
            Language::English => (260_000usize, [178usize, 1, 0, 0]),
            Language::French => (26_000, [11, 0, 0, 0]),
            Language::Spanish => (25_000, [0, 0, 0, 0]),
        };
        PolysemyProfile {
            total_terms: total,
            counts,
        }
    }

    /// Minimum number of distinct terms this profile requires (polysemic
    /// shared terms + unique preferred terms of their concepts).
    pub fn min_terms(&self) -> usize {
        let shared: usize = self.counts.iter().sum();
        let concepts: usize = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i + 2) * c)
            .sum();
        shared + concepts
    }
}

/// Generator of UMLS-like terminologies.
#[derive(Debug)]
pub struct UmlsGenerator {
    lang: Language,
    profile: PolysemyProfile,
}

impl UmlsGenerator {
    /// A generator for `lang` targeting `profile`.
    ///
    /// # Panics
    /// Panics if the profile is unsatisfiable
    /// (`total_terms < profile.min_terms()`).
    pub fn new(lang: Language, profile: PolysemyProfile) -> Self {
        assert!(
            profile.total_terms >= profile.min_terms(),
            "profile needs at least {} terms, got {}",
            profile.min_terms(),
            profile.total_terms
        );
        UmlsGenerator { lang, profile }
    }

    /// Generate the terminology. Term strings are systematic
    /// (`shared-k3-17`, `mono-421`); Table-1 experiments only consume the
    /// counts, and systematic naming keeps generation O(total_terms) and
    /// collision-free.
    pub fn generate(&self) -> Ontology {
        let mut b = OntologyBuilder::new(format!("UMLS-like ({})", self.lang), self.lang);
        let mut distinct_terms = 0usize;
        // Polysemic structure: each shared term appears as a synonym of k
        // concepts, each concept having its own unique preferred term.
        for (i, &count) in self.profile.counts.iter().enumerate() {
            let k = i + 2;
            for t in 0..count {
                let shared = format!("shared-k{k}-{t}");
                distinct_terms += 1;
                for s in 0..k {
                    b.add_concept(format!("sense-k{k}-{t}-{s}"), vec![shared.clone()]);
                    distinct_terms += 1;
                }
            }
        }
        // Monosemous filler up to the target.
        let mut m = 0usize;
        while distinct_terms < self.profile.total_terms {
            b.add_concept(format!("mono-{m}"), vec![]);
            m += 1;
            distinct_terms += 1;
        }
        b.build().expect("flat terminology cannot cycle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polysemy::PolysemyStats;

    #[test]
    fn profile_is_reproduced_exactly() {
        let profile = PolysemyProfile {
            total_terms: 5_000,
            counts: [40, 10, 4, 2],
        };
        let onto = UmlsGenerator::new(Language::English, profile).generate();
        let stats = PolysemyStats::compute(&onto);
        assert_eq!(stats.table1_row(), [40, 10, 4, 2]);
        assert_eq!(stats.total_terms, 5_000);
    }

    #[test]
    fn umls_scaled_profile_shapes() {
        for lang in Language::ALL {
            let p = PolysemyProfile::umls(lang, 100);
            let onto = UmlsGenerator::new(lang, p).generate();
            let stats = PolysemyStats::compute(&onto);
            assert_eq!(stats.table1_row(), p.counts, "{lang}");
            // Decaying-in-k shape.
            let row = stats.table1_row();
            assert!(row[0] >= row[1] && row[1] >= row[2], "{lang}: {row:?}");
        }
    }

    #[test]
    fn english_polysemic_ratio_is_about_one_in_200() {
        let p = PolysemyProfile::umls(Language::English, 100);
        let onto = UmlsGenerator::new(Language::English, p).generate();
        let stats = PolysemyStats::compute(&onto);
        let ratio = stats.polysemic_ratio();
        assert!(
            (1.0 / 400.0..=1.0 / 100.0).contains(&ratio),
            "ratio {ratio} (~1/{})",
            (1.0 / ratio) as usize
        );
    }

    #[test]
    #[should_panic(expected = "profile needs")]
    fn unsatisfiable_profile_panics() {
        let p = PolysemyProfile {
            total_terms: 3,
            counts: [5, 0, 0, 0],
        };
        let _ = UmlsGenerator::new(Language::English, p);
    }

    #[test]
    fn mesh_profiles_match_paper_counts() {
        let en = PolysemyProfile::mesh(Language::English);
        assert_eq!(en.counts, [178, 1, 0, 0]);
        let fr = PolysemyProfile::mesh(Language::French);
        assert_eq!(fr.counts, [11, 0, 0, 0]);
        let es = PolysemyProfile::mesh(Language::Spanish);
        assert_eq!(es.counts, [0, 0, 0, 0]);
    }

    #[test]
    fn min_terms_formula() {
        let p = PolysemyProfile {
            total_terms: 100,
            counts: [2, 1, 0, 0],
        };
        // shared: 3; concepts: 2*2 + 3*1 = 7 → 10.
        assert_eq!(p.min_terms(), 10);
    }
}
