//! Synthetic terminology generators.
//!
//! * [`mesh`] — a MeSH-like is-a tree with synonym morphology, lexical
//!   parent/child relatedness and seeded determinism;
//! * [`umls`] — a UMLS-like flat terminology whose polysemy profile is
//!   calibrated to hit given Table-1 targets.

pub mod mesh;
pub mod umls;

pub use mesh::{MeshConfig, MeshGenerator};
pub use umls::{PolysemyProfile, UmlsGenerator};
