//! MeSH-like synthetic terminology.
//!
//! Generates an is-a tree whose labels are adjective–noun terms composed
//! from the same morpheme pools the corpus generators use, so that corpus
//! mentions and ontology labels align lexically. Children share lexical
//! material with their parents (the "corneal diseases" → "corneal ulcer"
//! pattern), and concepts carry 0–2 morphological synonyms — mirroring
//! MeSH entry terms.

use crate::model::{ConceptId, Ontology, OntologyBuilder};
use boe_corpus::synth::vocabgen::LexiconPools;
use boe_rng::StdRng;
use boe_textkit::Language;
use std::collections::HashSet;

/// Configuration for [`MeshGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Target number of concepts.
    pub n_concepts: usize,
    /// Children per internal node (inclusive range).
    pub branching: (usize, usize),
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Probability a child's label reuses its parent's qualifier
    /// (lexical relatedness).
    pub inherit_prob: f64,
    /// Expected synonyms per concept (0.0–2.0; each of 2 slots filled with
    /// probability `synonyms / 2`).
    pub synonyms: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            n_concepts: 500,
            branching: (2, 5),
            max_depth: 6,
            inherit_prob: 0.5,
            synonyms: 1.0,
            seed: 0x3E5A,
        }
    }
}

/// Generator of MeSH-like ontologies.
#[derive(Debug)]
pub struct MeshGenerator {
    lang: Language,
    config: MeshConfig,
}

impl MeshGenerator {
    /// A generator for `lang` under `config`.
    pub fn new(lang: Language, config: MeshConfig) -> Self {
        MeshGenerator { lang, config }
    }

    /// Generate the ontology. Also returns, per concept, the `(adjective,
    /// noun)` pair its preferred label was composed from — the corpus
    /// aligner uses these to build matching topic profiles.
    pub fn generate(&self) -> (Ontology, Vec<(String, String)>) {
        let cfg = &self.config;
        assert!(cfg.n_concepts >= 1, "need at least one concept");
        assert!(cfg.branching.0 >= 1 && cfg.branching.0 <= cfg.branching.1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pools = LexiconPools::generate(self.lang);
        let mut b = OntologyBuilder::new(format!("MeSH-like ({})", self.lang), self.lang);
        let mut used_labels: HashSet<String> = HashSet::new();
        let mut parts: Vec<(String, String)> = Vec::new();

        // Fresh unique (adjective, noun) label.
        let fresh_label = |rng: &mut StdRng,
                           used: &mut HashSet<String>,
                           adj_hint: Option<&str>|
         -> (String, String, String) {
            loop {
                let adj = match adj_hint {
                    Some(a) => a.to_owned(),
                    None => pools.adjectives[rng.gen_range(0..pools.adjectives.len())].clone(),
                };
                let noun = pools.nouns[rng.gen_range(0..pools.nouns.len())].clone();
                let label = compose(self.lang, &adj, &noun);
                if used.insert(label.clone()) {
                    return (label, adj, noun);
                }
                // Collision with a hint: drop the hint to escape.
                if adj_hint.is_some() && rng.gen_bool(0.5) {
                    return fresh_random(rng, &pools, self.lang, used);
                }
            }
        };

        // BFS construction.
        let mut frontier: Vec<(ConceptId, usize, String)> = Vec::new();
        {
            let (label, adj, noun) = fresh_label(&mut rng, &mut used_labels, None);
            let syns = self.synonyms_for(&mut rng, &pools, &adj, &noun, &mut used_labels);
            let root = b.add_concept(label, syns);
            parts.push((adj.clone(), noun));
            frontier.push((root, 0, adj));
        }
        let mut count = 1usize;
        let mut qi = 0usize;
        while count < cfg.n_concepts && qi < frontier.len() {
            let (parent, depth, parent_adj) = frontier[qi].clone();
            qi += 1;
            if depth >= cfg.max_depth {
                continue;
            }
            let n_children = rng.gen_range(cfg.branching.0..=cfg.branching.1);
            for _ in 0..n_children {
                if count >= cfg.n_concepts {
                    break;
                }
                let hint = if rng.gen_bool(cfg.inherit_prob) {
                    Some(parent_adj.as_str())
                } else {
                    None
                };
                let (label, adj, noun) = fresh_label(&mut rng, &mut used_labels, hint);
                let syns = self.synonyms_for(&mut rng, &pools, &adj, &noun, &mut used_labels);
                let id = b.add_concept(label, syns);
                b.add_is_a(id, parent);
                parts.push((adj.clone(), noun));
                frontier.push((id, depth + 1, adj));
                count += 1;
            }
        }
        let onto = b.build().expect("generator emits acyclic trees");
        (onto, parts)
    }

    /// Morphological synonyms: vary the noun or the adjective while keeping
    /// the other half — like MeSH entry terms ("corneal injury" /
    /// "corneal trauma" for "corneal injuries").
    fn synonyms_for(
        &self,
        rng: &mut StdRng,
        pools: &LexiconPools,
        adj: &str,
        noun: &str,
        used: &mut HashSet<String>,
    ) -> Vec<String> {
        let mut syns = Vec::new();
        for _ in 0..2 {
            if !rng.gen_bool(self.config.synonyms / 2.0) {
                continue;
            }
            let candidate = if rng.gen_bool(0.5) {
                let other_noun = &pools.nouns[rng.gen_range(0..pools.nouns.len())];
                compose(self.lang, adj, other_noun)
            } else {
                let other_adj = &pools.adjectives[rng.gen_range(0..pools.adjectives.len())];
                compose(self.lang, other_adj, noun)
            };
            if used.insert(candidate.clone()) {
                syns.push(candidate);
            }
        }
        syns
    }
}

fn fresh_random(
    rng: &mut StdRng,
    pools: &LexiconPools,
    lang: Language,
    used: &mut HashSet<String>,
) -> (String, String, String) {
    loop {
        let adj = pools.adjectives[rng.gen_range(0..pools.adjectives.len())].clone();
        let noun = pools.nouns[rng.gen_range(0..pools.nouns.len())].clone();
        let label = compose(lang, &adj, &noun);
        if used.insert(label.clone()) {
            return (label, adj, noun);
        }
    }
}

/// Compose a two-word label in the language's NP order.
pub fn compose(lang: Language, adjective: &str, noun: &str) -> String {
    match lang {
        Language::English => format!("{adjective} {noun}"),
        Language::French | Language::Spanish => format!("{noun} {adjective}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polysemy::PolysemyStats;
    use crate::query;

    fn generate(n: usize, seed: u64) -> (Ontology, Vec<(String, String)>) {
        MeshGenerator::new(
            Language::English,
            MeshConfig {
                n_concepts: n,
                seed,
                ..Default::default()
            },
        )
        .generate()
    }

    #[test]
    fn reaches_target_size() {
        let (o, parts) = generate(200, 1);
        assert_eq!(o.len(), 200);
        assert_eq!(parts.len(), 200);
    }

    #[test]
    fn is_a_tree_with_single_root() {
        let (o, _) = generate(150, 2);
        assert_eq!(o.roots().len(), 1);
        // Every non-root has exactly one parent (tree).
        for c in o.concepts() {
            if c.id != o.roots()[0] {
                assert_eq!(c.parents.len(), 1, "{}", c.preferred);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = generate(100, 7);
        let (b, _) = generate(100, 7);
        for (ca, cb) in a.concepts().iter().zip(b.concepts()) {
            assert_eq!(ca.preferred, cb.preferred);
            assert_eq!(ca.parents, cb.parents);
        }
        let (c, _) = generate(100, 8);
        let same = a
            .concepts()
            .iter()
            .zip(c.concepts())
            .all(|(x, y)| x.preferred == y.preferred);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn labels_are_unique_preferred_terms() {
        let (o, _) = generate(300, 3);
        let stats = PolysemyStats::compute(&o);
        // Preferred labels and synonyms were deduplicated at generation:
        // nothing should be polysemic.
        assert_eq!(stats.polysemic_total(), 0);
    }

    #[test]
    fn children_often_share_parent_adjective() {
        let (o, parts) = generate(300, 4);
        let mut shared = 0usize;
        let mut total = 0usize;
        for c in o.concepts() {
            for &p in &c.parents {
                total += 1;
                if parts[c.id.index()].0 == parts[p.index()].0 {
                    shared += 1;
                }
            }
        }
        let rate = shared as f64 / total as f64;
        assert!(rate > 0.3, "lexical inheritance rate {rate}");
    }

    #[test]
    fn synonyms_present_at_expected_rate() {
        let (o, _) = generate(400, 5);
        let with_syn = o
            .concepts()
            .iter()
            .filter(|c| !c.synonyms.is_empty())
            .count();
        let rate = with_syn as f64 / o.len() as f64;
        // synonyms = 1.0 ⇒ P(at least one of 2 slots) = 0.75.
        assert!((0.6..=0.9).contains(&rate), "synonym rate {rate}");
    }

    #[test]
    fn hierarchy_queries_work() {
        let (o, _) = generate(100, 6);
        let root = o.roots()[0];
        let desc = query::descendants(&o, root);
        assert_eq!(desc.len(), o.len() - 1, "root reaches everything");
    }

    #[test]
    fn french_labels_use_romance_order() {
        let (o, parts) = MeshGenerator::new(
            Language::French,
            MeshConfig {
                n_concepts: 20,
                seed: 9,
                ..Default::default()
            },
        )
        .generate();
        for c in o.concepts() {
            let (adj, noun) = &parts[c.id.index()];
            assert_eq!(c.preferred, format!("{noun} {adj}"));
        }
    }
}
