//! Line-oriented text serialization for ontologies.
//!
//! Format (one record per line, tab-free terms assumed):
//!
//! ```text
//! ! <name> <lang-code>
//! C <id> <preferred term>
//! S <id> <synonym term>
//! L <child-id> <parent-id>
//! ```
//!
//! Deliberately tiny — enough to persist and reload experiment fixtures
//! without pulling a serialization dependency into the workspace.

use crate::model::{ConceptId, Ontology, OntologyBuilder};
use boe_textkit::Language;
use std::fmt;
use std::fmt::Write as _;

/// Serialize `onto` into the text format.
pub fn to_string(onto: &Ontology) -> String {
    let mut out = String::new();
    writeln!(out, "! {} {}", onto.name(), onto.language().code()).expect("string write");
    for c in onto.concepts() {
        writeln!(out, "C {} {}", c.id.0, c.preferred).expect("string write");
        for s in &c.synonyms {
            writeln!(out, "S {} {}", c.id.0, s).expect("string write");
        }
    }
    for c in onto.concepts() {
        for p in &c.parents {
            writeln!(out, "L {} {}", c.id.0, p.0).expect("string write");
        }
    }
    out
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or malformed header line.
    BadHeader,
    /// A record line could not be parsed.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// Concept ids must be dense and in order.
    BadConceptId {
        /// 1-based line number.
        line: usize,
    },
    /// The reconstructed ontology failed validation.
    Build(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed '!' header"),
            ParseError::BadRecord { line, text } => {
                write!(f, "bad record at line {line}: {text:?}")
            }
            ParseError::BadConceptId { line } => {
                write!(f, "non-dense concept id at line {line}")
            }
            ParseError::Build(e) => write!(f, "ontology rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse the text format back into an [`Ontology`].
pub fn from_str(text: &str) -> Result<Ontology, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
    let header = header.strip_prefix("! ").ok_or(ParseError::BadHeader)?;
    let (name, lang_code) = header.rsplit_once(' ').ok_or(ParseError::BadHeader)?;
    let lang: Language = lang_code.parse().map_err(|_| ParseError::BadHeader)?;
    let mut builder = OntologyBuilder::new(name, lang);
    // Two passes worth of state in one scan: concepts arrive before their
    // synonyms (format guarantee); links can be forward references.
    let mut synonyms: Vec<Vec<String>> = Vec::new();
    let mut preferred: Vec<String> = Vec::new();
    let mut links: Vec<(u32, u32)> = Vec::new();
    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let bad = || ParseError::BadRecord {
            line: line_no,
            text: line.to_owned(),
        };
        let (kind, rest) = line.split_once(' ').ok_or_else(bad)?;
        match kind {
            "C" => {
                let (id, term) = rest.split_once(' ').ok_or_else(bad)?;
                let id: u32 = id.parse().map_err(|_| bad())?;
                if id as usize != preferred.len() {
                    return Err(ParseError::BadConceptId { line: line_no });
                }
                preferred.push(term.to_owned());
                synonyms.push(Vec::new());
            }
            "S" => {
                let (id, term) = rest.split_once(' ').ok_or_else(bad)?;
                let id: usize = id.parse().map_err(|_| bad())?;
                let slot = synonyms.get_mut(id).ok_or_else(bad)?;
                slot.push(term.to_owned());
            }
            "L" => {
                let (c, p) = rest.split_once(' ').ok_or_else(bad)?;
                links.push((c.parse().map_err(|_| bad())?, p.parse().map_err(|_| bad())?));
            }
            _ => return Err(bad()),
        }
    }
    for (p, s) in preferred.into_iter().zip(synonyms) {
        builder.add_concept(p, s);
    }
    for (c, p) in links {
        builder.add_is_a(ConceptId(c), ConceptId(p));
    }
    builder
        .build()
        .map_err(|e| ParseError::Build(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new("MeSH-like (en)", Language::English);
        let eye = b.add_concept("eye diseases", vec!["ocular diseases".to_owned()]);
        let cd = b.add_concept("corneal diseases", vec![]);
        let ci = b.add_concept("corneal injuries", vec!["corneal trauma".to_owned()]);
        b.add_is_a(cd, eye);
        b.add_is_a(ci, cd);
        b.build().expect("valid")
    }

    #[test]
    fn round_trip() {
        let o = sample();
        let text = to_string(&o);
        let o2 = from_str(&text).expect("parse");
        assert_eq!(o2.name(), o.name());
        assert_eq!(o2.language(), o.language());
        assert_eq!(o2.len(), o.len());
        for (a, b) in o.concepts().iter().zip(o2.concepts()) {
            assert_eq!(a.preferred, b.preferred);
            assert_eq!(a.synonyms, b.synonyms);
            assert_eq!(a.parents, b.parents);
        }
    }

    #[test]
    fn header_carries_name_with_spaces() {
        let text = to_string(&sample());
        assert!(text.starts_with("! MeSH-like (en) en\n"));
    }

    #[test]
    fn bad_header_is_rejected() {
        assert_eq!(from_str("").unwrap_err(), ParseError::BadHeader);
        assert_eq!(from_str("C 0 x").unwrap_err(), ParseError::BadHeader);
        assert_eq!(from_str("! name xx\n").unwrap_err(), ParseError::BadHeader);
    }

    #[test]
    fn bad_record_reports_line() {
        let text = "! t en\nC 0 eye\nGARBAGE LINE\n";
        match from_str(text).unwrap_err() {
            ParseError::BadRecord { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_dense_ids_rejected() {
        let text = "! t en\nC 5 eye\n";
        assert!(matches!(
            from_str(text).unwrap_err(),
            ParseError::BadConceptId { .. }
        ));
    }

    #[test]
    fn cycle_in_file_is_a_build_error() {
        let text = "! t en\nC 0 a\nC 1 b\nL 0 1\nL 1 0\n";
        assert!(matches!(from_str(text).unwrap_err(), ParseError::Build(_)));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "! t en\n\nC 0 eye\n\n";
        let o = from_str(text).expect("parse");
        assert_eq!(o.len(), 1);
    }
}
