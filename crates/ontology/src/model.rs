//! The ontology data model.
//!
//! Mirrors the structure the paper works with (MeSH / UMLS): *concepts*
//! carry one preferred term and any number of synonym terms, and are
//! organized by an is-a hierarchy that may be a DAG (a concept can have
//! several fathers, as in MeSH's poly-hierarchy).

use boe_textkit::normalize::match_key;
use boe_textkit::Language;
use std::collections::HashMap;
use std::fmt;

/// Dense concept identifier within one [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One concept: preferred term, synonyms, hierarchy links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// This concept's id.
    pub id: ConceptId,
    /// Preferred term (surface form).
    pub preferred: String,
    /// Synonym terms.
    pub synonyms: Vec<String>,
    /// Fathers (is-a targets).
    pub parents: Vec<ConceptId>,
    /// Sons (is-a sources).
    pub children: Vec<ConceptId>,
}

impl Concept {
    /// All terms of this concept (preferred first).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.preferred.as_str()).chain(self.synonyms.iter().map(String::as_str))
    }
}

/// An immutable ontology. Construct through [`OntologyBuilder`].
#[derive(Debug, Clone)]
pub struct Ontology {
    name: String,
    lang: Language,
    concepts: Vec<Concept>,
    /// Normalized term → concepts using that term.
    term_index: HashMap<String, Vec<ConceptId>>,
}

impl Ontology {
    /// Human-readable name ("MeSH-like (en)" etc.).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Language of the terminology.
    pub fn language(&self) -> Language {
        self.lang
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Get a concept.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Iterate all concepts in id order.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Concepts whose term set contains `term` (normalized matching).
    pub fn concepts_of_term(&self, term: &str) -> &[ConceptId] {
        self.term_index
            .get(&match_key(term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `term` is attached to at least one concept.
    pub fn contains_term(&self, term: &str) -> bool {
        !self.concepts_of_term(term).is_empty()
    }

    /// Number of distinct (normalized) terms.
    pub fn term_count(&self) -> usize {
        self.term_index.len()
    }

    /// Iterate `(normalized term, concepts)` in sorted term order.
    pub fn terms(&self) -> Vec<(&str, &[ConceptId])> {
        let mut v: Vec<(&str, &[ConceptId])> = self
            .term_index
            .iter()
            .map(|(t, cs)| (t.as_str(), cs.as_slice()))
            .collect();
        v.sort_unstable_by_key(|(t, _)| *t);
        v
    }

    /// Root concepts (no parents).
    pub fn roots(&self) -> Vec<ConceptId> {
        self.concepts
            .iter()
            .filter(|c| c.parents.is_empty())
            .map(|c| c.id)
            .collect()
    }

    /// Leaf concepts (no children).
    pub fn leaves(&self) -> Vec<ConceptId> {
        self.concepts
            .iter()
            .filter(|c| c.children.is_empty())
            .map(|c| c.id)
            .collect()
    }
}

/// Errors from ontology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An is-a edge references an unknown concept.
    UnknownConcept(ConceptId),
    /// An is-a edge from a concept to itself.
    SelfLink(ConceptId),
    /// The is-a relation contains a cycle through this concept.
    Cycle(ConceptId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownConcept(c) => write!(f, "unknown concept {c}"),
            BuildError::SelfLink(c) => write!(f, "self is-a link on {c}"),
            BuildError::Cycle(c) => write!(f, "is-a cycle through {c}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Mutable builder for [`Ontology`].
///
/// ```
/// use boe_ontology::OntologyBuilder;
/// use boe_textkit::Language;
///
/// let mut b = OntologyBuilder::new("demo", Language::English);
/// let eye = b.add_concept("eye diseases", vec![]);
/// let cd = b.add_concept("corneal diseases", vec!["keratopathy".into()]);
/// b.add_is_a(cd, eye);
/// let onto = b.build().unwrap();
/// assert_eq!(onto.concepts_of_term("Keratopathy"), &[cd]);
/// assert_eq!(onto.concept(cd).parents, vec![eye]);
/// ```
#[derive(Debug)]
pub struct OntologyBuilder {
    name: String,
    lang: Language,
    concepts: Vec<Concept>,
    links: Vec<(ConceptId, ConceptId)>, // (child, parent)
}

impl OntologyBuilder {
    /// New builder.
    pub fn new(name: impl Into<String>, lang: Language) -> Self {
        OntologyBuilder {
            name: name.into(),
            lang,
            concepts: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add a concept with its preferred term and synonyms; returns its id.
    pub fn add_concept(
        &mut self,
        preferred: impl Into<String>,
        synonyms: Vec<String>,
    ) -> ConceptId {
        let id = ConceptId(u32::try_from(self.concepts.len()).expect("too many concepts"));
        self.concepts.push(Concept {
            id,
            preferred: preferred.into(),
            synonyms,
            parents: Vec::new(),
            children: Vec::new(),
        });
        id
    }

    /// Declare `child` is-a `parent`.
    pub fn add_is_a(&mut self, child: ConceptId, parent: ConceptId) {
        self.links.push((child, parent));
    }

    /// Number of concepts added so far.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether no concepts were added.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Validate and build. Checks link sanity and is-a acyclicity.
    pub fn build(mut self) -> Result<Ontology, BuildError> {
        let n = self.concepts.len();
        for &(c, p) in &self.links {
            if c.index() >= n {
                return Err(BuildError::UnknownConcept(c));
            }
            if p.index() >= n {
                return Err(BuildError::UnknownConcept(p));
            }
            if c == p {
                return Err(BuildError::SelfLink(c));
            }
        }
        // Materialize links (deduplicated).
        let mut links = std::mem::take(&mut self.links);
        links.sort_unstable();
        links.dedup();
        for (c, p) in links {
            self.concepts[c.index()].parents.push(p);
            self.concepts[p.index()].children.push(c);
        }
        // Cycle check: Kahn's algorithm over the child→parent DAG.
        let mut indeg: Vec<usize> = self.concepts.iter().map(|c| c.parents.len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &child in &self.concepts[i].children {
                indeg[child.index()] -= 1;
                if indeg[child.index()] == 0 {
                    queue.push(child.index());
                }
            }
        }
        if seen != n {
            let culprit = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| ConceptId(i as u32))
                .expect("cycle implies a positive indegree node");
            return Err(BuildError::Cycle(culprit));
        }
        // Term index.
        let mut term_index: HashMap<String, Vec<ConceptId>> = HashMap::new();
        for c in &self.concepts {
            for t in c.terms() {
                let key = match_key(t);
                let entry = term_index.entry(key).or_default();
                if !entry.contains(&c.id) {
                    entry.push(c.id);
                }
            }
        }
        for v in term_index.values_mut() {
            v.sort_unstable();
        }
        Ok(Ontology {
            name: self.name,
            lang: self.lang,
            concepts: self.concepts,
            term_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Ontology {
        let mut b = OntologyBuilder::new("test", Language::English);
        let eye = b.add_concept("eye diseases", vec![]);
        let corneal = b.add_concept(
            "corneal diseases",
            vec!["disorders of the cornea".to_owned()],
        );
        let ulcer = b.add_concept("corneal ulcer", vec!["ulcerative keratitis".to_owned()]);
        b.add_is_a(corneal, eye);
        b.add_is_a(ulcer, corneal);
        b.build().expect("valid")
    }

    #[test]
    fn structure_is_materialized() {
        let o = tiny();
        assert_eq!(o.len(), 3);
        assert_eq!(o.concept(ConceptId(1)).parents, vec![ConceptId(0)]);
        assert_eq!(o.concept(ConceptId(0)).children, vec![ConceptId(1)]);
        assert_eq!(o.roots(), vec![ConceptId(0)]);
        assert_eq!(o.leaves(), vec![ConceptId(2)]);
    }

    #[test]
    fn term_lookup_is_normalized() {
        let o = tiny();
        assert_eq!(o.concepts_of_term("Corneal  Ulcer"), &[ConceptId(2)]);
        assert_eq!(o.concepts_of_term("ULCERATIVE KERATITIS"), &[ConceptId(2)]);
        assert!(o.concepts_of_term("hepatitis").is_empty());
        assert!(o.contains_term("eye diseases"));
    }

    #[test]
    fn term_count_counts_synonyms() {
        let o = tiny();
        assert_eq!(o.term_count(), 5);
        let terms = o.terms();
        assert!(terms.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn polysemous_term_maps_to_multiple_concepts() {
        let mut b = OntologyBuilder::new("t", Language::English);
        let a = b.add_concept("cold", vec![]); // common cold
        let c = b.add_concept("cold temperature", vec!["cold".to_owned()]);
        let o = b.build().expect("valid");
        assert_eq!(o.concepts_of_term("cold"), &[a, c]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = OntologyBuilder::new("t", Language::English);
        let x = b.add_concept("x", vec![]);
        let y = b.add_concept("y", vec![]);
        b.add_is_a(x, y);
        b.add_is_a(y, x);
        assert!(matches!(b.build(), Err(BuildError::Cycle(_))));
    }

    #[test]
    fn self_link_is_rejected() {
        let mut b = OntologyBuilder::new("t", Language::English);
        let x = b.add_concept("x", vec![]);
        b.add_is_a(x, x);
        assert_eq!(b.build().unwrap_err(), BuildError::SelfLink(x));
    }

    #[test]
    fn unknown_concept_is_rejected() {
        let mut b = OntologyBuilder::new("t", Language::English);
        let x = b.add_concept("x", vec![]);
        b.add_is_a(x, ConceptId(99));
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnknownConcept(ConceptId(99))
        );
    }

    #[test]
    fn duplicate_links_are_deduplicated() {
        let mut b = OntologyBuilder::new("t", Language::English);
        let x = b.add_concept("x", vec![]);
        let y = b.add_concept("y", vec![]);
        b.add_is_a(x, y);
        b.add_is_a(x, y);
        let o = b.build().expect("valid");
        assert_eq!(o.concept(x).parents.len(), 1);
        assert_eq!(o.concept(y).children.len(), 1);
    }

    #[test]
    fn poly_hierarchy_is_allowed() {
        let mut b = OntologyBuilder::new("t", Language::English);
        let p1 = b.add_concept("corneal diseases", vec![]);
        let p2 = b.add_concept("eye injuries", vec![]);
        let c = b.add_concept("corneal injuries", vec![]);
        b.add_is_a(c, p1);
        b.add_is_a(c, p2);
        let o = b.build().expect("valid");
        assert_eq!(o.concept(c).parents, vec![p1, p2]);
    }
}
