//! Hierarchy navigation and term neighbourhoods.
//!
//! Step IV evaluates a candidate term against "its MeSH neighbours, and
//! the fathers/sons of those neighbours" — the queries below provide
//! exactly that vocabulary of moves.

use crate::model::{ConceptId, Ontology};
use std::collections::{HashSet, VecDeque};

/// Fathers (direct parents) of a concept.
pub fn fathers(onto: &Ontology, c: ConceptId) -> &[ConceptId] {
    &onto.concept(c).parents
}

/// Sons (direct children) of a concept.
pub fn sons(onto: &Ontology, c: ConceptId) -> &[ConceptId] {
    &onto.concept(c).children
}

/// Siblings: other children of this concept's fathers, deduplicated,
/// sorted.
pub fn siblings(onto: &Ontology, c: ConceptId) -> Vec<ConceptId> {
    let mut out: HashSet<ConceptId> = HashSet::new();
    for &p in fathers(onto, c) {
        for &s in sons(onto, p) {
            if s != c {
                out.insert(s);
            }
        }
    }
    let mut v: Vec<ConceptId> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// All ancestors (transitive fathers), sorted.
pub fn ancestors(onto: &Ontology, c: ConceptId) -> Vec<ConceptId> {
    let mut seen = HashSet::new();
    let mut queue: VecDeque<ConceptId> = fathers(onto, c).iter().copied().collect();
    while let Some(p) = queue.pop_front() {
        if seen.insert(p) {
            queue.extend(fathers(onto, p).iter().copied());
        }
    }
    let mut v: Vec<ConceptId> = seen.into_iter().collect();
    v.sort_unstable();
    v
}

/// All descendants (transitive sons), sorted.
pub fn descendants(onto: &Ontology, c: ConceptId) -> Vec<ConceptId> {
    let mut seen = HashSet::new();
    let mut queue: VecDeque<ConceptId> = sons(onto, c).iter().copied().collect();
    while let Some(s) = queue.pop_front() {
        if seen.insert(s) {
            queue.extend(sons(onto, s).iter().copied());
        }
    }
    let mut v: Vec<ConceptId> = seen.into_iter().collect();
    v.sort_unstable();
    v
}

/// Concepts within hierarchical distance `radius` of `c` (both directions),
/// excluding `c`, sorted.
pub fn neighbourhood(onto: &Ontology, c: ConceptId, radius: usize) -> Vec<ConceptId> {
    let mut dist: std::collections::HashMap<ConceptId, usize> = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(c, 0);
    queue.push_back(c);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d == radius {
            continue;
        }
        for &n in fathers(onto, v).iter().chain(sons(onto, v)) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(n) {
                e.insert(d + 1);
                queue.push_back(n);
            }
        }
    }
    let mut out: Vec<ConceptId> = dist.into_keys().filter(|&x| x != c).collect();
    out.sort_unstable();
    out
}

/// The paradigmatic relatives of a concept — its synonyms live on the
/// concept itself; hierarchically these are fathers ∪ sons. The paper's
/// Table-4 correctness criterion is "the proposed position is a synonym,
/// father or son of the gold concept".
pub fn paradigmatic_relatives(onto: &Ontology, c: ConceptId) -> Vec<ConceptId> {
    let mut v: Vec<ConceptId> = fathers(onto, c)
        .iter()
        .chain(sons(onto, c))
        .copied()
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// The set of term strings that count as *correct positions* for a gold
/// concept: all its own terms (synonyms) plus every term of its fathers
/// and sons. Returned normalized via the ontology's match keys (lowercase).
pub fn gold_position_terms(onto: &Ontology, c: ConceptId) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push_terms = |id: ConceptId| {
        for t in onto.concept(id).terms() {
            out.push(boe_textkit::normalize::match_key(t));
        }
    };
    push_terms(c);
    for &r in &paradigmatic_relatives(onto, c) {
        push_terms(r);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OntologyBuilder;
    use boe_textkit::Language;

    /// eye
    /// ├── corneal diseases
    /// │   ├── corneal ulcer
    /// │   └── corneal injuries   (also under eye injuries)
    /// └── eye injuries
    ///     └── corneal injuries
    fn onto() -> (Ontology, [ConceptId; 5]) {
        let mut b = OntologyBuilder::new("t", Language::English);
        let eye = b.add_concept("eye diseases", vec![]);
        let cd = b.add_concept("corneal diseases", vec![]);
        let ei = b.add_concept("eye injuries", vec![]);
        let cu = b.add_concept("corneal ulcer", vec![]);
        let ci = b.add_concept(
            "corneal injuries",
            vec!["corneal injury".to_owned(), "corneal trauma".to_owned()],
        );
        b.add_is_a(cd, eye);
        b.add_is_a(ei, eye);
        b.add_is_a(cu, cd);
        b.add_is_a(ci, cd);
        b.add_is_a(ci, ei);
        (b.build().expect("valid"), [eye, cd, ei, cu, ci])
    }

    #[test]
    fn fathers_and_sons() {
        let (o, [eye, cd, ei, _cu, ci]) = onto();
        assert_eq!(fathers(&o, ci), &[cd, ei]);
        assert_eq!(sons(&o, eye), &[cd, ei]);
    }

    #[test]
    fn siblings_via_any_father() {
        let (o, [_, cd, ei, cu, ci]) = onto();
        assert_eq!(siblings(&o, cu), vec![ci]);
        let sib_ci = siblings(&o, ci);
        assert_eq!(sib_ci, vec![cu]);
        assert_eq!(siblings(&o, cd), vec![ei]);
    }

    #[test]
    fn ancestors_and_descendants() {
        let (o, [eye, cd, ei, cu, ci]) = onto();
        assert_eq!(ancestors(&o, ci), vec![eye, cd, ei]);
        assert_eq!(descendants(&o, eye), vec![cd, ei, cu, ci]);
        assert!(ancestors(&o, eye).is_empty());
        assert!(descendants(&o, cu).is_empty());
    }

    #[test]
    fn neighbourhood_radius() {
        let (o, [eye, cd, ei, cu, ci]) = onto();
        assert_eq!(neighbourhood(&o, ci, 1), vec![cd, ei]);
        let n2 = neighbourhood(&o, ci, 2);
        assert_eq!(n2, vec![eye, cd, ei, cu]);
        assert!(neighbourhood(&o, ci, 0).is_empty());
    }

    #[test]
    fn paradigmatic_relatives_of_leaf() {
        let (o, [_, cd, ei, _, ci]) = onto();
        assert_eq!(paradigmatic_relatives(&o, ci), vec![cd, ei]);
    }

    #[test]
    fn gold_position_terms_cover_synonyms_and_relatives() {
        let (o, [_, _, _, _, ci]) = onto();
        let gold = gold_position_terms(&o, ci);
        for t in [
            "corneal injuries",
            "corneal injury",
            "corneal trauma",
            "corneal diseases",
            "eye injuries",
        ] {
            assert!(gold.contains(&t.to_owned()), "missing {t}");
        }
        assert!(!gold.contains(&"corneal ulcer".to_owned()));
    }
}
