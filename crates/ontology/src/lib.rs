//! # boe-ontology
//!
//! Ontology substrate: the MeSH/UMLS-like conceptual model the workflow
//! enriches, plus the statistics and synthetic generators the experiments
//! need.
//!
//! * [`model`] — concepts, terms (preferred + synonyms), is-a hierarchy;
//! * [`query`] — fathers/sons/ancestors/siblings, term lookup,
//!   neighbourhood extraction;
//! * [`polysemy`] — the polysemic-term statistics of the paper's Table 1;
//! * [`synth`] — seeded MeSH-like (tree) and UMLS-like (polysemy-profiled)
//!   generators standing in for the licensed resources (DESIGN.md §2);
//! * [`edit`] — enrichment operations with provenance, the output side of
//!   the workflow;
//! * [`io`] — line-oriented text serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edit;
pub mod io;
pub mod metrics;
pub mod model;
pub mod polysemy;
pub mod query;
pub mod synth;

pub use model::{Concept, ConceptId, Ontology, OntologyBuilder};
