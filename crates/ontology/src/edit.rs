//! Enrichment operations.
//!
//! The workflow's end product is a set of *propositions*: attach a new
//! term as a synonym of an existing concept, or insert it as a new son
//! concept. This module applies such operations, producing a new ontology
//! plus a provenance log (ontologies are immutable; edits rebuild).

use crate::model::{BuildError, ConceptId, Ontology, OntologyBuilder};
use boe_textkit::normalize::match_key;
use std::fmt;

/// One enrichment operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnrichmentOp {
    /// Add `term` as a synonym of `concept`.
    AddSynonym {
        /// Target concept.
        concept: ConceptId,
        /// The new synonym.
        term: String,
    },
    /// Create a new concept under `parent`. The parent may itself be a
    /// concept created by an earlier op in the same batch.
    AddChild {
        /// Father of the new concept.
        parent: ConceptId,
        /// Preferred term of the new concept.
        preferred: String,
        /// Synonyms of the new concept.
        synonyms: Vec<String>,
    },
}

/// Errors from applying enrichment operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// Referenced concept does not exist (neither in the base ontology nor
    /// among concepts created earlier in the batch).
    UnknownConcept(ConceptId),
    /// The term already exists on that concept.
    DuplicateTerm(String),
    /// Rebuild failed (cannot happen for well-formed ops; surfaced anyway).
    Build(BuildError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownConcept(c) => write!(f, "unknown concept {c}"),
            EditError::DuplicateTerm(t) => write!(f, "term {t:?} already present"),
            EditError::Build(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for EditError {}

/// Provenance record for one applied operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedOp {
    /// The operation.
    pub op: EnrichmentOp,
    /// The concept affected or created.
    pub concept: ConceptId,
}

/// Apply `ops` in order to `onto`, returning the enriched ontology and the
/// provenance log. The input ontology is not modified.
pub fn apply(
    onto: &Ontology,
    ops: &[EnrichmentOp],
) -> Result<(Ontology, Vec<AppliedOp>), EditError> {
    let n_old = onto.len();
    let mut synonym_adds: Vec<(ConceptId, String)> = Vec::new();
    let mut new_children: Vec<(ConceptId, String, Vec<String>)> = Vec::new();
    let mut log = Vec::with_capacity(ops.len());
    for op in ops {
        let live = n_old + new_children.len();
        match op {
            EnrichmentOp::AddSynonym { concept, term } => {
                if concept.index() >= live {
                    return Err(EditError::UnknownConcept(*concept));
                }
                let already = if concept.index() < n_old {
                    onto.concept(*concept)
                        .terms()
                        .any(|t| match_key(t) == match_key(term))
                } else {
                    let (_, pref, syns) = &new_children[concept.index() - n_old];
                    std::iter::once(pref)
                        .chain(syns.iter())
                        .any(|t| match_key(t) == match_key(term))
                } || synonym_adds
                    .iter()
                    .any(|(c, t)| c == concept && match_key(t) == match_key(term));
                if already {
                    return Err(EditError::DuplicateTerm(term.clone()));
                }
                synonym_adds.push((*concept, term.clone()));
                log.push(AppliedOp {
                    op: op.clone(),
                    concept: *concept,
                });
            }
            EnrichmentOp::AddChild {
                parent,
                preferred,
                synonyms,
            } => {
                if parent.index() >= live {
                    return Err(EditError::UnknownConcept(*parent));
                }
                let id = ConceptId(live as u32);
                new_children.push((*parent, preferred.clone(), synonyms.clone()));
                log.push(AppliedOp {
                    op: op.clone(),
                    concept: id,
                });
            }
        }
    }
    // Rebuild: old concepts with patched synonym lists, then new children.
    let mut b = OntologyBuilder::new(onto.name().to_owned(), onto.language());
    for c in onto.concepts() {
        let mut syns = c.synonyms.clone();
        for (target, term) in &synonym_adds {
            if *target == c.id {
                syns.push(term.clone());
            }
        }
        b.add_concept(c.preferred.clone(), syns);
    }
    for (i, (parent, preferred, synonyms)) in new_children.iter().enumerate() {
        let mut syns = synonyms.clone();
        let my_id = ConceptId((n_old + i) as u32);
        for (target, term) in &synonym_adds {
            if *target == my_id {
                syns.push(term.clone());
            }
        }
        let id = b.add_concept(preferred.clone(), syns);
        debug_assert_eq!(id, my_id);
        b.add_is_a(id, *parent);
    }
    for c in onto.concepts() {
        for &p in &c.parents {
            b.add_is_a(c.id, p);
        }
    }
    let rebuilt = b.build().map_err(EditError::Build)?;
    Ok((rebuilt, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_textkit::Language;

    fn base() -> Ontology {
        let mut b = OntologyBuilder::new("t", Language::English);
        let eye = b.add_concept("eye diseases", vec![]);
        let cd = b.add_concept("corneal diseases", vec![]);
        b.add_is_a(cd, eye);
        b.build().expect("valid")
    }

    #[test]
    fn add_synonym() {
        let o = base();
        let (o2, log) = apply(
            &o,
            &[EnrichmentOp::AddSynonym {
                concept: ConceptId(1),
                term: "keratopathy".into(),
            }],
        )
        .expect("ok");
        assert!(o2.contains_term("keratopathy"));
        assert_eq!(o2.concepts_of_term("keratopathy"), &[ConceptId(1)]);
        assert_eq!(log.len(), 1);
        assert!(!o.contains_term("keratopathy"), "original untouched");
    }

    #[test]
    fn add_child_concept() {
        let o = base();
        let (o2, log) = apply(
            &o,
            &[EnrichmentOp::AddChild {
                parent: ConceptId(1),
                preferred: "corneal injuries".into(),
                synonyms: vec!["corneal trauma".into()],
            }],
        )
        .expect("ok");
        let new_id = log[0].concept;
        assert_eq!(new_id, ConceptId(2));
        assert_eq!(o2.concept(new_id).parents, vec![ConceptId(1)]);
        assert!(o2.contains_term("corneal trauma"));
        assert_eq!(o2.len(), 3);
    }

    #[test]
    fn duplicate_synonym_rejected() {
        let o = base();
        let err = apply(
            &o,
            &[EnrichmentOp::AddSynonym {
                concept: ConceptId(0),
                term: "Eye Diseases".into(),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, EditError::DuplicateTerm(_)));
    }

    #[test]
    fn unknown_concept_rejected() {
        let o = base();
        let err = apply(
            &o,
            &[EnrichmentOp::AddSynonym {
                concept: ConceptId(9),
                term: "x".into(),
            }],
        )
        .unwrap_err();
        assert_eq!(err, EditError::UnknownConcept(ConceptId(9)));
    }

    #[test]
    fn child_of_new_child_is_allowed() {
        let o = base();
        let (o2, log) = apply(
            &o,
            &[
                EnrichmentOp::AddChild {
                    parent: ConceptId(0),
                    preferred: "eye injuries".into(),
                    synonyms: vec![],
                },
                EnrichmentOp::AddChild {
                    parent: ConceptId(2),
                    preferred: "corneal injuries".into(),
                    synonyms: vec![],
                },
            ],
        )
        .expect("ok");
        assert_eq!(log[0].concept, ConceptId(2));
        assert_eq!(log[1].concept, ConceptId(3));
        assert_eq!(o2.concept(ConceptId(3)).parents, vec![ConceptId(2)]);
    }

    #[test]
    fn synonym_on_new_child_in_same_batch() {
        let o = base();
        let (o2, _) = apply(
            &o,
            &[
                EnrichmentOp::AddChild {
                    parent: ConceptId(1),
                    preferred: "corneal injuries".into(),
                    synonyms: vec![],
                },
                EnrichmentOp::AddSynonym {
                    concept: ConceptId(2),
                    term: "corneal trauma".into(),
                },
            ],
        )
        .expect("ok");
        assert_eq!(o2.concepts_of_term("corneal trauma"), &[ConceptId(2)]);
    }

    #[test]
    fn duplicate_within_batch_rejected() {
        let o = base();
        let err = apply(
            &o,
            &[
                EnrichmentOp::AddSynonym {
                    concept: ConceptId(0),
                    term: "ocular diseases".into(),
                },
                EnrichmentOp::AddSynonym {
                    concept: ConceptId(0),
                    term: "Ocular  Diseases".into(),
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, EditError::DuplicateTerm(_)));
    }
}
