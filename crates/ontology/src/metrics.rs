//! Structural metrics of a terminology.
//!
//! Used by the experiment harness to verify that generated ontologies are
//! structurally MeSH-like (depth, branching, synonymy rates) and exposed
//! for downstream analysis of enrichment results.

use crate::model::{ConceptId, Ontology};
use std::collections::VecDeque;

/// Structural summary of an ontology.
#[derive(Debug, Clone, PartialEq)]
pub struct OntologyMetrics {
    /// Number of concepts.
    pub concepts: usize,
    /// Number of distinct (normalized) terms.
    pub terms: usize,
    /// Mean terms per concept (synonymy rate + 1).
    pub terms_per_concept: f64,
    /// Number of root concepts.
    pub roots: usize,
    /// Number of leaf concepts.
    pub leaves: usize,
    /// Maximum depth (root = 0; 0 for a flat terminology).
    pub max_depth: usize,
    /// Mean depth over all concepts.
    pub mean_depth: f64,
    /// Mean children per internal (non-leaf) concept.
    pub mean_branching: f64,
    /// Number of is-a edges.
    pub is_a_edges: usize,
}

/// Compute the metrics (BFS from the roots; depth of a multi-parent
/// concept is its shortest distance from any root).
pub fn compute(onto: &Ontology) -> OntologyMetrics {
    let n = onto.len();
    let mut depth: Vec<Option<usize>> = vec![None; n];
    let mut queue: VecDeque<ConceptId> = VecDeque::new();
    for r in onto.roots() {
        depth[r.index()] = Some(0);
        queue.push_back(r);
    }
    while let Some(c) = queue.pop_front() {
        let d = depth[c.index()].expect("visited");
        for &child in &onto.concept(c).children {
            if depth[child.index()].is_none() {
                depth[child.index()] = Some(d + 1);
                queue.push_back(child);
            }
        }
    }
    let depths: Vec<usize> = depth.into_iter().flatten().collect();
    let max_depth = depths.iter().copied().max().unwrap_or(0);
    let mean_depth = if depths.is_empty() {
        0.0
    } else {
        depths.iter().sum::<usize>() as f64 / depths.len() as f64
    };
    let internal: Vec<&crate::model::Concept> = onto
        .concepts()
        .iter()
        .filter(|c| !c.children.is_empty())
        .collect();
    let mean_branching = if internal.is_empty() {
        0.0
    } else {
        internal.iter().map(|c| c.children.len()).sum::<usize>() as f64 / internal.len() as f64
    };
    let term_total: usize = onto.concepts().iter().map(|c| 1 + c.synonyms.len()).sum();
    OntologyMetrics {
        concepts: n,
        terms: onto.term_count(),
        terms_per_concept: if n == 0 {
            0.0
        } else {
            term_total as f64 / n as f64
        },
        roots: onto.roots().len(),
        leaves: onto.leaves().len(),
        max_depth,
        mean_depth,
        mean_branching,
        is_a_edges: onto.concepts().iter().map(|c| c.parents.len()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OntologyBuilder;
    use crate::synth::mesh::{MeshConfig, MeshGenerator};
    use boe_textkit::Language;

    #[test]
    fn metrics_of_a_hand_built_tree() {
        let mut b = OntologyBuilder::new("t", Language::English);
        let root = b.add_concept("root term", vec!["root synonym".into()]);
        let a = b.add_concept("child a", vec![]);
        let bb = b.add_concept("child b", vec![]);
        let leaf = b.add_concept("grand child", vec![]);
        b.add_is_a(a, root);
        b.add_is_a(bb, root);
        b.add_is_a(leaf, a);
        let o = b.build().expect("valid");
        let m = compute(&o);
        assert_eq!(m.concepts, 4);
        assert_eq!(m.terms, 5);
        assert_eq!(m.roots, 1);
        assert_eq!(m.leaves, 2);
        assert_eq!(m.max_depth, 2);
        assert!((m.mean_depth - (0.0 + 1.0 + 1.0 + 2.0) / 4.0).abs() < 1e-12);
        assert!((m.mean_branching - 1.5).abs() < 1e-12); // root 2, a 1
        assert_eq!(m.is_a_edges, 3);
        assert!((m.terms_per_concept - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn generated_mesh_is_structurally_mesh_like() {
        let (o, _) = MeshGenerator::new(
            Language::English,
            MeshConfig {
                n_concepts: 300,
                seed: 2,
                ..Default::default()
            },
        )
        .generate();
        let m = compute(&o);
        assert_eq!(m.concepts, 300);
        assert_eq!(m.roots, 1);
        assert!(m.max_depth >= 3, "depth {}", m.max_depth);
        assert!(
            (2.0..=5.0).contains(&m.mean_branching),
            "{}",
            m.mean_branching
        );
        assert!(m.terms_per_concept > 1.4, "{}", m.terms_per_concept);
    }

    #[test]
    fn flat_terminology_has_zero_depth() {
        let mut b = OntologyBuilder::new("t", Language::English);
        b.add_concept("a", vec![]);
        b.add_concept("b", vec![]);
        let o = b.build().expect("valid");
        let m = compute(&o);
        assert_eq!(m.max_depth, 0);
        assert_eq!(m.roots, 2);
        assert_eq!(m.leaves, 2);
        assert_eq!(m.mean_branching, 0.0);
    }
}
