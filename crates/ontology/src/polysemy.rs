//! Polysemic-term statistics (the paper's Table 1).
//!
//! A term is *polysemic* when it is attached to more than one concept.
//! Table 1 buckets polysemic terms by their number of senses
//! (k = 2, 3, 4, 5+) for UMLS and MeSH in EN/FR/ES, motivating the
//! workflow's restriction of the sense count to [2, 5].

use crate::model::Ontology;
use std::collections::BTreeMap;

/// Polysemy statistics of one terminology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolysemyStats {
    /// Distinct (normalized) terms.
    pub total_terms: usize,
    /// Count of polysemic terms per sense count; the `5` bucket holds "5
    /// or more" like the paper's `5+` row.
    pub by_senses: BTreeMap<usize, usize>,
}

impl PolysemyStats {
    /// Compute the statistics for `onto`.
    pub fn compute(onto: &Ontology) -> Self {
        let mut by_senses: BTreeMap<usize, usize> = BTreeMap::new();
        let mut total = 0usize;
        for (_, concepts) in onto.terms() {
            total += 1;
            let k = concepts.len();
            if k >= 2 {
                *by_senses.entry(k.min(5)).or_insert(0) += 1;
            }
        }
        PolysemyStats {
            total_terms: total,
            by_senses,
        }
    }

    /// Number of polysemic terms with exactly `k` senses (`k = 5` means
    /// "5 or more").
    pub fn count(&self, k: usize) -> usize {
        self.by_senses.get(&k).copied().unwrap_or(0)
    }

    /// Total polysemic terms (any k ≥ 2).
    pub fn polysemic_total(&self) -> usize {
        self.by_senses.values().sum()
    }

    /// Ratio of polysemic to total terms — the paper notes ≈ 1/200 for
    /// English UMLS.
    pub fn polysemic_ratio(&self) -> f64 {
        if self.total_terms == 0 {
            0.0
        } else {
            self.polysemic_total() as f64 / self.total_terms as f64
        }
    }

    /// The Table-1 row vector `[k=2, k=3, k=4, k=5+]`.
    pub fn table1_row(&self) -> [usize; 4] {
        [self.count(2), self.count(3), self.count(4), self.count(5)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OntologyBuilder;
    use boe_textkit::Language;

    fn build_with_shared_terms() -> Ontology {
        let mut b = OntologyBuilder::new("t", Language::English);
        // "cold" on 2 concepts; "discharge" on 3; unique terms elsewhere.
        b.add_concept("common cold", vec!["cold".to_owned()]);
        b.add_concept("cold temperature", vec!["cold".to_owned()]);
        b.add_concept("discharge", vec![]);
        b.add_concept("hospital discharge", vec!["discharge".to_owned()]);
        b.add_concept("electric discharge", vec!["discharge".to_owned()]);
        b.add_concept("cornea", vec![]);
        b.build().expect("valid")
    }

    #[test]
    fn buckets_by_sense_count() {
        let o = build_with_shared_terms();
        let s = PolysemyStats::compute(&o);
        assert_eq!(s.count(2), 1, "cold");
        assert_eq!(s.count(3), 1, "discharge");
        assert_eq!(s.count(4), 0);
        assert_eq!(s.polysemic_total(), 2);
        assert_eq!(s.table1_row(), [1, 1, 0, 0]);
    }

    #[test]
    fn total_terms_counts_distinct_normalized() {
        let o = build_with_shared_terms();
        let s = PolysemyStats::compute(&o);
        // cold, common cold, cold temperature, discharge, hospital
        // discharge, electric discharge, cornea = 7 distinct.
        assert_eq!(s.total_terms, 7);
        assert!((s.polysemic_ratio() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn five_plus_bucket_absorbs_high_k() {
        let mut b = OntologyBuilder::new("t", Language::English);
        for i in 0..7 {
            b.add_concept(format!("c{i}"), vec!["shared".to_owned()]);
        }
        let o = b.build().expect("valid");
        let s = PolysemyStats::compute(&o);
        assert_eq!(s.count(5), 1);
        assert_eq!(s.count(2), 0);
    }

    #[test]
    fn monosemous_ontology_has_no_polysemy() {
        let mut b = OntologyBuilder::new("t", Language::English);
        b.add_concept("a", vec![]);
        b.add_concept("b", vec![]);
        let o = b.build().expect("valid");
        let s = PolysemyStats::compute(&o);
        assert_eq!(s.polysemic_total(), 0);
        assert_eq!(s.polysemic_ratio(), 0.0);
    }
}
