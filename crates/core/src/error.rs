//! Typed failure taxonomy for the enrichment workflow.
//!
//! Every way a pipeline run can fail outright is one [`EnrichError`]
//! variant; per-term trouble inside a run is *not* an error — it
//! downgrades the term and lands in
//! [`RunDiagnostics`](crate::diagnostics::RunDiagnostics) instead.
//! The taxonomy is dependency-free (std only) and implements
//! [`std::error::Error`] so callers can box, chain and `?` it.

use boe_textkit::Language;
use std::fmt;

/// The workflow stage a failure or degradation is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Upfront input validation, before Step I.
    Validation,
    /// Step I — term extraction.
    TermExtraction,
    /// Step II — polysemy detection.
    PolysemyDetection,
    /// Step III — sense induction.
    SenseInduction,
    /// Step IV — semantic linkage.
    SemanticLinkage,
    /// Final report assembly, after the per-term fan-out.
    Reporting,
}

impl Stage {
    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Validation => "validation",
            Stage::TermExtraction => "term extraction (step I)",
            Stage::PolysemyDetection => "polysemy detection (step II)",
            Stage::SenseInduction => "sense induction (step III)",
            Stage::SemanticLinkage => "semantic linkage (step IV)",
            Stage::Reporting => "report assembly",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an enrichment run cannot produce a report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnrichError {
    /// The input is structurally unusable (unparseable, inconsistent).
    InvalidInput(String),
    /// The corpus has no documents (or no tokens at all).
    EmptyCorpus,
    /// The ontology has no concepts.
    EmptyOntology,
    /// Corpus and ontology disagree on language; every downstream stage
    /// (stemming, stopwords, term patterns) would silently misfire.
    LanguageMismatch {
        /// The corpus language.
        corpus: Language,
        /// The ontology language.
        ontology: Language,
    },
    /// A requested term does not occur in the corpus vocabulary.
    UnknownTerm(String),
    /// A stage failed in a way that could not be downgraded.
    StageFailure {
        /// The stage that failed.
        stage: Stage,
        /// The term being processed (empty for corpus-wide failures).
        term: String,
        /// What went wrong.
        cause: String,
    },
    /// Strict mode promoted degraded-mode warnings to a hard error.
    Degraded {
        /// Number of warnings / degraded terms in the run.
        warnings: usize,
    },
    /// The run's wall-clock deadline passed before the workflow
    /// completed; the report (if any) is truncated.
    DeadlineExceeded {
        /// Wall-clock milliseconds actually elapsed when the trip fired.
        elapsed_ms: u64,
        /// The configured deadline, in milliseconds.
        budget_ms: u64,
    },
    /// The run was cancelled through its
    /// [`CancelToken`](crate::governor::CancelToken).
    Cancelled,
    /// The run allocated more memory than its budget allows.
    BudgetExhausted {
        /// Mebibytes allocated beyond the run-start baseline.
        allocated_mb: u64,
        /// The configured budget, in mebibytes.
        budget_mb: u64,
    },
}

impl EnrichError {
    /// Stable process exit code for this error class (the `boe` CLI
    /// reserves 0 for success, 1 for I/O errors and 2 for usage errors).
    pub fn exit_code(&self) -> u8 {
        match self {
            EnrichError::InvalidInput(_)
            | EnrichError::EmptyCorpus
            | EnrichError::EmptyOntology => 3,
            EnrichError::LanguageMismatch { .. } => 4,
            EnrichError::UnknownTerm(_) => 5,
            EnrichError::StageFailure { .. } => 6,
            EnrichError::Degraded { .. } => 7,
            EnrichError::DeadlineExceeded { .. } => 8,
            EnrichError::Cancelled => 9,
            EnrichError::BudgetExhausted { .. } => 10,
        }
    }
}

impl fmt::Display for EnrichError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnrichError::InvalidInput(what) => write!(f, "invalid input: {what}"),
            EnrichError::EmptyCorpus => write!(f, "the corpus contains no documents"),
            EnrichError::EmptyOntology => write!(f, "the ontology contains no concepts"),
            EnrichError::LanguageMismatch { corpus, ontology } => write!(
                f,
                "language mismatch: corpus is {corpus}, ontology is {ontology}"
            ),
            EnrichError::UnknownTerm(term) => {
                write!(f, "term {term:?} does not occur in the corpus")
            }
            EnrichError::StageFailure { stage, term, cause } => {
                if term.is_empty() {
                    write!(f, "{stage} failed: {cause}")
                } else {
                    write!(f, "{stage} failed on {term:?}: {cause}")
                }
            }
            EnrichError::Degraded { warnings } => {
                write!(f, "strict mode: run degraded with {warnings} warning(s)")
            }
            EnrichError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed against a {budget_ms} ms budget"
            ),
            EnrichError::Cancelled => write!(f, "run cancelled"),
            EnrichError::BudgetExhausted {
                allocated_mb,
                budget_mb,
            } => write!(
                f,
                "memory budget exhausted: {allocated_mb} MiB allocated against a {budget_mb} MiB budget"
            ),
        }
    }
}

impl std::error::Error for EnrichError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EnrichError::LanguageMismatch {
            corpus: Language::English,
            ontology: Language::French,
        };
        let s = e.to_string();
        assert!(s.contains("en") && s.contains("fr"), "{s}");
        assert!(EnrichError::EmptyCorpus
            .to_string()
            .contains("no documents"));
        let sf = EnrichError::StageFailure {
            stage: Stage::SenseInduction,
            term: "cornea".into(),
            cause: "boom".into(),
        };
        assert!(sf.to_string().contains("step III"), "{sf}");
        assert!(sf.to_string().contains("cornea"));
        let dl = EnrichError::DeadlineExceeded {
            elapsed_ms: 120,
            budget_ms: 100,
        };
        assert!(dl.to_string().contains("120 ms"), "{dl}");
        let mem = EnrichError::BudgetExhausted {
            allocated_mb: 64,
            budget_mb: 32,
        };
        assert!(mem.to_string().contains("64 MiB"), "{mem}");
    }

    #[test]
    fn governed_exit_codes_are_stable() {
        assert_eq!(
            EnrichError::DeadlineExceeded {
                elapsed_ms: 1,
                budget_ms: 1
            }
            .exit_code(),
            8
        );
        assert_eq!(EnrichError::Cancelled.exit_code(), 9);
        assert_eq!(
            EnrichError::BudgetExhausted {
                allocated_mb: 1,
                budget_mb: 1
            }
            .exit_code(),
            10
        );
    }

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let errors = [
            EnrichError::InvalidInput("x".into()),
            EnrichError::LanguageMismatch {
                corpus: Language::English,
                ontology: Language::Spanish,
            },
            EnrichError::UnknownTerm("x".into()),
            EnrichError::StageFailure {
                stage: Stage::Validation,
                term: String::new(),
                cause: "x".into(),
            },
            EnrichError::Degraded { warnings: 1 },
            EnrichError::DeadlineExceeded {
                elapsed_ms: 10,
                budget_ms: 5,
            },
            EnrichError::Cancelled,
            EnrichError::BudgetExhausted {
                allocated_mb: 10,
                budget_mb: 5,
            },
        ];
        let mut codes: Vec<u8> = errors.iter().map(|e| e.exit_code()).collect();
        // Empty corpus/ontology share the invalid-input class.
        assert_eq!(EnrichError::EmptyCorpus.exit_code(), 3);
        assert_eq!(EnrichError::EmptyOntology.exit_code(), 3);
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "codes collide");
        assert!(codes.iter().all(|&c| c >= 3), "0–2 are reserved");
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(EnrichError::EmptyCorpus);
        assert!(e.source().is_none());
    }

    #[test]
    fn stage_names_follow_the_paper() {
        assert_eq!(
            Stage::TermExtraction.to_string(),
            "term extraction (step I)"
        );
        assert_eq!(
            Stage::SemanticLinkage.to_string(),
            "semantic linkage (step IV)"
        );
    }
}
