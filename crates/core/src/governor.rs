//! Resource governance for enrichment runs: wall-clock deadlines,
//! per-stage soft deadlines, cooperative cancellation, and an
//! approximate allocation budget.
//!
//! The [`Governor`] is created once per [`crate::EnrichmentPipeline`]
//! run from a [`BudgetConfig`] and polled **cooperatively** at
//! deterministic program points: every stage boundary, and before every
//! item of the per-term fan-out (via the stop predicate handed to
//! `boe_par::try_par_map`). Polling never blocks and costs a few atomic
//! loads, so an unbudgeted run (the default) pays essentially nothing.
//!
//! Trips come in two strengths:
//!
//! * **hard** ([`TripKind::Deadline`], [`TripKind::Cancelled`],
//!   [`TripKind::AllocBudget`]) — the run must wind down: remaining work
//!   is truncated and the partial report is returned with the trip
//!   recorded in diagnostics;
//! * **soft** ([`TripKind::StageDeadline`]) — only the current stage is
//!   over budget: the pipeline degrades to a cheaper strategy for the
//!   remaining work and keeps going.
//!
//! The allocation budget is *approximate by design*: it reads a global
//! counter ([`mem`]) fed by a counting allocator that only the `boe`
//! binary installs (library crates forbid `unsafe`). When no tracker is
//! installed the budget simply never trips.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for one enrichment run. All fields default to
/// `None` = unlimited; the zero-cost default means existing callers are
/// unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetConfig {
    /// Hard wall-clock budget for the whole run, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Soft per-stage wall-clock budget, in milliseconds. Tripping it
    /// degrades the current stage instead of ending the run.
    pub stage_deadline_ms: Option<u64>,
    /// Hard budget on memory allocated *beyond the baseline at run
    /// start*, in mebibytes. Requires the counting allocator (the `boe`
    /// binary installs it); otherwise never trips.
    pub max_alloc_mb: Option<u64>,
}

impl BudgetConfig {
    /// Whether any limit is set at all (lets the pipeline skip governor
    /// plumbing entirely on the default config).
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none()
            && self.stage_deadline_ms.is_none()
            && self.max_alloc_mb.is_none()
    }
}

/// Which budget a [`Governor`] poll found exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripKind {
    /// The whole-run wall-clock deadline passed (hard).
    Deadline,
    /// The current stage exceeded its soft deadline (soft).
    StageDeadline,
    /// The run was cancelled through its [`CancelToken`] (hard).
    Cancelled,
    /// Allocations since run start exceeded the budget (hard).
    AllocBudget,
}

impl TripKind {
    /// Stable lower-case name for reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            TripKind::Deadline => "deadline",
            TripKind::StageDeadline => "stage-deadline",
            TripKind::Cancelled => "cancelled",
            TripKind::AllocBudget => "alloc-budget",
        }
    }

    /// Hard trips end the run (with a truncated report); soft trips only
    /// degrade the current stage.
    pub fn is_hard(&self) -> bool {
        !matches!(self, TripKind::StageDeadline)
    }
}

impl std::fmt::Display for TripKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A cheaply clonable cancellation handle: call [`CancelToken::cancel`]
/// from any thread (e.g. a signal handler) and every governed pipeline
/// holding a clone winds down at its next poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent and monotonic: once set it stays
    /// set.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The per-run budget monitor. See the module docs for the polling
/// contract; construction captures the start instant and the allocation
/// baseline so budgets are relative to the run, not the process.
#[derive(Debug)]
pub struct Governor {
    start: Instant,
    deadline: Option<Duration>,
    stage_deadline: Option<Duration>,
    /// Nanoseconds since `start` at which the current stage began.
    stage_started_ns: AtomicU64,
    max_alloc_bytes: Option<i64>,
    alloc_baseline: i64,
    cancel: CancelToken,
}

impl Governor {
    /// A governor with a fresh [`CancelToken`].
    pub fn new(config: BudgetConfig) -> Self {
        Self::with_token(config, CancelToken::new())
    }

    /// A governor wired to an externally held cancellation token.
    pub fn with_token(config: BudgetConfig, cancel: CancelToken) -> Self {
        Governor {
            start: Instant::now(),
            deadline: config.deadline_ms.map(Duration::from_millis),
            stage_deadline: config.stage_deadline_ms.map(Duration::from_millis),
            stage_started_ns: AtomicU64::new(0),
            max_alloc_bytes: config
                .max_alloc_mb
                .map(|mb| i64::try_from(mb.saturating_mul(1024 * 1024)).unwrap_or(i64::MAX)),
            alloc_baseline: mem::current_bytes(),
            cancel,
        }
    }

    /// A clone of this run's cancellation token, for handing to other
    /// threads.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Mark the start of a new stage: resets the soft stage-deadline
    /// clock. Called at every stage boundary by the pipeline.
    pub fn begin_stage(&self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage_started_ns.store(ns, Ordering::SeqCst);
    }

    /// Poll only the **hard** budgets, in severity order: cancellation,
    /// allocation budget, then the run deadline. Returns the first trip
    /// found, or `None` when within budget.
    pub fn check_hard(&self) -> Option<TripKind> {
        if self.cancel.is_cancelled() {
            return Some(TripKind::Cancelled);
        }
        if let Some(limit) = self.max_alloc_bytes {
            if mem::tracking_installed() && self.allocated_beyond_baseline() > limit {
                return Some(TripKind::AllocBudget);
            }
        }
        if let Some(d) = self.deadline {
            if self.start.elapsed() > d {
                return Some(TripKind::Deadline);
            }
        }
        None
    }

    /// Poll every budget: the hard ones first, then the soft per-stage
    /// deadline.
    pub fn check(&self) -> Option<TripKind> {
        if let Some(trip) = self.check_hard() {
            return Some(trip);
        }
        if let Some(sd) = self.stage_deadline {
            let started = Duration::from_nanos(self.stage_started_ns.load(Ordering::SeqCst));
            if self.start.elapsed().saturating_sub(started) > sd {
                return Some(TripKind::StageDeadline);
            }
        }
        None
    }

    /// Wall-clock milliseconds since the run started.
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The configured run deadline in milliseconds, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
    }

    /// Bytes allocated beyond the baseline captured at construction
    /// (clamped at zero; approximate, see module docs).
    pub fn allocated_beyond_baseline(&self) -> i64 {
        (mem::current_bytes() - self.alloc_baseline).max(0)
    }

    /// Mebibytes allocated beyond the baseline, rounded up.
    pub fn allocated_mb(&self) -> u64 {
        let bytes = self.allocated_beyond_baseline().max(0) as u64;
        bytes.div_ceil(1024 * 1024)
    }

    /// The configured allocation budget in mebibytes, if any.
    pub fn max_alloc_mb(&self) -> Option<u64> {
        self.max_alloc_bytes
            .map(|b| (b.max(0) as u64) / (1024 * 1024))
    }

    /// The configured soft per-stage deadline in milliseconds, if any.
    pub fn stage_deadline_ms(&self) -> Option<u64> {
        self.stage_deadline
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
    }

    /// The measured value and the limit a trip crossed (ms for the clock
    /// budgets, MiB for the allocation budget), for diagnostics and
    /// error payloads.
    pub fn describe(&self, trip: TripKind) -> (u64, u64) {
        match trip {
            TripKind::Deadline => (self.elapsed_ms(), self.deadline_ms().unwrap_or(0)),
            TripKind::StageDeadline => (self.elapsed_ms(), self.stage_deadline_ms().unwrap_or(0)),
            TripKind::Cancelled => (self.elapsed_ms(), 0),
            TripKind::AllocBudget => (self.allocated_mb(), self.max_alloc_mb().unwrap_or(0)),
        }
    }
}

/// Global allocation accounting, fed by a counting [`std::alloc::GlobalAlloc`]
/// shim that only binary crates install (library crates forbid `unsafe`).
/// Everything here is safe: the shim calls [`note_alloc`]/[`note_dealloc`]
/// and flips [`mark_tracking_installed`] once at startup.
pub mod mem {
    use super::{AtomicBool, AtomicI64, Ordering};

    /// Net live bytes as seen by the counting allocator. Signed because
    /// a thread can free memory another thread allocated before tracking
    /// started.
    static CURRENT: AtomicI64 = AtomicI64::new(0);

    /// Whether a counting allocator actually feeds [`CURRENT`]. Budgets
    /// are ignored (never trip) while this is false.
    static TRACKING: AtomicBool = AtomicBool::new(false);

    /// Record `n` bytes allocated. Called by the allocator shim on every
    /// successful allocation — keep it to a single atomic op.
    #[inline]
    pub fn note_alloc(n: usize) {
        CURRENT.fetch_add(n as i64, Ordering::Relaxed);
    }

    /// Record `n` bytes freed.
    #[inline]
    pub fn note_dealloc(n: usize) {
        CURRENT.fetch_sub(n as i64, Ordering::Relaxed);
    }

    /// The current net live-byte count (approximate; may be briefly
    /// stale across threads).
    pub fn current_bytes() -> i64 {
        CURRENT.load(Ordering::Relaxed)
    }

    /// Declare that a counting allocator is live, enabling allocation
    /// budgets. Idempotent; never unset.
    pub fn mark_tracking_installed() {
        TRACKING.store(true, Ordering::SeqCst);
    }

    /// Whether allocation budgets can trip at all.
    pub fn tracking_installed() -> bool {
        TRACKING.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_unlimited_and_never_trips() {
        let cfg = BudgetConfig::default();
        assert!(cfg.is_unlimited());
        let gov = Governor::new(cfg);
        assert_eq!(gov.check(), None);
        assert_eq!(gov.check_hard(), None);
    }

    #[test]
    fn zero_deadline_trips_hard() {
        let gov = Governor::new(BudgetConfig {
            deadline_ms: Some(0),
            ..Default::default()
        });
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(gov.check_hard(), Some(TripKind::Deadline));
        assert_eq!(gov.check(), Some(TripKind::Deadline));
        assert!(TripKind::Deadline.is_hard());
    }

    #[test]
    fn stage_deadline_is_soft_and_resets_per_stage() {
        let gov = Governor::new(BudgetConfig {
            stage_deadline_ms: Some(0),
            ..Default::default()
        });
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(gov.check(), Some(TripKind::StageDeadline));
        assert!(!TripKind::StageDeadline.is_hard());
        // Hard check ignores the soft budget.
        assert_eq!(gov.check_hard(), None);
        // A fresh stage resets the clock...
        gov.begin_stage();
        // ...though with a 0ms budget any measurable elapsed time trips
        // again; use a generous budget to observe the reset.
        let gov2 = Governor::new(BudgetConfig {
            stage_deadline_ms: Some(10_000),
            ..Default::default()
        });
        gov2.begin_stage();
        assert_eq!(gov2.check(), None);
    }

    #[test]
    fn cancellation_wins_over_everything() {
        let token = CancelToken::new();
        let gov = Governor::with_token(
            BudgetConfig {
                deadline_ms: Some(0),
                ..Default::default()
            },
            token.clone(),
        );
        std::thread::sleep(Duration::from_millis(1));
        token.cancel();
        assert_eq!(gov.check_hard(), Some(TripKind::Cancelled));
        assert!(token.is_cancelled());
        // Token is shared, not copied: the governor's clone sees it too.
        assert!(gov.cancel_token().is_cancelled());
    }

    #[test]
    fn alloc_budget_requires_tracking_and_uses_baseline() {
        // Simulate the binary's allocator shim.
        mem::mark_tracking_installed();
        let gov = Governor::new(BudgetConfig {
            max_alloc_mb: Some(1),
            ..Default::default()
        });
        assert_eq!(gov.check_hard(), None, "nothing allocated yet");
        mem::note_alloc(2 * 1024 * 1024);
        assert_eq!(gov.check_hard(), Some(TripKind::AllocBudget));
        let (measured, limit) = gov.describe(TripKind::AllocBudget);
        assert_eq!(limit, 1);
        assert!(measured >= 2, "measured {measured} MiB");
        mem::note_dealloc(2 * 1024 * 1024);
        assert_eq!(gov.check_hard(), None, "freed back under budget");
    }

    #[test]
    fn trip_names_are_stable() {
        assert_eq!(TripKind::Deadline.name(), "deadline");
        assert_eq!(TripKind::StageDeadline.name(), "stage-deadline");
        assert_eq!(TripKind::Cancelled.name(), "cancelled");
        assert_eq!(TripKind::AllocBudget.name(), "alloc-budget");
        assert_eq!(format!("{}", TripKind::Cancelled), "cancelled");
    }
}
