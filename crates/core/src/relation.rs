//! Relation-type extraction (the paper's future work, §4).
//!
//! "A perspective of this work is to extract the type of relations. This
//! could be performed with the linguistic patterns (e.g. the verbs used
//! between two terms) and the associated contexts." — implemented here:
//! for a pair of terms, collect the verbs occurring *between* their
//! mentions in shared sentences and map them onto a coarse relation
//! typology through a verb lexicon.

use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::Corpus;
use boe_textkit::pos::PosTag;
use boe_textkit::TokenId;
use std::collections::HashMap;

/// Coarse biomedical relation types derivable from linking verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelationType {
    /// X causes / induces Y.
    Causal,
    /// X treats / heals Y.
    Treatment,
    /// X is-a / is a kind of Y.
    Taxonomic,
    /// X is associated with / involves Y.
    Association,
    /// Verbs seen but none mapped.
    Unknown,
}

impl RelationType {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RelationType::Causal => "causal",
            RelationType::Treatment => "treatment",
            RelationType::Taxonomic => "taxonomic",
            RelationType::Association => "association",
            RelationType::Unknown => "unknown",
        }
    }
}

/// Verb → relation lexicon (English; the synthetic generators emit these
/// verbs).
fn verb_relation(verb: &str) -> Option<RelationType> {
    Some(match verb {
        "causes" | "cause" | "caused" | "induces" | "induce" | "induced" | "provokes" => {
            RelationType::Causal
        }
        "treats" | "treat" | "treated" | "heals" | "heal" | "healed" | "cures" => {
            RelationType::Treatment
        }
        "is" | "are" | "was" | "were" | "remains" => RelationType::Taxonomic,
        "involves" | "involve" | "involved" | "affects" | "affect" | "affected" | "suggests"
        | "suggest" | "indicates" | "indicate" | "shows" | "show" | "showed" | "reveals"
        | "requires" | "require" | "required" => RelationType::Association,
        _ => return None,
    })
}

/// Evidence for one typed relation between two terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationEvidence {
    /// The inferred type.
    pub relation: RelationType,
    /// Supporting verb counts, sorted by decreasing count.
    pub verbs: Vec<(String, u32)>,
    /// Number of shared sentences examined.
    pub sentences: u32,
}

/// Extract the relation type between `a` and `b` from the verbs found
/// between their mentions in shared sentences. `None` when the two terms
/// never share a sentence. Mentions are resolved through `occ`, shared
/// with the rest of the pipeline.
pub fn extract_relation(
    corpus: &Corpus,
    occ: &OccurrenceIndex,
    a: &[TokenId],
    b: &[TokenId],
) -> Option<RelationEvidence> {
    let occ_a = occ.find_occurrences(corpus, a);
    let occ_b = occ.find_occurrences(corpus, b);
    // Index b's occurrences by (doc, sentence).
    let mut b_by_sentence: HashMap<(u32, usize), Vec<usize>> = HashMap::new();
    for o in &occ_b {
        b_by_sentence
            .entry((o.doc.0, o.sentence))
            .or_default()
            .push(o.start);
    }
    let mut verb_counts: HashMap<String, u32> = HashMap::new();
    let mut shared = 0u32;
    for oa in &occ_a {
        let Some(b_starts) = b_by_sentence.get(&(oa.doc.0, oa.sentence)) else {
            continue;
        };
        let sentence = &corpus.doc(oa.doc).sentences[oa.sentence];
        for &bs in b_starts {
            shared += 1;
            // The token span strictly between the two mentions.
            let (lo, hi) = if oa.start < bs {
                (oa.start + a.len(), bs)
            } else {
                (bs + b.len(), oa.start)
            };
            if lo >= hi {
                continue;
            }
            for i in lo..hi {
                if sentence.tags[i] == PosTag::Verb {
                    let verb = corpus.text(sentence.tokens[i]).to_owned();
                    *verb_counts.entry(verb).or_insert(0) += 1;
                }
            }
        }
    }
    if shared == 0 {
        return None;
    }
    // Vote per relation type.
    let mut votes: HashMap<RelationType, u32> = HashMap::new();
    for (verb, count) in &verb_counts {
        if let Some(r) = verb_relation(verb) {
            *votes.entry(r).or_insert(0) += count;
        }
    }
    let relation = votes
        .into_iter()
        .max_by_key(|&(r, c)| (c, std::cmp::Reverse(r)))
        .map(|(r, _)| r)
        .unwrap_or(RelationType::Unknown);
    let mut verbs: Vec<(String, u32)> = verb_counts.into_iter().collect();
    verbs.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    Some(RelationEvidence {
        relation,
        verbs,
        sentences: shared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus(texts: &[&str]) -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        b.build()
    }

    fn relation_of(c: &Corpus, a: &str, b: &str) -> Option<RelationEvidence> {
        let ta = c.phrase_ids(a).expect("a known");
        let tb = c.phrase_ids(b).expect("b known");
        extract_relation(c, &OccurrenceIndex::build(c), &ta, &tb)
    }

    #[test]
    fn causal_verbs_are_detected() {
        let c = corpus(&[
            "chemical burns cause corneal injuries.",
            "chemical burns caused corneal injuries.",
        ]);
        let ev = relation_of(&c, "chemical burns", "corneal injuries").expect("shared");
        assert_eq!(ev.relation, RelationType::Causal);
        assert_eq!(ev.sentences, 2);
        assert_eq!(ev.verbs[0].0, "cause");
    }

    #[test]
    fn treatment_verbs_are_detected() {
        let c = corpus(&["amniotic membrane treats corneal injuries."]);
        let ev = relation_of(&c, "amniotic membrane", "corneal injuries").expect("shared");
        assert_eq!(ev.relation, RelationType::Treatment);
    }

    #[test]
    fn taxonomic_copula() {
        let c = corpus(&["ulcerative keratitis is corneal ulcer."]);
        let ev = relation_of(&c, "ulcerative keratitis", "corneal ulcer").expect("shared");
        assert_eq!(ev.relation, RelationType::Taxonomic);
    }

    #[test]
    fn direction_does_not_matter_for_extraction() {
        let c = corpus(&["chemical burns cause corneal injuries."]);
        let forward = relation_of(&c, "chemical burns", "corneal injuries").expect("shared");
        let backward = relation_of(&c, "corneal injuries", "chemical burns").expect("shared");
        assert_eq!(forward.relation, backward.relation);
    }

    #[test]
    fn disjoint_terms_yield_none() {
        let c = corpus(&["cornea heals. retina detaches."]);
        assert!(relation_of(&c, "cornea", "retina").is_none());
    }

    #[test]
    fn unmapped_verbs_give_unknown() {
        let c = corpus(&["cornea zigzags retina."]);
        // "zigzags" is not in the lexicon and is tagged noun/other anyway;
        // shared sentence with no mapped verb → Unknown.
        let ev = relation_of(&c, "cornea", "retina").expect("shared");
        assert_eq!(ev.relation, RelationType::Unknown);
    }
}
