//! Step IV — Semantic Linkage.
//!
//! Finds where a candidate term should be attached in the ontology:
//!
//! 1. build the term co-occurrence graph over the corpus and select the
//!    candidate's *MeSH neighbourhood* — the ontology terms it co-occurs
//!    with;
//! 2. score the candidate against (i) those neighbours and (ii) the
//!    fathers/sons of the neighbours' concepts, by **cosine similarity of
//!    aggregate context vectors**;
//! 3. return the top-N ranked *propositions* (paper Table 3 shows the
//!    top-10 for "corneal injuries").

pub mod inventory;
pub mod linker;

pub use inventory::{LinkedTerm, OntologyTermInventory};
pub use linker::{LinkerConfig, PositionOrigin, Proposition, SemanticLinker};
