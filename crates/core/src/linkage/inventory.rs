//! The ontology-term inventory of a corpus: which ontology terms occur in
//! the text, where, and with what aggregate context.

use boe_corpus::context::{ContextOptions, ContextScope, StemMap};
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::{Corpus, SparseVector};
use boe_ontology::{ConceptId, Ontology};
use boe_textkit::TokenId;
use std::collections::HashMap;

/// One ontology term that occurs in the corpus.
#[derive(Debug, Clone)]
pub struct LinkedTerm {
    /// Surface form as written in the ontology/corpus (accents intact).
    pub surface: String,
    /// Normalized identity key ([`boe_textkit::normalize::match_key`]).
    pub key: String,
    /// Token-id sequence in the corpus.
    pub tokens: Vec<TokenId>,
    /// Concepts carrying this term.
    pub concepts: Vec<ConceptId>,
    /// Number of corpus occurrences.
    pub freq: u32,
    /// Aggregate (stemmed) context vector.
    pub context: SparseVector,
}

/// Inventory of every ontology term present in the corpus.
#[derive(Debug)]
pub struct OntologyTermInventory {
    terms: Vec<LinkedTerm>,
    /// Sentence-presence sets: for each term, sorted `(doc, sentence)`
    /// pairs where it occurs.
    presence: Vec<Vec<(u32, u32)>>,
    /// Normalized key → term index.
    by_key: HashMap<String, usize>,
    /// Inverted index over context dimensions: dim → `(term index,
    /// value)` posting list, term indices ascending. Lets Step IV score
    /// a query context against many term contexts by walking only the
    /// query's dimensions instead of merge-joining every pair.
    postings: HashMap<u32, Vec<(u32, f64)>>,
}

impl OntologyTermInventory {
    /// Scan `corpus` for every term of `onto` (preferred + synonyms) and
    /// precompute contexts. Terms with zero occurrences are skipped.
    /// Convenience wrapper that builds its own [`OccurrenceIndex`];
    /// pipeline callers share one per run via
    /// [`Self::build_with_extras`].
    pub fn build(corpus: &Corpus, onto: &Ontology, stems: &StemMap) -> Self {
        let occ = OccurrenceIndex::build(corpus);
        Self::build_with_extras(corpus, onto, stems, &[], ContextScope::Sentence, &occ)
    }

    /// Like [`Self::build`], additionally indexing `extras` — corpus terms
    /// (typically Step-I candidates) that are *not* in the ontology but
    /// may still be proposed as positions, as in the paper's Table 3
    /// ("re-epithelialization", "wound"). Extras carry no concepts.
    /// Occurrences and contexts are resolved through `occ`, batched over
    /// all surfaces in one fan-out instead of re-scanning the corpus per
    /// term.
    pub fn build_with_extras(
        corpus: &Corpus,
        onto: &Ontology,
        stems: &StemMap,
        extras: &[String],
        scope: ContextScope,
        occ: &OccurrenceIndex,
    ) -> Self {
        let opts = ContextOptions {
            window: None,
            stemmed: true,
            scope,
        };
        let mut terms = Vec::new();
        let mut presence = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        // Collect (raw surface, key) pairs. Raw surfaces keep their
        // accents — the corpus tokens do too, so the phrase lookup must
        // use the raw form (the match key is accent-folded and would
        // silently miss every accented French/Spanish term).
        let mut surfaces: Vec<(String, String)> = Vec::new();
        for concept in onto.concepts() {
            for raw in concept.terms() {
                let key = boe_textkit::normalize::match_key(raw);
                surfaces.push((raw.to_owned(), key));
            }
        }
        for extra in extras {
            surfaces.push((extra.clone(), boe_textkit::normalize::match_key(extra)));
        }
        // Order and dedup by match key. The sort is stable, so among
        // duplicate keys the first pushed wins — ontology surfaces beat
        // extras, earlier concepts beat later ones — exactly as a
        // first-insert-wins seen-set would decide, without cloning every
        // key into one.
        surfaces.sort_by(|a, b| a.1.cmp(&b.1));
        surfaces.dedup_by(|a, b| a.1 == b.1);
        // One batched resolution over every surface: the index fans the
        // per-phrase lookups out across threads and returns results in
        // surface (key) order, making the assembly below — and therefore
        // term indices and posting lists — identical to the serial build
        // at any thread count. Surfaces with out-of-vocabulary words
        // keep an empty token list and resolve to zero occurrences.
        let tokens_of: Vec<Vec<TokenId>> = surfaces
            .iter()
            .map(|(surface, _)| corpus.phrase_ids(surface).unwrap_or_default())
            .collect();
        let harvested = occ.aggregate_contexts_for(corpus, &tokens_of, opts, Some(stems));
        for (((surface, key), tokens), (occs, context)) in
            surfaces.into_iter().zip(tokens_of).zip(harvested)
        {
            if tokens.is_empty() || occs.is_empty() {
                continue;
            }
            let mut pres: Vec<(u32, u32)> =
                occs.iter().map(|o| (o.doc.0, o.sentence as u32)).collect();
            pres.sort_unstable();
            pres.dedup();
            let concepts = onto.concepts_of_term(&key).to_vec();
            by_key.insert(key.clone(), terms.len());
            presence.push(pres);
            terms.push(LinkedTerm {
                surface,
                key,
                tokens,
                concepts,
                freq: occs.len() as u32,
                context,
            });
        }
        let mut postings: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
        for (i, t) in terms.iter().enumerate() {
            for (dim, v) in t.context.iter() {
                postings.entry(dim).or_default().push((i as u32, v));
            }
        }
        OntologyTermInventory {
            terms,
            presence,
            by_key,
            postings,
        }
    }

    /// Cosine of `query` against the context of each term in `targets`
    /// (same order), computed through the inverted index: for every
    /// query dimension, its posting list is walked and `query_value ×
    /// term_value` is accumulated into the slot of any listed target.
    ///
    /// Query dimensions are visited in ascending order, so each target's
    /// products accumulate in exactly the order of
    /// [`SparseVector::dot`]'s merge join — with the same
    /// norm-denominator and clamp, the result is bit-identical to
    /// `query.cosine(&term.context)`, only without touching the
    /// dimensions of untargeted terms.
    pub fn cosines_against(&self, query: &SparseVector, targets: &[usize]) -> Vec<f64> {
        const NO_SLOT: u32 = u32::MAX;
        let mut slot = vec![NO_SLOT; self.terms.len()];
        for (s, &t) in targets.iter().enumerate() {
            slot[t] = s as u32;
        }
        let mut dots = vec![0.0f64; targets.len()];
        for (dim, qv) in query.iter() {
            let Some(list) = self.postings.get(&dim) else {
                continue;
            };
            for &(ti, tv) in list {
                let s = slot[ti as usize];
                if s != NO_SLOT {
                    dots[s as usize] += qv * tv;
                }
            }
        }
        targets
            .iter()
            .zip(dots)
            .map(|(&t, dot)| {
                let denom = query.norm() * self.terms[t].context.norm();
                if denom == 0.0 {
                    0.0
                } else {
                    (dot / denom).clamp(-1.0, 1.0)
                }
            })
            .collect()
    }

    /// All linked terms.
    pub fn terms(&self) -> &[LinkedTerm] {
        &self.terms
    }

    /// Number of linked terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no ontology term occurs in the corpus.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Look up a linked term by surface (normalized internally).
    pub fn get(&self, surface: &str) -> Option<&LinkedTerm> {
        self.index_of(surface).map(|i| &self.terms[i])
    }

    /// Index of a linked term by surface (normalized internally).
    pub fn index_of(&self, surface: &str) -> Option<usize> {
        self.by_key
            .get(&boe_textkit::normalize::match_key(surface))
            .copied()
    }

    /// Indices of terms sharing at least one sentence with any of the
    /// given `(doc, sentence)` pairs — the *co-occurrence neighbourhood*.
    pub fn cooccurring(&self, sentences: &[(u32, u32)]) -> Vec<usize> {
        let set: std::collections::HashSet<(u32, u32)> = sentences.iter().copied().collect();
        (0..self.terms.len())
            .filter(|&i| self.presence[i].iter().any(|p| set.contains(p)))
            .collect()
    }

    /// Sentence-presence pairs of term `i`.
    pub fn presence(&self, i: usize) -> &[(u32, u32)] {
        &self.presence[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_ontology::OntologyBuilder;
    use boe_textkit::Language;

    fn world() -> (Corpus, Ontology) {
        let mut ob = OntologyBuilder::new("t", Language::English);
        let eye = ob.add_concept("eye diseases", vec![]);
        let cd = ob.add_concept("corneal diseases", vec!["keratopathy".to_owned()]);
        ob.add_is_a(cd, eye);
        ob.add_concept("absent term", vec![]);
        let onto = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        cb.add_text("corneal diseases damage vision. eye diseases worsen.");
        cb.add_text("keratopathy affects the cornea.");
        (cb.build(), onto)
    }

    #[test]
    fn finds_occurring_terms_only() {
        let (c, o) = world();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        assert!(inv.get("corneal diseases").is_some());
        assert!(inv.get("keratopathy").is_some());
        assert!(inv.get("eye diseases").is_some());
        assert!(inv.get("absent term").is_none());
        assert_eq!(inv.len(), 3);
        assert!(!inv.is_empty());
    }

    #[test]
    fn linked_terms_carry_concepts_and_contexts() {
        let (c, o) = world();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        let t = inv.get("keratopathy").expect("linked");
        assert_eq!(t.concepts, o.concepts_of_term("keratopathy").to_vec());
        assert_eq!(t.freq, 1);
        assert!(!t.context.is_empty());
    }

    #[test]
    fn cooccurrence_neighbourhood() {
        let (c, o) = world();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        // Sentence (0, 0) contains "corneal diseases" only; (0, 1)
        // contains "eye diseases".
        let nb = inv.cooccurring(&[(0, 0)]);
        let surfaces: Vec<&str> = nb
            .iter()
            .map(|&i| inv.terms()[i].surface.as_str())
            .collect();
        assert_eq!(surfaces, vec!["corneal diseases"]);
        assert!(inv.cooccurring(&[(9, 9)]).is_empty());
    }

    #[test]
    fn inverted_index_cosines_are_bit_identical() {
        let (c, o) = world();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        // Query with a context that overlaps some terms but not others.
        let query = inv.get("corneal diseases").expect("linked").context.clone();
        let all: Vec<usize> = (0..inv.len()).collect();
        let fast = inv.cosines_against(&query, &all);
        for (&i, f) in all.iter().zip(&fast) {
            let naive = query.cosine(&inv.terms()[i].context);
            assert_eq!(f.to_bits(), naive.to_bits(), "term {i}");
        }
        // A masked subset only scores the listed targets, in order.
        let subset = vec![2usize, 0];
        let masked = inv.cosines_against(&query, &subset);
        assert_eq!(masked[0].to_bits(), fast[2].to_bits());
        assert_eq!(masked[1].to_bits(), fast[0].to_bits());
        // Empty query → all zeros (cosine's zero-vector guard).
        let zeros = inv.cosines_against(&SparseVector::new(), &all);
        assert!(zeros.iter().all(|&z| z == 0.0));
    }

    #[test]
    fn presence_is_deduplicated() {
        let mut ob = OntologyBuilder::new("t", Language::English);
        ob.add_concept("cornea", vec![]);
        let o = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        cb.add_text("cornea meets cornea in one sentence.");
        let c = cb.build();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        let t = inv.get("cornea").expect("linked");
        assert_eq!(t.freq, 2);
        assert_eq!(inv.presence(0).len(), 1, "one sentence");
    }
}
