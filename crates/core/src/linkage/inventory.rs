//! The ontology-term inventory of a corpus: which ontology terms occur in
//! the text, where, and with what aggregate context.

use boe_corpus::context::{
    aggregate_context, find_occurrences, ContextOptions, ContextScope, StemMap,
};
use boe_corpus::{Corpus, SparseVector};
use boe_ontology::{ConceptId, Ontology};
use boe_textkit::TokenId;
use std::collections::HashMap;

/// One ontology term that occurs in the corpus.
#[derive(Debug, Clone)]
pub struct LinkedTerm {
    /// Surface form as written in the ontology/corpus (accents intact).
    pub surface: String,
    /// Normalized identity key ([`boe_textkit::normalize::match_key`]).
    pub key: String,
    /// Token-id sequence in the corpus.
    pub tokens: Vec<TokenId>,
    /// Concepts carrying this term.
    pub concepts: Vec<ConceptId>,
    /// Number of corpus occurrences.
    pub freq: u32,
    /// Aggregate (stemmed) context vector.
    pub context: SparseVector,
}

/// Inventory of every ontology term present in the corpus.
#[derive(Debug)]
pub struct OntologyTermInventory {
    terms: Vec<LinkedTerm>,
    /// Sentence-presence sets: for each term, sorted `(doc, sentence)`
    /// pairs where it occurs.
    presence: Vec<Vec<(u32, u32)>>,
    /// Normalized key → term index.
    by_key: HashMap<String, usize>,
}

impl OntologyTermInventory {
    /// Scan `corpus` for every term of `onto` (preferred + synonyms) and
    /// precompute contexts. Terms with zero occurrences are skipped.
    pub fn build(corpus: &Corpus, onto: &Ontology, stems: &StemMap) -> Self {
        Self::build_with_extras(corpus, onto, stems, &[], ContextScope::Sentence)
    }

    /// Like [`Self::build`], additionally indexing `extras` — corpus terms
    /// (typically Step-I candidates) that are *not* in the ontology but
    /// may still be proposed as positions, as in the paper's Table 3
    /// ("re-epithelialization", "wound"). Extras carry no concepts.
    pub fn build_with_extras(
        corpus: &Corpus,
        onto: &Ontology,
        stems: &StemMap,
        extras: &[String],
        scope: ContextScope,
    ) -> Self {
        let opts = ContextOptions {
            window: None,
            stemmed: true,
            scope,
        };
        let mut terms = Vec::new();
        let mut presence = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        // Collect (raw surface, key, concepts) triples, deduplicated by
        // match key. Raw surfaces keep their accents — the corpus tokens
        // do too, so the phrase lookup must use the raw form (the match
        // key is accent-folded and would silently miss every accented
        // French/Spanish term).
        let mut surfaces: Vec<(String, String, Vec<ConceptId>)> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for concept in onto.concepts() {
            for raw in concept.terms() {
                let key = boe_textkit::normalize::match_key(raw);
                if seen.insert(key.clone()) {
                    surfaces.push((
                        raw.to_owned(),
                        key.clone(),
                        onto.concepts_of_term(&key).to_vec(),
                    ));
                }
            }
        }
        for extra in extras {
            let key = boe_textkit::normalize::match_key(extra);
            if seen.insert(key.clone()) {
                surfaces.push((extra.clone(), key, Vec::new()));
            }
        }
        surfaces.sort_by(|a, b| a.1.cmp(&b.1));
        for (surface, key, concepts) in surfaces {
            let Some(tokens) = corpus.phrase_ids(&surface) else {
                continue;
            };
            let occs = find_occurrences(corpus, &tokens);
            if occs.is_empty() {
                continue;
            }
            let context = aggregate_context(corpus, &tokens, opts, Some(stems));
            let mut pres: Vec<(u32, u32)> =
                occs.iter().map(|o| (o.doc.0, o.sentence as u32)).collect();
            pres.sort_unstable();
            pres.dedup();
            by_key.insert(key.clone(), terms.len());
            presence.push(pres);
            terms.push(LinkedTerm {
                surface,
                key,
                tokens,
                concepts,
                freq: occs.len() as u32,
                context,
            });
        }
        OntologyTermInventory {
            terms,
            presence,
            by_key,
        }
    }

    /// All linked terms.
    pub fn terms(&self) -> &[LinkedTerm] {
        &self.terms
    }

    /// Number of linked terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no ontology term occurs in the corpus.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Look up a linked term by surface (normalized internally).
    pub fn get(&self, surface: &str) -> Option<&LinkedTerm> {
        self.index_of(surface).map(|i| &self.terms[i])
    }

    /// Index of a linked term by surface (normalized internally).
    pub fn index_of(&self, surface: &str) -> Option<usize> {
        self.by_key
            .get(&boe_textkit::normalize::match_key(surface))
            .copied()
    }

    /// Indices of terms sharing at least one sentence with any of the
    /// given `(doc, sentence)` pairs — the *co-occurrence neighbourhood*.
    pub fn cooccurring(&self, sentences: &[(u32, u32)]) -> Vec<usize> {
        let set: std::collections::HashSet<(u32, u32)> = sentences.iter().copied().collect();
        (0..self.terms.len())
            .filter(|&i| self.presence[i].iter().any(|p| set.contains(p)))
            .collect()
    }

    /// Sentence-presence pairs of term `i`.
    pub fn presence(&self, i: usize) -> &[(u32, u32)] {
        &self.presence[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_ontology::OntologyBuilder;
    use boe_textkit::Language;

    fn world() -> (Corpus, Ontology) {
        let mut ob = OntologyBuilder::new("t", Language::English);
        let eye = ob.add_concept("eye diseases", vec![]);
        let cd = ob.add_concept("corneal diseases", vec!["keratopathy".to_owned()]);
        ob.add_is_a(cd, eye);
        ob.add_concept("absent term", vec![]);
        let onto = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        cb.add_text("corneal diseases damage vision. eye diseases worsen.");
        cb.add_text("keratopathy affects the cornea.");
        (cb.build(), onto)
    }

    #[test]
    fn finds_occurring_terms_only() {
        let (c, o) = world();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        assert!(inv.get("corneal diseases").is_some());
        assert!(inv.get("keratopathy").is_some());
        assert!(inv.get("eye diseases").is_some());
        assert!(inv.get("absent term").is_none());
        assert_eq!(inv.len(), 3);
        assert!(!inv.is_empty());
    }

    #[test]
    fn linked_terms_carry_concepts_and_contexts() {
        let (c, o) = world();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        let t = inv.get("keratopathy").expect("linked");
        assert_eq!(t.concepts, o.concepts_of_term("keratopathy").to_vec());
        assert_eq!(t.freq, 1);
        assert!(!t.context.is_empty());
    }

    #[test]
    fn cooccurrence_neighbourhood() {
        let (c, o) = world();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        // Sentence (0, 0) contains "corneal diseases" only; (0, 1)
        // contains "eye diseases".
        let nb = inv.cooccurring(&[(0, 0)]);
        let surfaces: Vec<&str> = nb
            .iter()
            .map(|&i| inv.terms()[i].surface.as_str())
            .collect();
        assert_eq!(surfaces, vec!["corneal diseases"]);
        assert!(inv.cooccurring(&[(9, 9)]).is_empty());
    }

    #[test]
    fn presence_is_deduplicated() {
        let mut ob = OntologyBuilder::new("t", Language::English);
        ob.add_concept("cornea", vec![]);
        let o = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        cb.add_text("cornea meets cornea in one sentence.");
        let c = cb.build();
        let stems = StemMap::build(&c);
        let inv = OntologyTermInventory::build(&c, &o, &stems);
        let t = inv.get("cornea").expect("linked");
        assert_eq!(t.freq, 2);
        assert_eq!(inv.presence(0).len(), 1, "one sentence");
    }
}
