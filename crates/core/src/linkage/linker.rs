//! The semantic linker.

use crate::linkage::inventory::OntologyTermInventory;
use boe_corpus::context::{ContextOptions, ContextScope, StemMap};
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::Corpus;
use boe_ontology::{query, ConceptId, Ontology};
use std::collections::HashMap;
use std::sync::Arc;

/// How a proposed position entered the candidate list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PositionOrigin {
    /// The term co-occurs with the candidate (its "MeSH neighbour").
    Neighbour,
    /// A term of a father of a neighbour's concept.
    FatherOfNeighbour,
    /// A term of a son of a neighbour's concept.
    SonOfNeighbour,
}

impl PositionOrigin {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PositionOrigin::Neighbour => "neighbour",
            PositionOrigin::FatherOfNeighbour => "father-of-neighbour",
            PositionOrigin::SonOfNeighbour => "son-of-neighbour",
        }
    }
}

/// One ranked proposition: "the candidate term could be positioned at
/// this ontology term" (cf. Table 3).
#[derive(Debug, Clone)]
pub struct Proposition {
    /// The ontology term proposed as position.
    pub term: String,
    /// Concepts carrying that term.
    pub concepts: Vec<ConceptId>,
    /// Context cosine between candidate and position.
    pub cosine: f64,
    /// How the position was reached.
    pub origin: PositionOrigin,
}

/// Linker configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkerConfig {
    /// Number of propositions returned (paper: 10).
    pub top_n: usize,
    /// Include terms of fathers/sons of neighbour concepts even when they
    /// do not co-occur with the candidate (they still need corpus
    /// contexts to score).
    pub expand_hierarchy: bool,
    /// Context reach for the cosine comparison. The paper aggregates the
    /// whole retrieved abstracts (333M tokens of context), which maps to
    /// [`ContextScope::Document`]; sentence scope suits corpora whose
    /// documents mix unrelated topics.
    pub scope: ContextScope,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            top_n: 10,
            expand_hierarchy: true,
            scope: ContextScope::Document,
        }
    }
}

/// The shared front half of a proposal: the candidate's aggregate
/// context, its match key, and the candidate positions in ascending
/// inventory-index order.
struct GatheredPositions {
    context: boe_corpus::SparseVector,
    key: String,
    targets: Vec<(usize, PositionOrigin)>,
}

/// Step-IV semantic linker bound to one corpus + ontology.
#[derive(Debug)]
pub struct SemanticLinker<'c> {
    corpus: &'c Corpus,
    ontology: &'c Ontology,
    stems: StemMap,
    occ: Arc<OccurrenceIndex>,
    inventory: OntologyTermInventory,
    config: LinkerConfig,
}

impl<'c> SemanticLinker<'c> {
    /// Build the linker (indexes the corpus for ontology terms once).
    pub fn new(corpus: &'c Corpus, ontology: &'c Ontology, config: LinkerConfig) -> Self {
        Self::with_candidates(corpus, ontology, config, &[])
    }

    /// Build the linker with extra proposable corpus terms (Step-I
    /// candidates, cf. Table 3 where "wound" and "re-epithelialization"
    /// are proposed despite not being MeSH terms).
    pub fn with_candidates(
        corpus: &'c Corpus,
        ontology: &'c Ontology,
        config: LinkerConfig,
        candidates: &[String],
    ) -> Self {
        let occ = Arc::new(OccurrenceIndex::build(corpus));
        Self::with_candidates_indexed(corpus, ontology, config, candidates, occ)
    }

    /// [`Self::with_candidates`] resolving occurrences through a shared
    /// [`OccurrenceIndex`] (the pipeline builds one per run and hands it
    /// to every stage instead of re-indexing per component).
    pub fn with_candidates_indexed(
        corpus: &'c Corpus,
        ontology: &'c Ontology,
        config: LinkerConfig,
        candidates: &[String],
        occ: Arc<OccurrenceIndex>,
    ) -> Self {
        let stems = StemMap::build(corpus);
        let inventory = OntologyTermInventory::build_with_extras(
            corpus,
            ontology,
            &stems,
            candidates,
            config.scope,
            &occ,
        );
        SemanticLinker {
            corpus,
            ontology,
            stems,
            occ,
            inventory,
            config,
        }
    }

    /// The ontology-term inventory.
    pub fn inventory(&self) -> &OntologyTermInventory {
        &self.inventory
    }

    /// Propose positions for a candidate term given as a surface string.
    /// Returns an empty list when the candidate does not occur in the
    /// corpus.
    ///
    /// Position contexts are scored through the inventory's inverted
    /// index ([`OntologyTermInventory::cosines_against`]); the result is
    /// bit-identical to the brute-force scan kept as
    /// [`SemanticLinker::propose_naive`].
    pub fn propose(&self, candidate: &str) -> Vec<Proposition> {
        let Some(g) = self.gather_positions(candidate) else {
            return Vec::new();
        };
        let indices: Vec<usize> = g.targets.iter().map(|&(i, _)| i).collect();
        let cosines = self.inventory.cosines_against(&g.context, &indices);
        self.rank(&g.key, g.targets, cosines)
    }

    /// [`SemanticLinker::propose`] with the original brute-force cosine
    /// scan (one merge join per position). Kept as the reference
    /// implementation the inverted-index path is verified against.
    pub fn propose_naive(&self, candidate: &str) -> Vec<Proposition> {
        let Some(g) = self.gather_positions(candidate) else {
            return Vec::new();
        };
        let cosines: Vec<f64> = g
            .targets
            .iter()
            .map(|&(i, _)| g.context.cosine(&self.inventory.terms()[i].context))
            .collect();
        self.rank(&g.key, g.targets, cosines)
    }

    /// Shared front half of both proposal paths: the candidate's
    /// aggregate context, its match key, and the candidate positions
    /// (inventory index + origin, ascending index order). `None` when
    /// the candidate does not occur in the corpus.
    fn gather_positions(&self, candidate: &str) -> Option<GatheredPositions> {
        let tokens = self.corpus.phrase_ids(candidate)?;
        let opts = ContextOptions {
            window: None,
            stemmed: true,
            scope: self.config.scope,
        };
        // One positional resolution serves both the occurrence list and
        // the aggregate context.
        let (occs, candidate_ctx) =
            self.occ
                .occurrences_and_context(self.corpus, &tokens, opts, Some(&self.stems));
        if occs.is_empty() {
            return None;
        }
        let sentences: Vec<(u32, u32)> =
            occs.iter().map(|o| (o.doc.0, o.sentence as u32)).collect();

        // (1) MeSH neighbourhood: ontology terms co-occurring with the
        // candidate, excluding the candidate itself if it is already a
        // known term.
        let candidate_key = boe_textkit::normalize::match_key(candidate);
        let neighbours: Vec<usize> = self
            .inventory
            .cooccurring(&sentences)
            .into_iter()
            .filter(|&i| self.inventory.terms()[i].key != candidate_key)
            .collect();

        // (2) Candidate positions: neighbours + terms of fathers/sons of
        // neighbour concepts. Track the best (most direct) origin.
        let mut positions: HashMap<usize, PositionOrigin> = HashMap::new();
        for &i in &neighbours {
            positions.entry(i).or_insert(PositionOrigin::Neighbour);
        }
        if self.config.expand_hierarchy {
            for &i in &neighbours {
                let concepts = self.inventory.terms()[i].concepts.clone();
                for c in concepts {
                    for &f in query::fathers(self.ontology, c) {
                        self.add_concept_terms(
                            &mut positions,
                            f,
                            PositionOrigin::FatherOfNeighbour,
                        );
                    }
                    for &s in query::sons(self.ontology, c) {
                        self.add_concept_terms(&mut positions, s, PositionOrigin::SonOfNeighbour);
                    }
                }
            }
        }
        let mut targets: Vec<(usize, PositionOrigin)> = positions.into_iter().collect();
        targets.sort_unstable_by_key(|&(i, _)| i);
        Some(GatheredPositions {
            context: candidate_ctx,
            key: candidate_key,
            targets,
        })
    }

    /// Shared back half of both proposal paths: build, filter, rank and
    /// truncate the propositions given per-target cosines (aligned with
    /// `targets`).
    fn rank(
        &self,
        candidate_key: &str,
        targets: Vec<(usize, PositionOrigin)>,
        cosines: Vec<f64>,
    ) -> Vec<Proposition> {
        let mut props: Vec<Proposition> = targets
            .into_iter()
            .zip(cosines)
            .map(|((i, origin), cosine)| {
                let t = &self.inventory.terms()[i];
                Proposition {
                    term: t.surface.clone(),
                    concepts: t.concepts.clone(),
                    cosine,
                    origin,
                }
            })
            .filter(|p| boe_textkit::normalize::match_key(&p.term) != candidate_key)
            .collect();
        props.sort_by(|a, b| {
            b.cosine
                .partial_cmp(&a.cosine)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.term.cmp(&b.term))
        });
        props.truncate(self.config.top_n);
        props
    }

    /// Add every corpus-linked term of `concept` as a position with
    /// `origin` (neighbour origin wins if already present).
    fn add_concept_terms(
        &self,
        positions: &mut HashMap<usize, PositionOrigin>,
        concept: ConceptId,
        origin: PositionOrigin,
    ) {
        for term in self.ontology.concept(concept).terms() {
            if let Some(idx) = self.inventory.index_of(term) {
                positions.entry(idx).or_insert(origin);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_ontology::OntologyBuilder;
    use boe_textkit::Language;

    /// Ontology: eye diseases ⊃ corneal diseases ⊃ corneal ulcer;
    /// candidate "corneal injuries" co-occurs with "corneal diseases".
    fn world() -> (Corpus, Ontology) {
        let mut ob = OntologyBuilder::new("t", Language::English);
        let eye = ob.add_concept("eye diseases", vec![]);
        let cd = ob.add_concept("corneal diseases", vec![]);
        let cu = ob.add_concept("corneal ulcer", vec![]);
        ob.add_is_a(cd, eye);
        ob.add_is_a(cu, cd);
        let onto = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        for _ in 0..4 {
            cb.add_text(
                "corneal injuries resemble corneal diseases in the epithelium stroma tissue.",
            );
            cb.add_text("corneal diseases affect the epithelium stroma tissue.");
            cb.add_text("corneal ulcer damages the epithelium stroma tissue.");
            cb.add_text("eye diseases involve the retina macula nerve.");
        }
        (cb.build(), onto)
    }

    #[test]
    fn proposes_cooccurring_neighbour_first() {
        let (c, o) = world();
        let linker = SemanticLinker::new(&c, &o, LinkerConfig::default());
        let props = linker.propose("corneal injuries");
        assert!(!props.is_empty());
        assert_eq!(props[0].term, "corneal diseases");
        assert_eq!(props[0].origin, PositionOrigin::Neighbour);
        assert!(props[0].cosine > 0.5, "cosine {}", props[0].cosine);
    }

    #[test]
    fn hierarchy_expansion_adds_fathers_and_sons() {
        let (c, o) = world();
        let linker = SemanticLinker::new(&c, &o, LinkerConfig::default());
        let props = linker.propose("corneal injuries");
        let terms: Vec<&str> = props.iter().map(|p| p.term.as_str()).collect();
        assert!(terms.contains(&"eye diseases"), "{terms:?}");
        assert!(terms.contains(&"corneal ulcer"), "{terms:?}");
        let ulcer = props
            .iter()
            .find(|p| p.term == "corneal ulcer")
            .expect("present");
        assert_eq!(ulcer.origin, PositionOrigin::SonOfNeighbour);
    }

    #[test]
    fn ranking_is_by_context_similarity() {
        let (c, o) = world();
        let linker = SemanticLinker::new(&c, &o, LinkerConfig::default());
        let props = linker.propose("corneal injuries");
        assert!(props.windows(2).all(|w| w[0].cosine >= w[1].cosine));
        // "eye diseases" shares no context words with the candidate →
        // must rank below "corneal ulcer" which shares the epithelium
        // context.
        let pos = |t: &str| props.iter().position(|p| p.term == t).expect("present");
        assert!(pos("corneal ulcer") < pos("eye diseases"));
    }

    #[test]
    fn unknown_candidate_yields_nothing() {
        let (c, o) = world();
        let linker = SemanticLinker::new(&c, &o, LinkerConfig::default());
        assert!(linker.propose("nonexistent term").is_empty());
    }

    #[test]
    fn top_n_truncates() {
        let (c, o) = world();
        let linker = SemanticLinker::new(
            &c,
            &o,
            LinkerConfig {
                top_n: 1,
                ..Default::default()
            },
        );
        assert_eq!(linker.propose("corneal injuries").len(), 1);
    }

    #[test]
    fn no_hierarchy_expansion_keeps_neighbours_only() {
        let (c, o) = world();
        let linker = SemanticLinker::new(
            &c,
            &o,
            LinkerConfig {
                expand_hierarchy: false,
                ..Default::default()
            },
        );
        let props = linker.propose("corneal injuries");
        assert!(props.iter().all(|p| p.origin == PositionOrigin::Neighbour));
    }

    #[test]
    fn corpus_candidates_are_proposable() {
        let (c, o) = world();
        let linker = SemanticLinker::with_candidates(
            &c,
            &o,
            LinkerConfig::default(),
            &["epithelium".to_owned(), "corneal injuries".to_owned()],
        );
        let props = linker.propose("corneal injuries");
        let epi = props.iter().find(|p| p.term == "epithelium");
        let epi = epi.expect("corpus term proposed");
        assert!(epi.concepts.is_empty(), "extras carry no concepts");
        assert_eq!(epi.origin, PositionOrigin::Neighbour);
        // The candidate itself was passed as an extra but must never be
        // proposed as its own position.
        assert!(props.iter().all(|p| p.term != "corneal injuries"));
    }

    #[test]
    fn inverted_index_matches_naive_scan_exactly() {
        let (c, o) = world();
        for expand_hierarchy in [true, false] {
            let linker = SemanticLinker::with_candidates(
                &c,
                &o,
                LinkerConfig {
                    expand_hierarchy,
                    ..Default::default()
                },
                &["epithelium".to_owned(), "stroma".to_owned()],
            );
            for candidate in ["corneal injuries", "epithelium", "nonexistent term"] {
                let fast = linker.propose(candidate);
                let naive = linker.propose_naive(candidate);
                assert_eq!(fast.len(), naive.len(), "{candidate}");
                for (f, n) in fast.iter().zip(&naive) {
                    assert_eq!(f.term, n.term, "{candidate}");
                    assert_eq!(f.concepts, n.concepts);
                    assert_eq!(f.origin, n.origin);
                    assert_eq!(
                        f.cosine.to_bits(),
                        n.cosine.to_bits(),
                        "{candidate} / {}: {} vs {}",
                        f.term,
                        f.cosine,
                        n.cosine
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_never_proposes_itself() {
        let mut ob = OntologyBuilder::new("t", Language::English);
        ob.add_concept("corneal injuries", vec![]);
        ob.add_concept("corneal diseases", vec![]);
        let o = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        cb.add_text("corneal injuries resemble corneal diseases closely.");
        cb.add_text("corneal injuries resemble corneal diseases closely.");
        let c = cb.build();
        let linker = SemanticLinker::new(&c, &o, LinkerConfig::default());
        let props = linker.propose("corneal injuries");
        assert!(props.iter().all(|p| p.term != "corneal injuries"));
    }
}
