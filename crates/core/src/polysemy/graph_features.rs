//! The 12 graph-based polysemy features.
//!
//! Computed from the word co-occurrence graph *induced from the corpus*
//! (paper §2(II): "extracted ... from a graph itself induced from the
//! text corpus"). The signal: a polysemic term's **ego network** splits
//! into one weakly-interconnected region per sense, so ego density and
//! clustering are low while the number of components/communities of the
//! ego graph (minus the term itself) is high.

use boe_corpus::stats::CoocCounts;
use boe_corpus::Corpus;
use boe_graph::builder::GraphBuilder;
use boe_graph::community::{community_count, label_propagation, modularity};
use boe_graph::components::connected_components;
use boe_graph::kcore::core_numbers;
use boe_graph::metrics::{average_clustering, density, local_clustering};
use boe_graph::pagerank::{pagerank, PageRankParams};
use boe_graph::{Graph, NodeId};
use boe_textkit::TokenId;

/// Names of the 12 graph features, index-aligned with [`graph_features`].
pub const GRAPH_FEATURE_NAMES: [&str; 12] = [
    "degree",
    "weighted_degree",
    "local_clustering",
    "ego_density",
    "ego_components",
    "ego_communities",
    "ego_modularity",
    "ego_average_clustering",
    "pagerank",
    "core_number",
    "mean_neighbour_degree",
    "two_hop_expansion",
];

/// The corpus-wide induced word graph plus cached global analyses,
/// shared across all terms being classified.
#[derive(Debug)]
pub struct TermGraphContext {
    graph: Graph,
    node_of: std::collections::HashMap<TokenId, NodeId>,
    pagerank: Vec<f64>,
    cores: Vec<u32>,
}

impl TermGraphContext {
    /// Build the induced graph from windowed co-occurrence counts,
    /// keeping pairs with count ≥ `min_cooc`.
    pub fn build(corpus: &Corpus, cooc: &CoocCounts, min_cooc: u32) -> Self {
        let _ = corpus; // the corpus fixes the vocabulary the counts use
        let mut b = GraphBuilder::new();
        for ((a, bb), c) in cooc.iter_pairs() {
            if c >= min_cooc {
                b.add_edge(u64::from(a.0), u64::from(bb.0), f64::from(c));
            }
        }
        let (graph, keys) = b.build();
        let node_of = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (TokenId(k as u32), NodeId(i as u32)))
            .collect();
        let pr = pagerank(&graph, PageRankParams::default());
        let cores = core_numbers(&graph);
        TermGraphContext {
            graph,
            node_of,
            pagerank: pr,
            cores,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Node of a token, if it survived the co-occurrence threshold.
    pub fn node(&self, t: TokenId) -> Option<NodeId> {
        self.node_of.get(&t).copied()
    }
}

/// Compute the 12 graph features of `phrase` (multi-word terms use the
/// component word with the highest degree — the lexical head dominates
/// the co-occurrence signal). Terms absent from the graph get all-zero
/// features.
pub fn graph_features(ctx: &TermGraphContext, phrase: &[TokenId]) -> [f64; 12] {
    // Representative node: component word with the highest degree.
    let node = phrase
        .iter()
        .filter_map(|&t| ctx.node(t))
        .max_by_key(|&n| ctx.graph.degree(n));
    let Some(v) = node else {
        return [0.0; 12];
    };
    let g = &ctx.graph;
    let degree = g.degree(v) as f64;
    let wdegree = g.weighted_degree(v);
    let lcc = local_clustering(g, v);

    // Ego network minus the center: the sense-split signal.
    let ego_nodes: Vec<NodeId> = g.neighbours(v).iter().map(|&(u, _)| u).collect();
    let (ego, _) = g.induced_subgraph(&ego_nodes);
    let ego_density = density(&ego);
    let comps = connected_components(&ego);
    let labels = label_propagation(&ego, 20);
    let n_comm = community_count(&labels) as f64;
    let q = modularity(&ego, &labels);
    let ego_avg_cc = average_clustering(&ego);

    let pr = ctx.pagerank[v.index()];
    let core = f64::from(ctx.cores[v.index()]);
    let mean_nb_deg = if ego_nodes.is_empty() {
        0.0
    } else {
        ego_nodes.iter().map(|&u| g.degree(u) as f64).sum::<f64>() / ego_nodes.len() as f64
    };
    // Two-hop expansion: |N2(v)| / |N1(v)| — polysemic hubs reach more.
    let two_hop = {
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for &u in &ego_nodes {
            for &(w, _) in g.neighbours(u) {
                if w != v && !ego_nodes.contains(&w) {
                    seen.insert(w);
                }
            }
        }
        if ego_nodes.is_empty() {
            0.0
        } else {
            seen.len() as f64 / ego_nodes.len() as f64
        }
    };

    [
        degree,
        wdegree,
        lcc,
        ego_density,
        comps.count as f64,
        n_comm,
        q,
        ego_avg_cc,
        pr,
        core,
        mean_nb_deg,
        two_hop,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn setup(texts: &[&str]) -> (Corpus, TermGraphContext) {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let cc = CoocCounts::from_corpus(&c, 5);
        let ctx = TermGraphContext::build(&c, &cc, 1);
        (c, ctx)
    }

    #[test]
    fn polysemic_ego_network_fragments() {
        // "polyx" bridges two families that never co-occur directly;
        // "monox" sits in one triangle.
        let (c, ctx) = setup(&[
            "monox alpha beta.",
            "monox alpha beta.",
            "polyx gamma delta.",
            "polyx omega sigma.",
        ]);
        let polyx = c.vocab().get("polyx").expect("id");
        let monox = c.vocab().get("monox").expect("id");
        let f_poly = graph_features(&ctx, &[polyx]);
        let f_mono = graph_features(&ctx, &[monox]);
        // Ego components: polyx's ego (gamma-delta, omega-sigma) has 2;
        // monox's (alpha-beta) has 1.
        assert_eq!(f_poly[4], 2.0, "{f_poly:?}");
        assert_eq!(f_mono[4], 1.0, "{f_mono:?}");
        assert!(f_poly[5] >= f_mono[5], "communities");
        assert!(f_poly[0] > f_mono[0], "degree");
    }

    #[test]
    fn clustering_detects_tight_neighbourhood() {
        let (c, ctx) = setup(&[
            "monox alpha beta.",
            "monox alpha beta.",
            "alpha beta gamma.",
        ]);
        let monox = c.vocab().get("monox").expect("id");
        let f = graph_features(&ctx, &[monox]);
        // alpha and beta are connected ⇒ local clustering 1.0.
        assert!((f[2] - 1.0).abs() < 1e-12, "{f:?}");
    }

    #[test]
    fn absent_term_gets_zero_features() {
        let (c, ctx) = setup(&["alpha beta gamma."]);
        // A token that was filtered (stopword) or unseen has no node.
        let unseen = TokenId(9999);
        let f = graph_features(&ctx, &[unseen]);
        assert_eq!(f, [0.0; 12]);
        let _ = c;
    }

    #[test]
    fn multiword_uses_highest_degree_component() {
        let (c, ctx) = setup(&[
            "corneal injuries epithelium damage.",
            "corneal injuries membrane repair.",
            "corneal scarring tissue healing.",
        ]);
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let f = graph_features(&ctx, &phrase);
        let corneal = c.vocab().get("corneal").expect("id");
        let f_head = graph_features(&ctx, &[corneal]);
        // "corneal" has the larger neighbourhood; the phrase should
        // inherit its features.
        assert_eq!(f[0], f_head[0]);
    }

    #[test]
    fn all_features_finite() {
        let (c, ctx) = setup(&[
            "corneal injuries epithelium damage.",
            "corneal injuries membrane repair.",
        ]);
        let phrase = c.phrase_ids("corneal injuries").expect("known");
        let f = graph_features(&ctx, &phrase);
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }
}
