//! Step II — Polysemy Detection.
//!
//! Predicts whether a candidate term is polysemic from **23 features**:
//! 11 *direct* features computed from the texts and 12 computed from the
//! *induced co-occurrence graph* (paper §2(II); the paper reports a 98%
//! F-measure for this classification).

pub mod detector;
pub mod direct_features;
pub mod graph_features;

pub use detector::{PolysemyDetector, PolysemyModel};
pub use direct_features::{direct_features, DIRECT_FEATURE_NAMES};
pub use graph_features::{graph_features, TermGraphContext, GRAPH_FEATURE_NAMES};

/// Total feature count (11 direct + 12 graph = the paper's 23).
pub const N_FEATURES: usize = DIRECT_FEATURE_NAMES.len() + GRAPH_FEATURE_NAMES.len();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_budget_matches_paper() {
        assert_eq!(DIRECT_FEATURE_NAMES.len(), 11);
        assert_eq!(GRAPH_FEATURE_NAMES.len(), 12);
        assert_eq!(N_FEATURES, 23);
    }
}
