//! The 11 direct (text-level) polysemy features.
//!
//! All are computed from the corpus alone. The discriminative intuition:
//! a polysemic term occurs in *heterogeneous* contexts — high context
//! diversity and entropy, low self-similarity between its occurrence
//! contexts.

use boe_corpus::context::{context_vector, ContextOptions, ContextScope};
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::stats::CoocCounts;
use boe_corpus::{Corpus, SparseVector};
use boe_textkit::TokenId;

/// Names of the 11 direct features, index-aligned with
/// [`direct_features`]'s output.
pub const DIRECT_FEATURE_NAMES: [&str; 11] = [
    "char_length",
    "word_count",
    "term_frequency",
    "document_frequency",
    "idf",
    "neighbour_diversity",
    "context_entropy",
    "mean_context_self_similarity",
    "context_similarity_variance",
    "mean_sentence_length",
    "burstiness",
];

/// Compute the 11 direct features of `phrase` over `corpus`.
///
/// `cooc` must be windowed co-occurrence counts of the same corpus (they
/// are shared across terms, so the caller builds them once). All
/// occurrence-derived features (tf, df, contexts, sentence lengths) come
/// from a single resolution through `occ`.
pub fn direct_features(
    corpus: &Corpus,
    occ: &OccurrenceIndex,
    cooc: &CoocCounts,
    phrase: &[TokenId],
    surface: &str,
) -> [f64; 11] {
    let occs = occ.find_occurrences(corpus, phrase);
    let tf = occs.len() as u32;
    // Occurrences arrive grouped by document (ascending), so distinct
    // documents are counted at the group boundaries.
    let df = occs
        .iter()
        .zip(occs.iter().skip(1))
        .filter(|(a, b)| a.doc != b.doc)
        .count() as f64
        + if occs.is_empty() { 0.0 } else { 1.0 };
    let n_docs = corpus.len() as f64;
    let idf = ((n_docs + 1.0) / (df + 1.0)).ln() + 1.0;

    // Neighbour diversity & entropy from the head word's co-occurrences
    // (for multi-word terms the head noun carries the sense signal; we
    // pool over all component words).
    let mut neighbour_counts: Vec<u32> = Vec::new();
    for &t in phrase {
        for (_, c) in cooc.neighbours(t) {
            neighbour_counts.push(c);
        }
    }
    let diversity = neighbour_counts.len() as f64;
    let total: f64 = neighbour_counts.iter().map(|&c| f64::from(c)).sum();
    let entropy = if total > 0.0 {
        neighbour_counts
            .iter()
            .map(|&c| {
                let p = f64::from(c) / total;
                -p * p.ln()
            })
            .sum()
    } else {
        0.0
    };

    // Context self-similarity: mean and variance of cosine between each
    // occurrence context and the aggregate context. Polysemic terms have
    // a lower mean and a higher variance.
    let opts = ContextOptions {
        window: Some(6),
        stemmed: false,
        scope: ContextScope::Sentence,
    };
    let ctxs: Vec<SparseVector> = occs
        .iter()
        .map(|&o| context_vector(corpus, o, phrase.len(), opts, None))
        .collect();
    let (mean_sim, var_sim) = context_self_similarity(&ctxs);

    // Mean sentence length over occurrences.
    let mean_sent_len = if occs.is_empty() {
        0.0
    } else {
        occs.iter()
            .map(|o| corpus.doc(o.doc).sentences[o.sentence].len() as f64)
            .sum::<f64>()
            / occs.len() as f64
    };

    let burstiness = if df > 0.0 { f64::from(tf) / df } else { 0.0 };

    [
        surface.chars().count() as f64,
        phrase.len() as f64,
        f64::from(tf),
        df,
        idf,
        diversity,
        entropy,
        mean_sim,
        var_sim,
        mean_sent_len,
        burstiness,
    ]
}

/// Mean and variance of cosine(context_i, centroid of the others).
fn context_self_similarity(ctxs: &[SparseVector]) -> (f64, f64) {
    if ctxs.len() < 2 {
        return (1.0, 0.0);
    }
    let total = SparseVector::sum_of(ctxs);
    let sims: Vec<f64> = ctxs
        .iter()
        .map(|c| {
            let mut rest = total.clone();
            let mut neg = c.clone();
            neg.scale(-1.0);
            rest.add_assign(&neg);
            c.cosine(&rest)
        })
        .collect();
    let n = sims.len() as f64;
    let mean = sims.iter().sum::<f64>() / n;
    let var = sims.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn setup(texts: &[&str]) -> (Corpus, OccurrenceIndex, CoocCounts) {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let ox = OccurrenceIndex::build(&c);
        let cc = CoocCounts::from_corpus(&c, 5);
        (c, ox, cc)
    }

    fn features_of(c: &Corpus, ox: &OccurrenceIndex, cc: &CoocCounts, phrase: &str) -> [f64; 11] {
        let ids = c.phrase_ids(phrase).expect("known phrase");
        direct_features(c, ox, cc, &ids, phrase)
    }

    #[test]
    fn basic_counts_are_right() {
        let (c, ix, cc) = setup(&[
            "corneal injuries heal.",
            "corneal injuries persist. corneal injuries recur.",
        ]);
        let f = features_of(&c, &ix, &cc, "corneal injuries");
        assert_eq!(f[0], "corneal injuries".chars().count() as f64);
        assert_eq!(f[1], 2.0, "word count");
        assert_eq!(f[2], 3.0, "tf");
        assert_eq!(f[3], 2.0, "df");
        assert!((f[10] - 1.5).abs() < 1e-12, "burstiness tf/df");
    }

    #[test]
    fn monosemous_term_has_higher_context_similarity() {
        // "monox" always appears with the same companions; "polyx" appears
        // in two disjoint context families.
        let (c, ix, cc) = setup(&[
            "monox alpha beta gamma.",
            "monox alpha beta delta.",
            "monox alpha gamma delta.",
            "polyx alpha beta gamma.",
            "polyx omega sigma theta.",
            "polyx omega sigma kappa.",
        ]);
        let f_mono = features_of(&c, &ix, &cc, "monox");
        let f_poly = features_of(&c, &ix, &cc, "polyx");
        assert!(
            f_mono[7] > f_poly[7],
            "mean self-sim: monox {} vs polyx {}",
            f_mono[7],
            f_poly[7]
        );
    }

    #[test]
    fn polysemic_term_has_more_diverse_neighbours() {
        let (c, ix, cc) = setup(&[
            "monox alpha beta.",
            "monox alpha beta.",
            "polyx alpha beta.",
            "polyx omega sigma.",
        ]);
        let f_mono = features_of(&c, &ix, &cc, "monox");
        let f_poly = features_of(&c, &ix, &cc, "polyx");
        assert!(f_poly[5] > f_mono[5], "diversity");
        assert!(f_poly[6] > f_mono[6], "entropy");
    }

    #[test]
    fn unseen_phrase_yields_zeroish_features() {
        let (c, ix, cc) = setup(&["alpha beta gamma."]);
        let alpha = c.vocab().get("alpha").expect("id");
        let gamma = c.vocab().get("gamma").expect("id");
        // "alpha gamma" never occurs adjacently.
        let f = direct_features(&c, &ix, &cc, &[alpha, gamma], "alpha gamma");
        assert_eq!(f[2], 0.0);
        assert_eq!(f[3], 0.0);
        assert_eq!(f[9], 0.0, "no occurrences, no sentence length");
    }

    #[test]
    fn all_features_finite() {
        let (c, ix, cc) = setup(&["corneal injuries heal.", "corneal injuries persist."]);
        let f = features_of(&c, &ix, &cc, "corneal injuries");
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }
}
