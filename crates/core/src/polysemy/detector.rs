//! The polysemy detector: 23 features → binary classifier.

use crate::polysemy::direct_features::direct_features;
use crate::polysemy::graph_features::{graph_features, TermGraphContext};
use crate::polysemy::N_FEATURES;
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::stats::CoocCounts;
use boe_corpus::Corpus;
use boe_ml::boost::AdaBoost;
use boe_ml::dataset::Dataset;
use boe_ml::forest::RandomForest;
use boe_ml::knn::KNearest;
use boe_ml::logreg::LogisticRegression;
use boe_ml::model::Classifier;
use boe_ml::naive_bayes::GaussianNb;
use boe_ml::scale::StandardScaler;
use boe_ml::svm::LinearSvm;
use boe_ml::tree::DecisionTree;
use boe_textkit::TokenId;
use std::sync::Arc;

/// The classifier families the paper tries ("several machine learning
/// algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolysemyModel {
    /// Logistic regression.
    LogReg,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// CART decision tree.
    Tree,
    /// Random forest.
    Forest,
    /// k-nearest neighbours (k = 5).
    Knn,
    /// Linear SVM (Pegasos).
    Svm,
    /// AdaBoost over decision stumps.
    Boost,
}

impl PolysemyModel {
    /// All model families.
    pub const ALL: [PolysemyModel; 7] = [
        PolysemyModel::LogReg,
        PolysemyModel::NaiveBayes,
        PolysemyModel::Tree,
        PolysemyModel::Forest,
        PolysemyModel::Knn,
        PolysemyModel::Svm,
        PolysemyModel::Boost,
    ];

    /// Instantiate an unfitted classifier.
    pub fn build(self) -> Box<dyn Classifier> {
        match self {
            PolysemyModel::LogReg => Box::new(LogisticRegression::new()),
            PolysemyModel::NaiveBayes => Box::new(GaussianNb::new()),
            PolysemyModel::Tree => Box::new(DecisionTree::new()),
            PolysemyModel::Forest => Box::new(RandomForest::new()),
            PolysemyModel::Knn => Box::new(KNearest::new(5)),
            PolysemyModel::Svm => Box::new(LinearSvm::new()),
            PolysemyModel::Boost => Box::new(AdaBoost::new()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolysemyModel::LogReg => "logreg",
            PolysemyModel::NaiveBayes => "naive-bayes",
            PolysemyModel::Tree => "tree",
            PolysemyModel::Forest => "forest",
            PolysemyModel::Knn => "knn",
            PolysemyModel::Svm => "svm",
            PolysemyModel::Boost => "adaboost",
        }
    }
}

impl std::fmt::Display for PolysemyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Feature extraction context bundling the shared corpus analyses.
#[derive(Debug)]
pub struct FeatureContext<'c> {
    corpus: &'c Corpus,
    occ: Arc<OccurrenceIndex>,
    cooc: CoocCounts,
    graph: TermGraphContext,
}

impl<'c> FeatureContext<'c> {
    /// Build the shared analyses once for a corpus (indexes it in the
    /// process).
    pub fn build(corpus: &'c Corpus) -> Self {
        Self::build_with_index(corpus, Arc::new(OccurrenceIndex::build(corpus)))
    }

    /// Build the shared analyses, resolving occurrences through a shared
    /// [`OccurrenceIndex`] (one per pipeline run).
    pub fn build_with_index(corpus: &'c Corpus, occ: Arc<OccurrenceIndex>) -> Self {
        let cooc = CoocCounts::from_corpus(corpus, 5);
        let graph = TermGraphContext::build(corpus, &cooc, 1);
        FeatureContext {
            corpus,
            occ,
            cooc,
            graph,
        }
    }

    /// The full 23-feature vector of one term.
    pub fn features(&self, phrase: &[TokenId], surface: &str) -> Vec<f64> {
        let d = direct_features(self.corpus, &self.occ, &self.cooc, phrase, surface);
        let g = graph_features(&self.graph, phrase);
        let mut out = Vec::with_capacity(N_FEATURES);
        out.extend_from_slice(&d);
        out.extend_from_slice(&g);
        out
    }
}

/// A trained polysemy detector (scaler + classifier).
pub struct PolysemyDetector {
    scaler: StandardScaler,
    model: Box<dyn Classifier>,
}

impl std::fmt::Debug for PolysemyDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolysemyDetector")
            .field("model", &self.model.name())
            .finish()
    }
}

impl PolysemyDetector {
    /// Train on labelled `(features, is_polysemic)` rows.
    pub fn train(model: PolysemyModel, rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        let data = Dataset::new(rows, labels);
        let scaler = StandardScaler::fit(&data);
        let scaled = scaler.transform(&data);
        let mut classifier = model.build();
        classifier.fit(&scaled);
        PolysemyDetector {
            scaler,
            model: classifier,
        }
    }

    /// Is the term with this feature vector polysemic?
    pub fn is_polysemic(&self, features: &[f64]) -> bool {
        let mut row = features.to_vec();
        self.scaler.transform_row(&mut row);
        self.model.predict(&row)
    }

    /// Probability the term is polysemic.
    pub fn proba(&self, features: &[f64]) -> f64 {
        let mut row = features.to_vec();
        self.scaler.transform_row(&mut row);
        self.model.predict_proba(&row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    /// Corpus where `polyN` words appear in two disjoint context families
    /// and `monoN` words in one.
    fn labelled_corpus(n_each: usize) -> (Corpus, Vec<(String, bool)>) {
        let mut b = CorpusBuilder::new(Language::English);
        let mut terms = Vec::new();
        for i in 0..n_each {
            let mono = format!("monoterm{i}");
            let poly = format!("polyterm{i}");
            for _ in 0..4 {
                b.add_text(&format!("{mono} alphaw{i} betaw{i} gammaw{i}."));
                b.add_text(&format!("{poly} alphaw{i} betaw{i} gammaw{i}."));
                b.add_text(&format!("{poly} omegaw{i} sigmaw{i} thetaw{i}."));
            }
            terms.push((mono, false));
            terms.push((poly, true));
        }
        (b.build(), terms)
    }

    #[test]
    fn detector_separates_synthetic_poly_and_mono() {
        let (corpus, terms) = labelled_corpus(12);
        let ctx = FeatureContext::build(&corpus);
        let rows: Vec<Vec<f64>> = terms
            .iter()
            .map(|(t, _)| {
                let ids = corpus.phrase_ids(t).expect("known");
                ctx.features(&ids, t)
            })
            .collect();
        let labels: Vec<bool> = terms.iter().map(|(_, l)| *l).collect();
        let det = PolysemyDetector::train(PolysemyModel::Forest, rows.clone(), labels.clone());
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| det.is_polysemic(r) == l)
            .count();
        let acc = correct as f64 / rows.len() as f64;
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn proba_is_in_unit_interval() {
        let (corpus, terms) = labelled_corpus(4);
        let ctx = FeatureContext::build(&corpus);
        let rows: Vec<Vec<f64>> = terms
            .iter()
            .map(|(t, _)| ctx.features(&corpus.phrase_ids(t).expect("known"), t))
            .collect();
        let labels: Vec<bool> = terms.iter().map(|(_, l)| *l).collect();
        let det = PolysemyDetector::train(PolysemyModel::LogReg, rows.clone(), labels);
        for r in &rows {
            let p = det.proba(r);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn all_model_families_instantiate_and_train() {
        let (corpus, terms) = labelled_corpus(3);
        let ctx = FeatureContext::build(&corpus);
        let rows: Vec<Vec<f64>> = terms
            .iter()
            .map(|(t, _)| ctx.features(&corpus.phrase_ids(t).expect("known"), t))
            .collect();
        let labels: Vec<bool> = terms.iter().map(|(_, l)| *l).collect();
        for m in PolysemyModel::ALL {
            let det = PolysemyDetector::train(m, rows.clone(), labels.clone());
            let _ = det.is_polysemic(&rows[0]);
        }
    }

    #[test]
    fn feature_vectors_have_23_dimensions() {
        let (corpus, terms) = labelled_corpus(1);
        let ctx = FeatureContext::build(&corpus);
        let (t, _) = &terms[0];
        let f = ctx.features(&corpus.phrase_ids(t).expect("known"), t);
        assert_eq!(f.len(), 23);
    }
}
