//! Run diagnostics: what happened, what was skipped, and why.
//!
//! A pipeline run that returns `Ok` may still have downgraded individual
//! terms (degraded-mode execution) or noticed suspicious input. All of
//! that is recorded here and travels inside the
//! [`EnrichmentReport`](crate::report::EnrichmentReport), so callers can
//! distinguish a clean run from a limping one without parsing logs.

use crate::error::Stage;
use std::fmt;
use std::time::Duration;

/// Wall-clock duration of one pipeline stage.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// The stage measured.
    pub stage: Stage,
    /// Total wall-clock time spent in the stage.
    pub elapsed: Duration,
}

/// One per-term degradation: a stage failed for this term, the term was
/// downgraded (or skipped) instead of aborting the run.
#[derive(Debug, Clone)]
pub struct Degradation {
    /// The affected candidate term.
    pub term: String,
    /// The stage that failed.
    pub stage: Stage,
    /// What went wrong, in one line.
    pub reason: String,
}

/// Outcome of the Step-II detector training on ontology-derived labels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DetectorOutcome {
    /// Training was never reached (e.g. the run failed validation).
    #[default]
    NotAttempted,
    /// A detector was trained.
    Trained {
        /// Training examples (ontology terms found in the corpus).
        examples: usize,
        /// How many of them are labelled polysemic.
        positives: usize,
    },
    /// No detector could be trained; every term falls back to the
    /// monosemic majority prior.
    Fallback {
        /// Why training was impossible.
        reason: String,
    },
}

/// Structured diagnostics of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct RunDiagnostics {
    /// Per-stage wall-clock timings, in execution order.
    pub timings: Vec<StageTiming>,
    /// Validation warnings about suspicious-but-usable input.
    pub warnings: Vec<String>,
    /// Terms downgraded or skipped by per-term degraded-mode execution.
    pub degraded: Vec<Degradation>,
    /// How Step-II detector training went.
    pub detector: DetectorOutcome,
}

impl RunDiagnostics {
    /// Whether any term was downgraded or any warning raised.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty() || !self.warnings.is_empty()
    }

    /// Total number of warnings and degradations.
    pub fn warning_count(&self) -> usize {
        self.warnings.len() + self.degraded.len()
    }

    /// Record a degradation.
    pub fn degrade(&mut self, term: impl Into<String>, stage: Stage, reason: impl Into<String>) {
        self.degraded.push(Degradation {
            term: term.into(),
            stage,
            reason: reason.into(),
        });
    }

    /// Record a validation warning.
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(message.into());
    }
}

impl fmt::Display for RunDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.timings.is_empty() {
            writeln!(f, "stage timings:")?;
            for t in &self.timings {
                writeln!(
                    f,
                    "  {:<32} {:>10.3} ms",
                    t.stage,
                    t.elapsed.as_secs_f64() * 1e3
                )?;
            }
        }
        match &self.detector {
            DetectorOutcome::NotAttempted => {}
            DetectorOutcome::Trained {
                examples,
                positives,
            } => writeln!(
                f,
                "detector: trained on {examples} ontology terms ({positives} polysemic)"
            )?,
            DetectorOutcome::Fallback { reason } => {
                writeln!(f, "detector: monosemic-prior fallback ({reason})")?
            }
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        for d in &self.degraded {
            writeln!(f, "degraded: {:?} at {} — {}", d.term, d.stage, d.reason)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let d = RunDiagnostics::default();
        assert!(!d.is_degraded());
        assert_eq!(d.warning_count(), 0);
        assert_eq!(d.detector, DetectorOutcome::NotAttempted);
        assert!(d.to_string().is_empty());
    }

    #[test]
    fn display_lists_everything() {
        let mut d = RunDiagnostics::default();
        d.warn("single-document corpus");
        d.degrade("cornea", Stage::SenseInduction, "no contexts");
        d.detector = DetectorOutcome::Fallback {
            reason: "only one class".into(),
        };
        d.timings.push(StageTiming {
            stage: Stage::TermExtraction,
            elapsed: Duration::from_millis(12),
        });
        let s = d.to_string();
        assert!(s.contains("single-document corpus"), "{s}");
        assert!(s.contains("cornea"), "{s}");
        assert!(s.contains("monosemic-prior fallback"), "{s}");
        assert!(s.contains("term extraction"), "{s}");
        assert!(d.is_degraded());
        assert_eq!(d.warning_count(), 2);
    }
}
