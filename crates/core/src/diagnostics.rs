//! Run diagnostics: what happened, what was skipped, and why.
//!
//! A pipeline run that returns `Ok` may still have downgraded individual
//! terms (degraded-mode execution) or noticed suspicious input. All of
//! that is recorded here and travels inside the
//! [`EnrichmentReport`](crate::report::EnrichmentReport), so callers can
//! distinguish a clean run from a limping one without parsing logs.

use crate::error::Stage;
use crate::governor::TripKind;
use std::fmt;
use std::time::Duration;

/// Wall-clock duration of one pipeline stage.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// The stage measured.
    pub stage: Stage,
    /// Total wall-clock time spent in the stage.
    pub elapsed: Duration,
}

/// One per-term degradation: a stage failed for this term, the term was
/// downgraded (or skipped) instead of aborting the run.
#[derive(Debug, Clone)]
pub struct Degradation {
    /// The affected candidate term.
    pub term: String,
    /// The stage that failed.
    pub stage: Stage,
    /// What went wrong, in one line.
    pub reason: String,
}

/// Outcome of the Step-II detector training on ontology-derived labels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DetectorOutcome {
    /// Training was never reached (e.g. the run failed validation).
    #[default]
    NotAttempted,
    /// A detector was trained.
    Trained {
        /// Training examples (ontology terms found in the corpus).
        examples: usize,
        /// How many of them are labelled polysemic.
        positives: usize,
    },
    /// No detector could be trained; every term falls back to the
    /// monosemic majority prior.
    Fallback {
        /// Why training was impossible.
        reason: String,
    },
}

/// One budget trip observed by the run's
/// [`Governor`](crate::governor::Governor): which budget fired, where,
/// and the measured value against its limit.
#[derive(Debug, Clone)]
pub struct BudgetTrip {
    /// Which budget was exhausted.
    pub kind: TripKind,
    /// The stage during which the trip was observed.
    pub stage: Stage,
    /// One-line human-readable description.
    pub detail: String,
    /// The measured value when the trip fired (ms for clock budgets,
    /// MiB for the allocation budget).
    pub measured: u64,
    /// The configured limit in the same unit as `measured`.
    pub limit: u64,
}

/// Structured diagnostics of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct RunDiagnostics {
    /// Per-stage wall-clock timings, in execution order.
    pub timings: Vec<StageTiming>,
    /// Validation warnings about suspicious-but-usable input.
    pub warnings: Vec<String>,
    /// Terms downgraded or skipped by per-term degraded-mode execution.
    pub degraded: Vec<Degradation>,
    /// How Step-II detector training went.
    pub detector: DetectorOutcome,
    /// Budget trips (deadline, cancellation, allocation) observed during
    /// the run, in the order they fired.
    pub trips: Vec<BudgetTrip>,
    /// Stages that were truncated or skipped because a hard budget
    /// tripped, in workflow order.
    pub truncated: Vec<Stage>,
}

impl RunDiagnostics {
    /// Whether any term was downgraded, any warning raised, or any
    /// budget tripped.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty() || !self.warnings.is_empty() || !self.trips.is_empty()
    }

    /// Total number of warnings, degradations and budget trips.
    pub fn warning_count(&self) -> usize {
        self.warnings.len() + self.degraded.len() + self.trips.len()
    }

    /// The first **hard** budget trip of the run, if any (the one the
    /// CLI maps to an exit code).
    pub fn hard_trip(&self) -> Option<&BudgetTrip> {
        self.trips.iter().find(|t| t.kind.is_hard())
    }

    /// Record a budget trip together with the stages it truncates.
    pub fn trip(&mut self, trip: BudgetTrip, truncated: impl IntoIterator<Item = Stage>) {
        self.trips.push(trip);
        for s in truncated {
            if !self.truncated.contains(&s) {
                self.truncated.push(s);
            }
        }
    }

    /// Record a degradation.
    pub fn degrade(&mut self, term: impl Into<String>, stage: Stage, reason: impl Into<String>) {
        self.degraded.push(Degradation {
            term: term.into(),
            stage,
            reason: reason.into(),
        });
    }

    /// Record a validation warning.
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(message.into());
    }
}

impl fmt::Display for RunDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.timings.is_empty() {
            writeln!(f, "stage timings:")?;
            for t in &self.timings {
                writeln!(
                    f,
                    "  {:<32} {:>10.3} ms",
                    t.stage,
                    t.elapsed.as_secs_f64() * 1e3
                )?;
            }
        }
        match &self.detector {
            DetectorOutcome::NotAttempted => {}
            DetectorOutcome::Trained {
                examples,
                positives,
            } => writeln!(
                f,
                "detector: trained on {examples} ontology terms ({positives} polysemic)"
            )?,
            DetectorOutcome::Fallback { reason } => {
                writeln!(f, "detector: monosemic-prior fallback ({reason})")?
            }
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        for t in &self.trips {
            writeln!(
                f,
                "budget trip: {} during {} — {} ({} / {})",
                t.kind, t.stage, t.detail, t.measured, t.limit
            )?;
        }
        if !self.truncated.is_empty() {
            let names: Vec<&str> = self.truncated.iter().map(|s| s.name()).collect();
            writeln!(f, "truncated stages: {}", names.join(", "))?;
        }
        for d in &self.degraded {
            writeln!(f, "degraded: {:?} at {} — {}", d.term, d.stage, d.reason)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let d = RunDiagnostics::default();
        assert!(!d.is_degraded());
        assert_eq!(d.warning_count(), 0);
        assert_eq!(d.detector, DetectorOutcome::NotAttempted);
        assert!(d.to_string().is_empty());
    }

    #[test]
    fn display_lists_everything() {
        let mut d = RunDiagnostics::default();
        d.warn("single-document corpus");
        d.degrade("cornea", Stage::SenseInduction, "no contexts");
        d.detector = DetectorOutcome::Fallback {
            reason: "only one class".into(),
        };
        d.timings.push(StageTiming {
            stage: Stage::TermExtraction,
            elapsed: Duration::from_millis(12),
        });
        let s = d.to_string();
        assert!(s.contains("single-document corpus"), "{s}");
        assert!(s.contains("cornea"), "{s}");
        assert!(s.contains("monosemic-prior fallback"), "{s}");
        assert!(s.contains("term extraction"), "{s}");
        assert!(d.is_degraded());
        assert_eq!(d.warning_count(), 2);
    }

    #[test]
    fn trips_degrade_the_run_and_name_truncated_stages() {
        let mut d = RunDiagnostics::default();
        assert!(d.hard_trip().is_none());
        d.trip(
            BudgetTrip {
                kind: TripKind::Deadline,
                stage: Stage::SenseInduction,
                detail: "wall clock exceeded".into(),
                measured: 120,
                limit: 100,
            },
            [Stage::SenseInduction, Stage::SemanticLinkage],
        );
        assert!(d.is_degraded());
        assert_eq!(d.warning_count(), 1);
        assert_eq!(d.hard_trip().unwrap().kind, TripKind::Deadline);
        let s = d.to_string();
        assert!(s.contains("budget trip: deadline"), "{s}");
        assert!(s.contains("truncated stages:"), "{s}");
        assert!(s.contains("semantic linkage"), "{s}");
        // Duplicate truncations collapse.
        d.trip(
            BudgetTrip {
                kind: TripKind::StageDeadline,
                stage: Stage::SemanticLinkage,
                detail: "stage over soft budget".into(),
                measured: 9,
                limit: 5,
            },
            [Stage::SemanticLinkage],
        );
        assert_eq!(d.truncated.len(), 2);
        // The soft trip is not a hard trip.
        assert_eq!(d.hard_trip().unwrap().kind, TripKind::Deadline);
    }
}
