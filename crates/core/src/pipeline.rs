//! The four-step enrichment pipeline.
//!
//! Chains Steps I–IV over one corpus and one target ontology:
//! candidate extraction → polysemy detection → sense induction →
//! semantic linkage, producing an [`EnrichmentReport`].
//!
//! Step II needs a trained detector; the pipeline trains one on weak
//! supervision derived from the *ontology itself* (terms the ontology
//! marks polysemic vs a sample of monosemic terms found in the corpus) —
//! exactly the supervision available to the paper's authors via UMLS.

use crate::linkage::{LinkerConfig, SemanticLinker};
use crate::polysemy::detector::{FeatureContext, PolysemyDetector, PolysemyModel};
use crate::report::{EnrichmentReport, TermReport};
use crate::senses::{SenseInducer, SenseInducerConfig};
use crate::termex::candidates::CandidateOptions;
use crate::termex::{TermExtractor, TermMeasure};
use boe_corpus::Corpus;
use boe_ontology::Ontology;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Step-I candidate extraction options.
    pub candidates: CandidateOptions,
    /// Step-I ranking measure.
    pub measure: TermMeasure,
    /// Number of top-ranked candidates carried into Steps II–IV.
    pub top_terms: usize,
    /// Step-II classifier family.
    pub polysemy_model: PolysemyModel,
    /// Step-III configuration.
    pub senses: SenseInducerConfig,
    /// Step-IV configuration.
    pub linker: LinkerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            candidates: CandidateOptions::default(),
            measure: TermMeasure::LidfValue,
            top_terms: 50,
            polysemy_model: PolysemyModel::Forest,
            senses: SenseInducerConfig::default(),
            linker: LinkerConfig::default(),
        }
    }
}

/// The end-to-end enrichment pipeline.
#[derive(Debug)]
pub struct EnrichmentPipeline {
    config: PipelineConfig,
}

impl EnrichmentPipeline {
    /// A pipeline with `config`.
    pub fn new(config: PipelineConfig) -> Self {
        EnrichmentPipeline { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run all four steps.
    pub fn run(&self, corpus: &Corpus, ontology: &Ontology) -> EnrichmentReport {
        // Step I: extract and rank candidates.
        let extractor = TermExtractor::new(corpus, self.config.candidates);
        let ranked = extractor.top(corpus, self.config.measure, self.config.top_terms);

        // Candidates already in the ontology are training data for Step
        // II, not enrichment targets.
        let mut already_known = Vec::new();
        let mut new_terms = Vec::new();
        for r in ranked {
            if ontology.contains_term(&r.surface) {
                already_known.push(r.surface);
            } else {
                new_terms.push(r);
            }
        }

        // Step II: train the detector on ontology-derived weak labels and
        // classify the new candidates.
        let features = FeatureContext::build(corpus);
        let detector = self.train_detector(corpus, ontology, &features);

        // Step III setup.
        let inducer = SenseInducer::new(corpus, self.config.senses);
        // Step IV setup.
        let linker = SemanticLinker::new(corpus, ontology, self.config.linker);

        let mut terms = Vec::with_capacity(new_terms.len());
        for r in new_terms {
            let Some(tokens) = corpus.phrase_ids(&r.surface) else {
                continue;
            };
            let fv = features.features(&tokens, &r.surface);
            let polysemic = match &detector {
                Some(d) => d.is_polysemic(&fv),
                None => false,
            };
            let senses = inducer.induce(&tokens, polysemic);
            let propositions = linker.propose(&r.surface);
            terms.push(TermReport {
                surface: r.surface,
                term_score: r.score,
                polysemic,
                senses,
                propositions,
            });
        }
        EnrichmentReport {
            terms,
            already_known,
        }
    }

    /// Weak supervision for Step II: ontology terms found in the corpus,
    /// labelled polysemic iff the ontology attaches them to ≥ 2 concepts.
    /// Returns `None` when either class is missing (detector then
    /// defaults to "monosemic", the majority prior).
    fn train_detector(
        &self,
        corpus: &Corpus,
        ontology: &Ontology,
        features: &FeatureContext<'_>,
    ) -> Option<PolysemyDetector> {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (surface, concepts) in ontology.terms() {
            let Some(tokens) = corpus.phrase_ids(surface) else {
                continue;
            };
            if boe_corpus::context::find_occurrences(corpus, &tokens).is_empty() {
                continue;
            }
            rows.push(features.features(&tokens, surface));
            labels.push(concepts.len() >= 2);
        }
        let pos = labels.iter().filter(|&&l| l).count();
        if pos == 0 || pos == labels.len() || labels.len() < 4 {
            return None;
        }
        Some(PolysemyDetector::train(
            self.config.polysemy_model,
            rows,
            labels,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_ontology::OntologyBuilder;
    use boe_textkit::Language;

    /// A small aligned world: ontology with a polysemic term ("keratitis"
    /// on two concepts), corpus where a new term "corneal injuries"
    /// co-occurs with ontology terms.
    fn world() -> (Corpus, Ontology) {
        let mut ob = OntologyBuilder::new("t", Language::English);
        let eye = ob.add_concept("eye diseases", vec![]);
        let cd = ob.add_concept("corneal diseases", vec!["keratitis".to_owned()]);
        let skin = ob.add_concept("skin inflammation", vec!["keratitis".to_owned()]);
        ob.add_is_a(cd, eye);
        let _ = skin;
        let onto = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        for _ in 0..3 {
            cb.add_text(
                "corneal injuries resemble corneal diseases of the epithelium stroma tissue.",
            );
            cb.add_text("keratitis damages the epithelium stroma tissue.");
            cb.add_text("keratitis irritates the dermis follicle layer.");
            cb.add_text("eye diseases involve the retina nerve.");
            cb.add_text("corneal injuries heal in the epithelium stroma tissue.");
        }
        (cb.build(), onto)
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o);
        assert!(!report.is_empty(), "no candidates analysed");
        let ci = report.get("corneal injuries").expect("analysed");
        assert!(ci.term_score > 0.0);
        assert!(!ci.propositions.is_empty(), "linkage found nothing");
        let proposed: Vec<&str> = ci.propositions.iter().map(|p| p.term.as_str()).collect();
        assert!(proposed.contains(&"corneal diseases"), "{proposed:?}");
    }

    #[test]
    fn known_terms_are_set_aside() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o);
        assert!(report
            .already_known
            .iter()
            .any(|t| t == "corneal diseases" || t == "keratitis" || t == "eye diseases"));
        assert!(report.get("keratitis").is_none());
    }

    #[test]
    fn sense_counts_are_in_range() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o);
        for t in &report.terms {
            assert!((1..=5).contains(&t.senses.k), "{}: k={}", t.surface, t.senses.k);
        }
    }

    #[test]
    fn report_displays() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o);
        let s = report.to_string();
        assert!(s.contains("enrichment report"));
        assert!(s.contains("corneal injuries"));
    }
}
