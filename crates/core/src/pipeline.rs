//! The four-step enrichment pipeline.
//!
//! Chains Steps I–IV over one corpus and one target ontology:
//! candidate extraction → polysemy detection → sense induction →
//! semantic linkage, producing an [`EnrichmentReport`].
//!
//! Step II needs a trained detector; the pipeline trains one on weak
//! supervision derived from the *ontology itself* (terms the ontology
//! marks polysemic vs a sample of monosemic terms found in the corpus) —
//! exactly the supervision available to the paper's authors via UMLS.
//!
//! Runs are fallible and self-diagnosing: unusable input is rejected
//! upfront with a typed [`EnrichError`], while per-term trouble in Steps
//! II–IV *degrades* that one term (monosemic prior, senses/linkage
//! omitted) and records the reason in [`RunDiagnostics`] instead of
//! aborting the whole run.
//!
//! Runs are also **resource-governed**: a [`Governor`] built from
//! [`PipelineConfig::budget`] is polled at every stage boundary and
//! before every item of the per-term fan-out. A *hard* trip (run
//! deadline, cancellation, allocation budget) truncates the remaining
//! work — unprocessed terms get score-only reports marked `truncated` —
//! while a *soft* trip (per-stage deadline) re-runs the remaining terms
//! under the cheapest Step-III configuration with Step IV skipped.
//! Either way the partial report is returned with the trip recorded in
//! its diagnostics; the run never aborts mid-flight.

use crate::diagnostics::{BudgetTrip, Degradation, DetectorOutcome, RunDiagnostics, StageTiming};
use crate::error::{EnrichError, Stage};
use crate::governor::{CancelToken, Governor, TripKind};
use crate::linkage::{LinkerConfig, SemanticLinker};
use crate::polysemy::detector::{FeatureContext, PolysemyDetector, PolysemyModel};
use crate::report::{EnrichmentReport, TermReport};
use crate::senses::{InducedSenses, SenseInducer, SenseInducerConfig};
use crate::termex::candidates::CandidateOptions;
use crate::termex::{RankedTerm, TermExtractor, TermMeasure};
use boe_corpus::occurrence::{OccurrenceIndex, OccurrenceResolution};
use boe_corpus::Corpus;
use boe_ontology::Ontology;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Step-I candidate extraction options.
    pub candidates: CandidateOptions,
    /// Step-I ranking measure.
    pub measure: TermMeasure,
    /// Number of top-ranked candidates carried into Steps II–IV.
    pub top_terms: usize,
    /// Step-II classifier family.
    pub polysemy_model: PolysemyModel,
    /// Step-III configuration.
    pub senses: SenseInducerConfig,
    /// Step-IV configuration.
    pub linker: LinkerConfig,
    /// How Steps I–IV resolve phrase occurrences. [`Indexed`] builds one
    /// positional [`OccurrenceIndex`] per run and shares it across every
    /// stage; [`NaiveScan`] keeps the full-corpus reference scans (same
    /// output bit for bit, kept for equality testing).
    ///
    /// [`Indexed`]: OccurrenceResolution::Indexed
    /// [`NaiveScan`]: OccurrenceResolution::NaiveScan
    pub resolution: OccurrenceResolution,
    /// Resource budgets (deadline, per-stage deadline, allocation).
    /// Unlimited by default.
    pub budget: crate::governor::BudgetConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            candidates: CandidateOptions::default(),
            measure: TermMeasure::LidfValue,
            top_terms: 50,
            polysemy_model: PolysemyModel::Forest,
            senses: SenseInducerConfig::default(),
            linker: LinkerConfig::default(),
            resolution: OccurrenceResolution::default(),
            budget: crate::governor::BudgetConfig::default(),
        }
    }
}

/// The end-to-end enrichment pipeline.
#[derive(Debug)]
pub struct EnrichmentPipeline {
    config: PipelineConfig,
}

impl EnrichmentPipeline {
    /// A pipeline with `config`.
    pub fn new(config: PipelineConfig) -> Self {
        EnrichmentPipeline { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run all four steps.
    ///
    /// Rejects unusable input upfront (empty corpus/ontology, language
    /// mismatch). A failure on one candidate in Steps II–IV downgrades
    /// that term — polysemy falls back to the monosemic prior, senses
    /// and linkage are omitted — and is recorded in the report's
    /// [`RunDiagnostics`] rather than failing the run.
    pub fn run(
        &self,
        corpus: &Corpus,
        ontology: &Ontology,
    ) -> Result<EnrichmentReport, EnrichError> {
        self.run_governed(corpus, ontology, Governor::new(self.config.budget))
    }

    /// [`run`](Self::run) with an externally held [`CancelToken`]: any
    /// thread can cancel the run, which winds down at its next
    /// cooperative poll and returns the truncated report with the
    /// cancellation recorded in its diagnostics.
    pub fn run_with_token(
        &self,
        corpus: &Corpus,
        ontology: &Ontology,
        cancel: CancelToken,
    ) -> Result<EnrichmentReport, EnrichError> {
        self.run_governed(
            corpus,
            ontology,
            Governor::with_token(self.config.budget, cancel),
        )
    }

    /// [`run`](Self::run) under a caller-constructed [`Governor`]. See
    /// the module docs for the governance contract (hard trips truncate,
    /// soft trips degrade, the run never aborts mid-flight).
    pub fn run_governed(
        &self,
        corpus: &Corpus,
        ontology: &Ontology,
        gov: Governor,
    ) -> Result<EnrichmentReport, EnrichError> {
        let mut diag = RunDiagnostics::default();

        // Upfront validation. The chaos site sits inside the guard so an
        // injected panic surfaces as a typed stage failure.
        gov.begin_stage();
        guarded_stage(Stage::Validation, || {
            boe_chaos::inject(boe_chaos::sites::VALIDATE);
            validate(corpus, ontology, &mut diag)
        })??;
        if let Some(trip) = gov.check_hard() {
            record_trip(&gov, &mut diag, trip, Stage::Validation, ALL_STEPS);
            return Ok(EnrichmentReport {
                terms: Vec::new(),
                already_known: Vec::new(),
                diagnostics: diag,
            });
        }

        // Step I: extract and rank candidates. Candidates already in the
        // ontology are training data for Step II, not enrichment targets.
        // Extraction polls the governor before every document and
        // candidate (hard trips only: soft stage deadlines keep their
        // degrade-later semantics), so a long Step I can no longer starve
        // `--deadline-ms` / cancellation until the first stage boundary.
        gov.begin_stage();
        let t0 = Instant::now();
        let stop_step1 = || gov.check_hard().is_some();
        let extracted = guarded_stage(Stage::TermExtraction, || {
            boe_chaos::inject(boe_chaos::sites::STEP1_EXTRACT);
            TermExtractor::try_new(corpus, self.config.candidates, &stop_step1).map(|extractor| {
                let ranked = extractor.top(corpus, self.config.measure, self.config.top_terms);
                let mut already_known = Vec::new();
                let mut new_terms = Vec::new();
                for r in ranked {
                    if ontology.contains_term(&r.surface) {
                        already_known.push(r.surface);
                    } else {
                        new_terms.push(r);
                    }
                }
                (already_known, new_terms)
            })
        })?;
        diag.timings.push(StageTiming {
            stage: Stage::TermExtraction,
            elapsed: t0.elapsed(),
        });
        let Some((already_known, new_terms)) = extracted else {
            // Interrupted mid-extraction: partial candidate statistics
            // would be prefix-dependent, so Step I reports no terms at
            // all — deterministic at any thread count.
            let trip = gov.check_hard().unwrap_or(TripKind::Deadline);
            record_trip(&gov, &mut diag, trip, Stage::TermExtraction, ALL_STEPS);
            return Ok(EnrichmentReport {
                terms: Vec::new(),
                already_known: Vec::new(),
                diagnostics: diag,
            });
        };
        if new_terms.is_empty() {
            diag.warn("step I extracted no new candidate terms");
        }
        if let Some(trip) = gov.check_hard() {
            record_trip(&gov, &mut diag, trip, Stage::TermExtraction, FANOUT_STEPS);
            return Ok(EnrichmentReport {
                terms: new_terms
                    .iter()
                    .map(|r| truncated_report(&r.surface, r.score))
                    .collect(),
                already_known,
                diagnostics: diag,
            });
        }

        // One occurrence index per run: every remaining stage (detector
        // training, per-term features, sense contexts, linkage) resolves
        // phrase occurrences through this shared index instead of
        // scanning the corpus per phrase.
        let occ = Arc::new(self.config.resolution.build(corpus));

        // Step II: train the detector on ontology-derived weak labels. A
        // panic during training (or from the chaos site) degrades to the
        // fallback detector instead of failing the run.
        gov.begin_stage();
        let t0 = Instant::now();
        let features = guarded_stage(Stage::PolysemyDetection, || {
            FeatureContext::build_with_index(corpus, Arc::clone(&occ))
        })?;
        let detector = match catch_unwind(AssertUnwindSafe(|| {
            boe_chaos::inject(boe_chaos::sites::STEP2_TRAIN);
            self.train_detector(corpus, ontology, &occ, &features, &mut diag)
        })) {
            Ok(d) => d,
            Err(payload) => {
                let reason = panic_message(payload);
                diag.detector = DetectorOutcome::Fallback {
                    reason: format!("training panicked: {reason}"),
                };
                diag.degrade(
                    "",
                    Stage::PolysemyDetection,
                    format!("detector training panicked: {reason}"),
                );
                None
            }
        };
        let mut detect_time = t0.elapsed();
        if let Some(trip) = gov.check_hard() {
            record_trip(
                &gov,
                &mut diag,
                trip,
                Stage::PolysemyDetection,
                FANOUT_STEPS,
            );
            diag.timings.push(StageTiming {
                stage: Stage::PolysemyDetection,
                elapsed: detect_time,
            });
            return Ok(EnrichmentReport {
                terms: new_terms
                    .iter()
                    .map(|r| truncated_report(&r.surface, r.score))
                    .collect(),
                already_known,
                diagnostics: diag,
            });
        }

        // Step III/IV setup: the inducer and linker are corpus-wide and
        // shared by every term; a panic here cannot be downgraded.
        gov.begin_stage();
        let t0 = Instant::now();
        let (inducer, linker) = guarded_stage(Stage::SenseInduction, || {
            boe_chaos::inject(boe_chaos::sites::STEP34_SETUP);
            let inducer = SenseInducer::with_index(corpus, self.config.senses, Arc::clone(&occ));
            let linker = SemanticLinker::with_candidates_indexed(
                corpus,
                ontology,
                self.config.linker,
                &[],
                Arc::clone(&occ),
            );
            (inducer, linker)
        })?;
        let mut induce_time = t0.elapsed();
        let mut link_time = Duration::ZERO;
        if let Some(trip) = gov.check_hard() {
            record_trip(&gov, &mut diag, trip, Stage::SenseInduction, FANOUT_STEPS);
            diag.timings.push(StageTiming {
                stage: Stage::PolysemyDetection,
                elapsed: detect_time,
            });
            return Ok(EnrichmentReport {
                terms: new_terms
                    .iter()
                    .map(|r| truncated_report(&r.surface, r.score))
                    .collect(),
                already_known,
                diagnostics: diag,
            });
        }

        // Steps II–IV fan out across candidate terms: each term is
        // independent given the trained detector, the inducer and the
        // linker, so the per-term work is chunked across threads
        // (`boe-par`). Determinism contract: outcomes come back in term
        // order, so reports, degradations (term order, stage order within
        // a term) and timing sums are identical to the serial loop at any
        // thread count. The governor is polled before every item; an
        // interruption keeps the deterministic completed prefix.
        gov.begin_stage();
        let stop = || gov.check().is_some();
        let fan = catch_unwind(AssertUnwindSafe(|| {
            boe_chaos::inject(boe_chaos::sites::FANOUT);
            boe_par::try_par_map(&new_terms, &stop, |r| {
                self.process_term(
                    corpus,
                    r,
                    detector.as_ref(),
                    &features,
                    &inducer,
                    Some(&linker),
                )
            })
        }));
        let (outcomes, fanout_panic) = match fan {
            Ok(o) => (o.into_results(), None),
            Err(payload) => (Vec::new(), Some(panic_message(payload))),
        };

        let mut terms = Vec::with_capacity(new_terms.len());
        let processed = outcomes.len();
        for o in outcomes {
            detect_time += o.detect;
            induce_time += o.induce;
            link_time += o.link;
            diag.degraded.extend(o.degraded);
            terms.extend(o.report);
        }

        let remaining = &new_terms[processed..];
        if let Some(msg) = fanout_panic {
            // A panic that escaped the per-term guards (e.g. the chaos
            // PAR_WORKER or FANOUT site) degrades Steps II–IV wholesale.
            diag.degrade(
                "",
                Stage::PolysemyDetection,
                format!("fan-out panicked: {msg}; steps II–IV skipped for all terms"),
            );
            terms.extend(
                remaining
                    .iter()
                    .map(|r| truncated_report(&r.surface, r.score)),
            );
        } else if !remaining.is_empty() {
            if let Some(trip) = gov.check_hard() {
                // Hard trip mid-fan-out: keep the completed prefix, give
                // the rest score-only truncated reports.
                record_trip(&gov, &mut diag, trip, Stage::SenseInduction, FANOUT_STEPS);
                terms.extend(
                    remaining
                        .iter()
                        .map(|r| truncated_report(&r.surface, r.score)),
                );
            } else {
                // Soft stage-deadline trip: re-run the remaining terms
                // under the cheapest Step-III configuration with Step IV
                // skipped, on a fresh stage clock.
                record_trip(
                    &gov,
                    &mut diag,
                    TripKind::StageDeadline,
                    Stage::SenseInduction,
                    &[],
                );
                diag.degrade(
                    "",
                    Stage::SenseInduction,
                    format!(
                        "stage deadline: {} term(s) re-run with the cheapest induction, linkage skipped",
                        remaining.len()
                    ),
                );
                gov.begin_stage();
                let cheap = SenseInducer::with_index(
                    corpus,
                    self.config.senses.cheapest(),
                    Arc::clone(&occ),
                );
                let stop_hard = || gov.check_hard().is_some();
                let cheap_fan = catch_unwind(AssertUnwindSafe(|| {
                    boe_par::try_par_map(remaining, &stop_hard, |r| {
                        self.process_term(corpus, r, detector.as_ref(), &features, &cheap, None)
                    })
                }));
                match cheap_fan {
                    Ok(o) => {
                        let partial = o.into_results();
                        let cheap_done = partial.len();
                        for out in partial {
                            detect_time += out.detect;
                            induce_time += out.induce;
                            diag.degraded.extend(out.degraded);
                            terms.extend(out.report);
                        }
                        let rest = &remaining[cheap_done..];
                        if !rest.is_empty() {
                            if let Some(trip) = gov.check_hard() {
                                record_trip(
                                    &gov,
                                    &mut diag,
                                    trip,
                                    Stage::SenseInduction,
                                    FANOUT_STEPS,
                                );
                            }
                            terms
                                .extend(rest.iter().map(|r| truncated_report(&r.surface, r.score)));
                        }
                    }
                    Err(payload) => {
                        diag.degrade(
                            "",
                            Stage::SenseInduction,
                            format!("cheap fan-out panicked: {}", panic_message(payload)),
                        );
                        terms.extend(
                            remaining
                                .iter()
                                .map(|r| truncated_report(&r.surface, r.score)),
                        );
                    }
                }
            }
        }

        for (stage, elapsed) in [
            (Stage::PolysemyDetection, detect_time),
            (Stage::SenseInduction, induce_time),
            (Stage::SemanticLinkage, link_time),
        ] {
            diag.timings.push(StageTiming { stage, elapsed });
        }

        // Report assembly, with a final late-trip poll so a budget that
        // tripped after the last fan-out item still reaches the caller.
        guarded_stage(Stage::Reporting, || {
            boe_chaos::inject(boe_chaos::sites::REPORT)
        })?;
        if diag.hard_trip().is_none() {
            if let Some(trip) = gov.check_hard() {
                record_trip(&gov, &mut diag, trip, Stage::Reporting, &[]);
            }
        }
        Ok(EnrichmentReport {
            terms,
            already_known,
            diagnostics: diag,
        })
    }

    /// Steps II–IV for one candidate term. `linker` is `None` in the
    /// degraded cheap pass, which skips Step IV entirely. Every stage is
    /// individually guarded: a panic degrades the term, never the run.
    fn process_term(
        &self,
        corpus: &Corpus,
        r: &RankedTerm,
        detector: Option<&PolysemyDetector>,
        features: &FeatureContext<'_>,
        inducer: &SenseInducer<'_>,
        linker: Option<&SemanticLinker<'_>>,
    ) -> TermOutcome {
        let mut out = TermOutcome::default();
        // Chaos faults are keyed by the term surface, not call order, so
        // injected behaviour is identical at any thread count.
        let chaos_key = boe_chaos::key_for(&r.surface);
        let Some(tokens) = corpus.phrase_ids(&r.surface) else {
            out.degraded.push(Degradation {
                term: r.surface.clone(),
                stage: Stage::TermExtraction,
                reason: "candidate tokens missing from the corpus vocabulary".to_owned(),
            });
            return out;
        };

        // Step II: classify; a failure falls back to the monosemic
        // majority prior.
        let t0 = Instant::now();
        let polysemic = guarded_term(
            &mut out.degraded,
            Stage::PolysemyDetection,
            &r.surface,
            || {
                boe_chaos::inject_keyed(boe_chaos::sites::TERM_DETECT, chaos_key);
                match detector {
                    Some(d) => d.is_polysemic(&features.features(&tokens, &r.surface)),
                    None => false,
                }
            },
            || false,
        );
        out.detect = t0.elapsed();

        // Step III: a failure downgrades to a single omitted sense.
        let t0 = Instant::now();
        let senses = guarded_term(
            &mut out.degraded,
            Stage::SenseInduction,
            &r.surface,
            || {
                boe_chaos::inject_keyed(boe_chaos::sites::TERM_INDUCE, chaos_key);
                inducer.induce(&tokens, polysemic)
            },
            || InducedSenses {
                k: 1,
                concepts: Vec::new(),
                assignments: Vec::new(),
                repaired: 0,
            },
        );
        if senses.repaired > 0 {
            out.degraded.push(Degradation {
                term: r.surface.clone(),
                stage: Stage::SenseInduction,
                reason: format!(
                    "{} context vector(s) repaired (non-finite weights dropped)",
                    senses.repaired
                ),
            });
        }
        out.induce = t0.elapsed();

        // Step IV: a failure omits the propositions.
        let t0 = Instant::now();
        let propositions = match linker {
            Some(l) => guarded_term(
                &mut out.degraded,
                Stage::SemanticLinkage,
                &r.surface,
                || {
                    boe_chaos::inject_keyed(boe_chaos::sites::TERM_LINK, chaos_key);
                    l.propose(&r.surface)
                },
                Vec::new,
            ),
            None => Vec::new(),
        };
        out.link = t0.elapsed();

        out.report = Some(TermReport {
            surface: r.surface.clone(),
            term_score: r.score,
            polysemic,
            senses,
            propositions,
            truncated: false,
        });
        out
    }

    /// Weak supervision for Step II: ontology terms found in the corpus,
    /// labelled polysemic iff the ontology attaches them to ≥ 2 concepts.
    /// Returns `None` when either class is missing (detector then
    /// defaults to "monosemic", the majority prior); the outcome is
    /// recorded in `diag.detector` either way.
    fn train_detector(
        &self,
        corpus: &Corpus,
        ontology: &Ontology,
        occ: &OccurrenceIndex,
        features: &FeatureContext<'_>,
        diag: &mut RunDiagnostics,
    ) -> Option<PolysemyDetector> {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (surface, concepts) in ontology.terms() {
            let Some(tokens) = corpus.phrase_ids(surface) else {
                continue;
            };
            if !occ.contains(corpus, &tokens) {
                continue;
            }
            rows.push(features.features(&tokens, surface));
            labels.push(concepts.len() >= 2);
        }
        let pos = labels.iter().filter(|&&l| l).count();
        if pos == 0 || pos == labels.len() || labels.len() < 4 {
            diag.detector = DetectorOutcome::Fallback {
                reason: format!(
                    "{} usable training terms, {pos} polysemic — need both classes and ≥ 4 terms",
                    labels.len()
                ),
            };
            return None;
        }
        diag.detector = DetectorOutcome::Trained {
            examples: labels.len(),
            positives: pos,
        };
        Some(PolysemyDetector::train(
            self.config.polysemy_model,
            rows,
            labels,
        ))
    }
}

/// The four workflow steps, for naming what a pre-Step-I trip truncates.
const ALL_STEPS: &[Stage] = &[
    Stage::TermExtraction,
    Stage::PolysemyDetection,
    Stage::SenseInduction,
    Stage::SemanticLinkage,
];

/// The per-term fan-out stages, truncated together by a mid-run trip.
const FANOUT_STEPS: &[Stage] = &[
    Stage::PolysemyDetection,
    Stage::SenseInduction,
    Stage::SemanticLinkage,
];

/// Record a budget trip in the diagnostics with the governor's measured
/// value and limit, naming the stages the trip truncates.
fn record_trip(
    gov: &Governor,
    diag: &mut RunDiagnostics,
    kind: TripKind,
    stage: Stage,
    truncated: &[Stage],
) {
    let (measured, limit) = gov.describe(kind);
    let detail = match kind {
        TripKind::Deadline => "wall-clock deadline exceeded",
        TripKind::StageDeadline => "stage exceeded its soft deadline",
        TripKind::Cancelled => "cancellation requested",
        TripKind::AllocBudget => "allocation budget exhausted",
    };
    diag.trip(
        BudgetTrip {
            kind,
            stage,
            detail: detail.to_owned(),
            measured,
            limit,
        },
        truncated.iter().copied(),
    );
}

/// A score-only report for a term whose Steps II–IV were truncated by a
/// hard budget trip (or a wholesale fan-out failure).
fn truncated_report(surface: &str, score: f64) -> TermReport {
    TermReport {
        surface: surface.to_owned(),
        term_score: score,
        polysemic: false,
        senses: InducedSenses {
            k: 1,
            concepts: Vec::new(),
            assignments: Vec::new(),
            repaired: 0,
        },
        propositions: Vec::new(),
        truncated: true,
    }
}

/// Upfront input validation: hard errors for unusable input, warnings
/// for suspicious-but-usable input.
fn validate(
    corpus: &Corpus,
    ontology: &Ontology,
    diag: &mut RunDiagnostics,
) -> Result<(), EnrichError> {
    if corpus.is_empty() || corpus.token_count() == 0 {
        return Err(EnrichError::EmptyCorpus);
    }
    if ontology.is_empty() {
        return Err(EnrichError::EmptyOntology);
    }
    if corpus.language() != ontology.language() {
        return Err(EnrichError::LanguageMismatch {
            corpus: corpus.language(),
            ontology: ontology.language(),
        });
    }
    if corpus.len() == 1 {
        diag.warn("single-document corpus: document-frequency measures are degenerate");
    }
    if ontology.len() == 1 {
        diag.warn("single-concept ontology: linkage has no structure to propose into");
    }
    let hygiene = corpus.hygiene();
    if !hygiene.is_clean() {
        diag.warn(format!(
            "corpus hygiene: {} empty document(s) and {} empty sentence(s) tolerated",
            hygiene.empty_docs, hygiene.empty_sentences
        ));
    }
    Ok(())
}

/// Per-term result of the Steps II–IV fan-out: the report (absent when
/// the term was skipped), the degradations recorded while processing it,
/// and the wall-clock time spent in each stage.
#[derive(Default)]
struct TermOutcome {
    report: Option<TermReport>,
    degraded: Vec<Degradation>,
    detect: Duration,
    induce: Duration,
    link: Duration,
}

/// Run `f`, catching panics: on a panic the term is degraded at `stage`
/// with the panic message as reason and `fallback` supplies the value.
/// Takes a bare degradation list rather than [`RunDiagnostics`] because
/// inside the parallel fan-out each worker owns a local list that is
/// merged into the diagnostics in term order afterwards.
fn guarded_term<T>(
    degraded: &mut Vec<Degradation>,
    stage: Stage,
    term: &str,
    f: impl FnOnce() -> T,
    fallback: impl FnOnce() -> T,
) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(payload) => {
            degraded.push(Degradation {
                term: term.to_owned(),
                stage,
                reason: panic_message(payload),
            });
            fallback()
        }
    }
}

/// Run a corpus-wide stage, converting a panic into a typed
/// [`EnrichError::StageFailure`] carrying the extracted panic message.
fn guarded_stage<T>(stage: Stage, f: impl FnOnce() -> T) -> Result<T, EnrichError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| EnrichError::StageFailure {
        stage,
        term: String::new(),
        cause: panic_message(payload),
    })
}

/// Extract a human-readable message from a panic payload: `&str` and
/// `String` payloads (the overwhelmingly common cases) are passed
/// through verbatim, anything else gets a generic label.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_ontology::OntologyBuilder;
    use boe_textkit::Language;

    /// A small aligned world: ontology with a polysemic term ("keratitis"
    /// on two concepts), corpus where a new term "corneal injuries"
    /// co-occurs with ontology terms.
    fn world() -> (Corpus, Ontology) {
        let mut ob = OntologyBuilder::new("t", Language::English);
        let eye = ob.add_concept("eye diseases", vec![]);
        let cd = ob.add_concept("corneal diseases", vec!["keratitis".to_owned()]);
        let skin = ob.add_concept("skin inflammation", vec!["keratitis".to_owned()]);
        ob.add_is_a(cd, eye);
        let _ = skin;
        let onto = ob.build().expect("valid");
        let mut cb = CorpusBuilder::new(Language::English);
        for _ in 0..3 {
            cb.add_text(
                "corneal injuries resemble corneal diseases of the epithelium stroma tissue.",
            );
            cb.add_text("keratitis damages the epithelium stroma tissue.");
            cb.add_text("keratitis irritates the dermis follicle layer.");
            cb.add_text("eye diseases involve the retina nerve.");
            cb.add_text("corneal injuries heal in the epithelium stroma tissue.");
        }
        (cb.build(), onto)
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o).expect("valid input");
        assert!(!report.is_empty(), "no candidates analysed");
        let ci = report.get("corneal injuries").expect("analysed");
        assert!(ci.term_score > 0.0);
        assert!(!ci.propositions.is_empty(), "linkage found nothing");
        let proposed: Vec<&str> = ci.propositions.iter().map(|p| p.term.as_str()).collect();
        assert!(proposed.contains(&"corneal diseases"), "{proposed:?}");
    }

    #[test]
    fn known_terms_are_set_aside() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o).expect("valid input");
        assert!(report
            .already_known
            .iter()
            .any(|t| t == "corneal diseases" || t == "keratitis" || t == "eye diseases"));
        assert!(report.get("keratitis").is_none());
    }

    #[test]
    fn sense_counts_are_in_range() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o).expect("valid input");
        for t in &report.terms {
            assert!(
                (1..=5).contains(&t.senses.k),
                "{}: k={}",
                t.surface,
                t.senses.k
            );
        }
    }

    #[test]
    fn report_displays() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o).expect("valid input");
        let s = report.to_string();
        assert!(s.contains("enrichment report"));
        assert!(s.contains("corneal injuries"));
    }

    #[test]
    fn empty_corpus_is_a_typed_error() {
        let (_, o) = world();
        let empty = CorpusBuilder::new(Language::English).build();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        assert!(matches!(
            pipeline.run(&empty, &o),
            Err(EnrichError::EmptyCorpus)
        ));
    }

    #[test]
    fn language_mismatch_is_a_typed_error() {
        let (c, _) = world();
        let mut ob = OntologyBuilder::new("fr", Language::French);
        ob.add_concept("maladies", vec![]);
        let o = ob.build().expect("valid");
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        match pipeline.run(&c, &o) {
            Err(EnrichError::LanguageMismatch { corpus, ontology }) => {
                assert_eq!(corpus, Language::English);
                assert_eq!(ontology, Language::French);
            }
            other => panic!("expected LanguageMismatch, got {other:?}"),
        }
    }

    #[test]
    fn diagnostics_record_timings_and_detector() {
        let (c, o) = world();
        let pipeline = EnrichmentPipeline::new(PipelineConfig::default());
        let report = pipeline.run(&c, &o).expect("valid input");
        let stages: Vec<Stage> = report.diagnostics.timings.iter().map(|t| t.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::TermExtraction,
                Stage::PolysemyDetection,
                Stage::SenseInduction,
                Stage::SemanticLinkage,
            ]
        );
        assert_ne!(
            report.diagnostics.detector,
            DetectorOutcome::NotAttempted,
            "training outcome must be recorded"
        );
    }

    #[test]
    fn guarded_records_degradation_and_falls_back() {
        let mut diag = RunDiagnostics::default();
        let v = guarded_term(
            &mut diag.degraded,
            Stage::SenseInduction,
            "cornea",
            || -> usize { panic!("boom {}", 7) },
            || 42,
        );
        assert_eq!(v, 42);
        assert_eq!(diag.degraded.len(), 1);
        assert_eq!(diag.degraded[0].term, "cornea");
        assert_eq!(diag.degraded[0].reason, "boom 7");
    }
}
