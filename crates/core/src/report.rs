//! Result types of a full pipeline run.

use crate::diagnostics::RunDiagnostics;
use crate::linkage::Proposition;
use crate::senses::InducedSenses;
use std::fmt;

/// Everything the workflow derived about one candidate term.
#[derive(Debug, Clone)]
pub struct TermReport {
    /// The candidate surface form.
    pub surface: String,
    /// Step-I score under the pipeline's measure.
    pub term_score: f64,
    /// Step-II verdict.
    pub polysemic: bool,
    /// Step-III result.
    pub senses: InducedSenses,
    /// Step-IV propositions (may be empty when the term has no ontology
    /// neighbourhood).
    pub propositions: Vec<Proposition>,
    /// Whether Steps II–IV were skipped for this term because a hard
    /// budget tripped (deadline, cancellation, allocation) or the whole
    /// fan-out failed: the report then carries only the Step-I score.
    pub truncated: bool,
}

/// The full enrichment report for one corpus + ontology.
#[derive(Debug, Clone, Default)]
pub struct EnrichmentReport {
    /// Per-candidate reports, in ranking order.
    pub terms: Vec<TermReport>,
    /// Candidates skipped because they already appear in the ontology.
    pub already_known: Vec<String>,
    /// What happened during the run: timings, warnings, degraded terms.
    pub diagnostics: RunDiagnostics,
}

impl EnrichmentReport {
    /// Number of analysed candidates.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no candidate was analysed.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The report of a term, by surface.
    pub fn get(&self, surface: &str) -> Option<&TermReport> {
        self.terms.iter().find(|t| t.surface == surface)
    }

    /// Whether the run downgraded any term or raised any warning.
    pub fn is_degraded(&self) -> bool {
        self.diagnostics.is_degraded()
    }
}

impl fmt::Display for EnrichmentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "enrichment report: {} candidates analysed, {} already known",
            self.terms.len(),
            self.already_known.len()
        )?;
        for t in &self.terms {
            writeln!(
                f,
                "  {:<30} score {:>8.3}  {}  k={}  {} propositions{}",
                t.surface,
                t.term_score,
                if t.polysemic {
                    "polysemic "
                } else {
                    "monosemic "
                },
                t.senses.k,
                t.propositions.len(),
                if t.truncated { "  [truncated]" } else { "" }
            )?;
            for (i, p) in t.propositions.iter().enumerate().take(3) {
                writeln!(
                    f,
                    "    {}. {} (cos {:.4}, {})",
                    i + 1,
                    p.term,
                    p.cosine,
                    p.origin.name()
                )?;
            }
        }
        if self.diagnostics.is_degraded() {
            writeln!(
                f,
                "run degraded: {} warning(s)",
                self.diagnostics.warning_count()
            )?;
        }
        write!(f, "{}", self.diagnostics)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let r = EnrichmentReport::default();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.get("x").is_none());
        assert!(r.to_string().contains("0 candidates"));
    }

    #[test]
    fn display_lists_terms() {
        let r = EnrichmentReport {
            terms: vec![TermReport {
                surface: "corneal injuries".into(),
                term_score: 3.2,
                polysemic: false,
                senses: InducedSenses {
                    k: 1,
                    concepts: vec![],
                    assignments: vec![],
                    repaired: 0,
                },
                propositions: vec![],
                truncated: false,
            }],
            already_known: vec!["cornea".into()],
            diagnostics: RunDiagnostics::default(),
        };
        let s = r.to_string();
        assert!(s.contains("corneal injuries"));
        assert!(s.contains("1 already known"));
        assert!(r.get("corneal injuries").is_some());
        assert!(!r.is_degraded());
    }

    #[test]
    fn degraded_runs_are_flagged_in_display() {
        let mut r = EnrichmentReport::default();
        r.diagnostics.warn("single-document corpus");
        assert!(r.is_degraded());
        let s = r.to_string();
        assert!(s.contains("run degraded: 1 warning(s)"), "{s}");
        assert!(s.contains("single-document corpus"), "{s}");
    }
}
