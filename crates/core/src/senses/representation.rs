//! Context representations for sense induction.
//!
//! The paper represents the corpus "of two different manners: (i)
//! bag-of-words representation, and (ii) graph representation". Both map
//! each occurrence context of a term to a sparse vector:
//!
//! * **Bag-of-words** — dimensions are the (stemmed) context words;
//! * **Graph** — dimensions are the *co-occurrence edges* among the
//!   context's words: occurrence contexts vote for the word *pairs* they
//!   activate in the induced graph, which sharpens sense separation when
//!   single words are shared between senses but their combinations are
//!   not.

use boe_corpus::context::{ContextOptions, ContextScope, StemMap};
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::{Corpus, SparseVector};
use boe_textkit::TokenId;

/// The two context representations of §2(III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Bag of (stemmed) context words.
    BagOfWords,
    /// Bag of context word *pairs* (edges of the induced graph).
    Graph,
}

impl Representation {
    /// Both representations in the paper's order.
    pub const ALL: [Representation; 2] = [Representation::BagOfWords, Representation::Graph];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Representation::BagOfWords => "bag-of-words",
            Representation::Graph => "graph",
        }
    }
}

impl std::fmt::Display for Representation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable dimension id for an unordered word pair (graph representation).
/// Uses an order-independent 32-bit mix of the two stem dimensions.
fn pair_dim(a: u32, b: u32) -> u32 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    // Szudzik-style pairing folded into 32 bits; collisions are rare and
    // harmless (they only merge two unrelated dimensions).
    let h = u64::from(hi) * 0x9E37_79B9 + u64::from(lo) * 0x85EB_CA6B;
    (h ^ (h >> 31)) as u32
}

/// Build one context vector per occurrence of `phrase` under the chosen
/// representation. Context = the occurrence's sentence minus the phrase,
/// stopwords and non-lexical tokens, stem-conflated. Use
/// [`ContextScope::Document`] when each document is one citation-style
/// context (the MSH-WSD setting). Occurrences are resolved through
/// `occ`, shared with the other pipeline stages.
pub fn build_representation(
    corpus: &Corpus,
    occ: &OccurrenceIndex,
    phrase: &[TokenId],
    repr: Representation,
    stems: &StemMap,
    scope: ContextScope,
) -> Vec<SparseVector> {
    let occs = occ.find_occurrences(corpus, phrase);
    let opts = ContextOptions {
        window: None,
        stemmed: true,
        scope,
    };
    occs.into_iter()
        .map(|occ| {
            let bow =
                boe_corpus::context::context_vector(corpus, occ, phrase.len(), opts, Some(stems));
            match repr {
                Representation::BagOfWords => bow,
                Representation::Graph => {
                    let dims: Vec<u32> = bow.iter().map(|(d, _)| d).collect();
                    let mut pairs = Vec::new();
                    for i in 0..dims.len() {
                        for j in (i + 1)..dims.len() {
                            pairs.push((pair_dim(dims[i], dims[j]), 1.0));
                        }
                    }
                    SparseVector::from_pairs(pairs)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus(texts: &[&str]) -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        b.build()
    }

    #[test]
    fn bow_vectors_one_per_occurrence() {
        let c = corpus(&["target alpha beta.", "target gamma delta."]);
        let stems = StemMap::build(&c);
        let ids = c.phrase_ids("target").expect("known");
        let vs = build_representation(
            &c,
            &OccurrenceIndex::build(&c),
            &ids,
            Representation::BagOfWords,
            &stems,
            ContextScope::Sentence,
        );
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.nnz() == 2));
        assert_eq!(vs[0].cosine(&vs[1]), 0.0, "disjoint contexts");
    }

    #[test]
    fn graph_vectors_encode_pairs() {
        let c = corpus(&["target alpha beta gamma."]);
        let stems = StemMap::build(&c);
        let ids = c.phrase_ids("target").expect("known");
        let vs = build_representation(
            &c,
            &OccurrenceIndex::build(&c),
            &ids,
            Representation::Graph,
            &stems,
            ContextScope::Sentence,
        );
        // 3 context words → C(3,2) = 3 pair dimensions.
        assert_eq!(vs[0].nnz(), 3);
    }

    #[test]
    fn graph_repr_separates_shared_word_senses() {
        // Both senses share "common", but pair combinations differ:
        // bow contexts overlap, graph contexts overlap less.
        let c = corpus(&[
            "target common alpha.",
            "target common beta.",
            "target common alpha.",
        ]);
        let stems = StemMap::build(&c);
        let ids = c.phrase_ids("target").expect("known");
        let bow = build_representation(
            &c,
            &OccurrenceIndex::build(&c),
            &ids,
            Representation::BagOfWords,
            &stems,
            ContextScope::Sentence,
        );
        let graph = build_representation(
            &c,
            &OccurrenceIndex::build(&c),
            &ids,
            Representation::Graph,
            &stems,
            ContextScope::Sentence,
        );
        // occurrences 0 and 1: bow share "common" → cos = 0.5; graph pair
        // dims (common,alpha) vs (common,beta) are disjoint → cos = 0.
        assert!(bow[0].cosine(&bow[1]) > 0.4);
        assert_eq!(graph[0].cosine(&graph[1]), 0.0);
        // identical contexts stay identical in both.
        assert!((bow[0].cosine(&bow[2]) - 1.0).abs() < 1e-9);
        assert!((graph[0].cosine(&graph[2]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_dim_is_symmetric() {
        assert_eq!(pair_dim(3, 9), pair_dim(9, 3));
        assert_ne!(pair_dim(3, 9), pair_dim(3, 10));
    }

    #[test]
    fn stemming_conflates_context_variants() {
        let c = corpus(&["target graft tissue.", "target grafts tissue."]);
        let stems = StemMap::build(&c);
        let ids = c.phrase_ids("target").expect("known");
        let vs = build_representation(
            &c,
            &OccurrenceIndex::build(&c),
            &ids,
            Representation::BagOfWords,
            &stems,
            ContextScope::Sentence,
        );
        assert!((vs[0].cosine(&vs[1]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn names() {
        assert_eq!(Representation::BagOfWords.to_string(), "bag-of-words");
        assert_eq!(Representation::Graph.to_string(), "graph");
        assert_eq!(Representation::ALL.len(), 2);
    }
}
