//! Sense induction: k-prediction + clustering + concept labelling.

use crate::senses::representation::{build_representation, Representation};
use boe_cluster::features::{induce_concepts, InducedConcept};
use boe_cluster::kpredict::{predict_k, KPredictConfig};
use boe_cluster::{Algorithm, ClusterSolution, InternalIndex};
use boe_corpus::context::{ContextScope, StemMap};
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::{Corpus, SparseVector};
use boe_textkit::TokenId;
use std::sync::Arc;

/// Configuration of the sense inducer.
#[derive(Debug, Clone, Copy)]
pub struct SenseInducerConfig {
    /// Context representation.
    pub representation: Representation,
    /// Context reach (use `Document` when each document is one
    /// citation-style context, as in MSH WSD).
    pub scope: ContextScope,
    /// Clustering method.
    pub algorithm: Algorithm,
    /// Internal index for k-prediction.
    pub index: InternalIndex,
    /// Inclusive k range (the paper fixes (2, 5) per Table 1).
    pub k_range: (usize, usize),
    /// Features kept per induced concept.
    pub top_features: usize,
    /// Clustering seed.
    pub seed: u64,
}

impl Default for SenseInducerConfig {
    fn default() -> Self {
        SenseInducerConfig {
            representation: Representation::BagOfWords,
            scope: ContextScope::Sentence,
            algorithm: Algorithm::Direct,
            index: InternalIndex::Ek,
            k_range: (2, 5),
            top_features: 10,
            seed: 0,
        }
    }
}

impl SenseInducerConfig {
    /// The cheapest defensible configuration, used when a soft stage
    /// deadline trips mid-run: direct clustering, the Ak index (a plain
    /// within-cluster sum, the cheapest internal index) and k fixed at 2
    /// so no k sweep happens at all.
    pub fn cheapest(self) -> Self {
        SenseInducerConfig {
            algorithm: Algorithm::Direct,
            index: InternalIndex::Ak,
            k_range: (2, 2),
            ..self
        }
    }
}

/// The induced senses of one term.
#[derive(Debug, Clone)]
pub struct InducedSenses {
    /// Number of senses (1 for monosemous terms).
    pub k: usize,
    /// One induced concept per sense.
    pub concepts: Vec<InducedConcept>,
    /// The cluster assignment of each occurrence context (empty when the
    /// term had no contexts).
    pub assignments: Vec<usize>,
    /// Number of context vectors that had to be repaired (non-finite
    /// weights dropped) before clustering.
    pub repaired: usize,
}

/// Step-III sense inducer bound to one corpus.
#[derive(Debug)]
pub struct SenseInducer<'c> {
    corpus: &'c Corpus,
    stems: StemMap,
    occ: Arc<OccurrenceIndex>,
    config: SenseInducerConfig,
}

impl<'c> SenseInducer<'c> {
    /// Build for `corpus` under `config` (indexes the corpus once).
    pub fn new(corpus: &'c Corpus, config: SenseInducerConfig) -> Self {
        Self::with_index(corpus, config, Arc::new(OccurrenceIndex::build(corpus)))
    }

    /// Build for `corpus`, resolving occurrences through a shared
    /// [`OccurrenceIndex`] (one per pipeline run).
    pub fn with_index(
        corpus: &'c Corpus,
        config: SenseInducerConfig,
        occ: Arc<OccurrenceIndex>,
    ) -> Self {
        SenseInducer {
            corpus,
            stems: StemMap::build(corpus),
            occ,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> SenseInducerConfig {
        self.config
    }

    /// The per-occurrence context vectors of a term under the configured
    /// representation.
    pub fn contexts(&self, phrase: &[TokenId]) -> Vec<SparseVector> {
        self.contexts_repaired(phrase).0
    }

    /// [`contexts`](Self::contexts) plus the number of vectors that
    /// needed repair: non-finite weights (whether produced upstream or
    /// injected by the `term.induce` chaos site) are dropped and the
    /// norm recomputed, so clustering never sees NaN.
    pub fn contexts_repaired(&self, phrase: &[TokenId]) -> (Vec<SparseVector>, usize) {
        let mut ctxs = build_representation(
            self.corpus,
            &self.occ,
            phrase,
            self.config.representation,
            &self.stems,
            self.config.scope,
        );
        // Chaos corruption is keyed by (phrase, context position), never
        // by call order, so a corrupted run stays deterministic at any
        // thread count.
        if boe_chaos::is_enabled() {
            let base = Self::phrase_key(phrase);
            for (i, v) in ctxs.iter_mut().enumerate() {
                let key = base ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                match boe_chaos::corruption(boe_chaos::sites::TERM_INDUCE, key) {
                    Some(boe_chaos::Corruption::MakeNan) => v.map_values(|_| f64::NAN),
                    Some(boe_chaos::Corruption::MakeEmpty) => v.map_values(|_| f64::INFINITY),
                    None => {}
                }
            }
        }
        let mut repaired = 0;
        for v in &mut ctxs {
            if v.sanitize() > 0 {
                repaired += 1;
            }
        }
        (ctxs, repaired)
    }

    /// Predict only the number of senses of a (polysemic) term.
    /// `None` when the term has fewer than 2 contexts.
    pub fn predict_sense_count(&self, phrase: &[TokenId]) -> Option<usize> {
        let ctxs = self.contexts(phrase);
        predict_k(
            &ctxs,
            KPredictConfig {
                k_range: self.config.k_range,
                algorithm: self.config.algorithm,
                index: self.config.index,
                seed: self.config.seed,
            },
        )
        .map(|p| p.k)
    }

    /// Induce the senses of a term. `is_polysemic` comes from Step II;
    /// monosemous terms get k = 1 ("note that k = 1 when the candidate
    /// term is not polysemic").
    pub fn induce(&self, phrase: &[TokenId], is_polysemic: bool) -> InducedSenses {
        let (ctxs, repaired) = self.contexts_repaired(phrase);
        if ctxs.is_empty() {
            return InducedSenses {
                k: 1,
                concepts: Vec::new(),
                assignments: Vec::new(),
                repaired,
            };
        }
        let solution: ClusterSolution = if !is_polysemic || ctxs.len() < 2 {
            ClusterSolution::new(vec![0; ctxs.len()], 1)
        } else {
            // `predict_k` only declines with < 2 contexts, which the
            // branch above already handles — but fall back to a single
            // sense rather than panicking if that ever changes.
            match predict_k(
                &ctxs,
                KPredictConfig {
                    k_range: self.config.k_range,
                    algorithm: self.config.algorithm,
                    index: self.config.index,
                    seed: self.config.seed,
                },
            ) {
                Some(pred) => pred.solution,
                None => ClusterSolution::new(vec![0; ctxs.len()], 1),
            }
        };
        let concepts = induce_concepts(&solution, &ctxs, self.config.top_features);
        InducedSenses {
            k: solution.k(),
            concepts,
            assignments: solution.assignments().to_vec(),
            repaired,
        }
    }

    /// Stable key for a phrase (FNV-1a over its token ids), used to key
    /// deterministic chaos corruption by term rather than by call order.
    fn phrase_key(phrase: &[TokenId]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for t in phrase {
            h = (h ^ u64::from(t.0)).wrapping_mul(0x100000001B3);
        }
        h
    }

    /// Resolve a bag-of-words feature dimension back to its stem string
    /// (graph-representation dimensions are hashed pairs and cannot be
    /// resolved).
    pub fn feature_label(&self, dim: u32) -> Option<&str> {
        match self.config.representation {
            Representation::BagOfWords => self.stems.stems().try_text(boe_textkit::TokenId(dim)),
            Representation::Graph => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    /// Corpus with a 2-sense term and a 1-sense term.
    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        for _ in 0..10 {
            b.add_text("poly alpha beta gamma.");
            b.add_text("poly omega sigma theta.");
            b.add_text("mono alpha beta gamma.");
        }
        b.build()
    }

    #[test]
    fn polysemic_term_gets_two_senses() {
        let c = corpus();
        let inducer = SenseInducer::new(&c, SenseInducerConfig::default());
        let ids = c.phrase_ids("poly").expect("known");
        let senses = inducer.induce(&ids, true);
        assert_eq!(senses.k, 2, "induced {} senses", senses.k);
        assert_eq!(senses.concepts.len(), 2);
        assert_eq!(senses.assignments.len(), 20);
    }

    #[test]
    fn monosemous_term_gets_one_sense() {
        let c = corpus();
        let inducer = SenseInducer::new(&c, SenseInducerConfig::default());
        let ids = c.phrase_ids("mono").expect("known");
        let senses = inducer.induce(&ids, false);
        assert_eq!(senses.k, 1);
        assert_eq!(senses.concepts.len(), 1);
    }

    #[test]
    fn induced_concepts_have_interpretable_features() {
        let c = corpus();
        let inducer = SenseInducer::new(&c, SenseInducerConfig::default());
        let ids = c.phrase_ids("poly").expect("known");
        let senses = inducer.induce(&ids, true);
        let mut labels: Vec<String> = Vec::new();
        for concept in &senses.concepts {
            for &(dim, _) in &concept.features {
                if let Some(l) = inducer.feature_label(dim) {
                    labels.push(l.to_owned());
                }
            }
        }
        assert!(
            labels.iter().any(|l| l == "alpha" || l == "omega"),
            "{labels:?}"
        );
    }

    #[test]
    fn sense_count_prediction_matches_structure() {
        let c = corpus();
        let inducer = SenseInducer::new(&c, SenseInducerConfig::default());
        let ids = c.phrase_ids("poly").expect("known");
        assert_eq!(inducer.predict_sense_count(&ids), Some(2));
    }

    #[test]
    fn term_without_contexts_defaults_to_one_sense() {
        let c = corpus();
        let inducer = SenseInducer::new(&c, SenseInducerConfig::default());
        // "alpha beta" never matched as phrase start? It does occur...
        // use a non-adjacent pair instead.
        let a = c.vocab().get("alpha").expect("id");
        let t = c.vocab().get("theta").expect("id");
        let senses = inducer.induce(&[a, t], true);
        assert_eq!(senses.k, 1);
        assert!(senses.concepts.is_empty());
    }

    #[test]
    fn graph_representation_also_separates() {
        let c = corpus();
        let cfg = SenseInducerConfig {
            representation: Representation::Graph,
            ..Default::default()
        };
        let inducer = SenseInducer::new(&c, cfg);
        let ids = c.phrase_ids("poly").expect("known");
        let senses = inducer.induce(&ids, true);
        assert_eq!(senses.k, 2);
        assert!(
            inducer.feature_label(0).is_none(),
            "graph dims unresolvable"
        );
    }
}
