//! Step III — Term Sense Induction.
//!
//! For each candidate term: (a) predict its number of senses k — k = 1
//! when Step II said monosemous, else a clustering sweep over k ∈ \[2, 5\]
//! scored by an internal index; (b) cluster the term's contexts into k
//! groups and label each with its most important features — the induced
//! concepts.

pub mod induction;
pub mod representation;

pub use induction::{InducedSenses, SenseInducer, SenseInducerConfig};
pub use representation::{build_representation, Representation};
