//! # boe-core
//!
//! The EDBT-2016 four-step biomedical ontology-enrichment workflow
//! (Lossio-Ventura, Jonquet, Roche, Teisseire):
//!
//! | step | module | paper section |
//! |------|--------|---------------|
//! | I — Term Extraction (BIOTEX measures) | [`termex`] | §2(I) |
//! | II — Polysemy Detection (23 features + ML) | [`polysemy`] | §2(II) |
//! | III — Sense Induction (k-prediction + clustering) | [`senses`] | §2(III) |
//! | IV — Semantic Linkage (cosine over contexts) | [`linkage`] | §2(IV) |
//! | future work — relation typing via verb patterns | [`relation`] | §4 |
//!
//! [`pipeline`] chains the four steps into one [`pipeline::EnrichmentPipeline`]
//! and [`report`] holds the result types. Failures are typed ([`error`])
//! and every run carries structured [`diagnostics`]: per-term trouble in
//! Steps II–IV downgrades the term instead of aborting the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod error;
pub mod governor;
pub mod linkage;
pub mod pipeline;
pub mod polysemy;
pub mod relation;
pub mod report;
pub mod senses;
pub mod termex;

pub use diagnostics::RunDiagnostics;
pub use error::{EnrichError, Stage};
pub use governor::{BudgetConfig, CancelToken, Governor, TripKind};
pub use pipeline::{EnrichmentPipeline, PipelineConfig};
pub use report::EnrichmentReport;
