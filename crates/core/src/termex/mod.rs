//! Step I — Term Extraction (the BIOTEX measures).
//!
//! Extracts *candidate terms* from a POS-tagged corpus: token sequences
//! matching the linguistic patterns, scored by the measures of the
//! companion IRJ-2016 paper (C-value, TF-IDF, Okapi, F-TFIDF-C, F-OCapi,
//! LIDF-value, TeRGraph).

pub mod candidates;
pub mod lidf;
pub mod measures;
pub mod ranker;
pub mod tergraph;

pub use candidates::{
    extract_candidates, extract_candidates_serial, try_extract_candidates, CandidateSet,
    CandidateTerm,
};
pub use ranker::{RankedTerm, TermExtractor, TermMeasure};
pub use tergraph::{
    tergraph_scores, tergraph_scores_serial, term_cooccurrence_graph,
    term_cooccurrence_graph_serial,
};
