//! The term extractor: candidates + a chosen measure → ranked term list.

use crate::termex::candidates::{try_extract_candidates, CandidateOptions, CandidateSet};
use crate::termex::lidf::lidf_values;
use crate::termex::measures::{c_values, f_ocapis, f_tfidf_cs, phrase_okapis, phrase_tf_idfs};
use crate::termex::tergraph::{tergraph_scores, term_cooccurrence_graph};
use boe_corpus::index::InvertedIndex;
use boe_corpus::weighting::Bm25Params;
use boe_corpus::Corpus;
use boe_textkit::pattern::PatternSet;

/// The termhood measures BIOTEX exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermMeasure {
    /// C-value.
    CValue,
    /// Phrase-level TF-IDF.
    TfIdf,
    /// Phrase-level Okapi BM25.
    Okapi,
    /// Harmonic fusion of TF-IDF and C-value.
    FTfIdfC,
    /// Harmonic fusion of Okapi and C-value.
    FOCapi,
    /// Linguistic-pattern prior × IDF × C-value (BIOTEX's default).
    LidfValue,
    /// LIDF-value re-ranked by the TeRGraph neighbourhood-specificity
    /// score (LIDF × TeRGraph).
    TerGraph,
}

impl TermMeasure {
    /// All measures, in ablation order.
    pub const ALL: [TermMeasure; 7] = [
        TermMeasure::CValue,
        TermMeasure::TfIdf,
        TermMeasure::Okapi,
        TermMeasure::FTfIdfC,
        TermMeasure::FOCapi,
        TermMeasure::LidfValue,
        TermMeasure::TerGraph,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TermMeasure::CValue => "c-value",
            TermMeasure::TfIdf => "tf-idf",
            TermMeasure::Okapi => "okapi",
            TermMeasure::FTfIdfC => "f-tfidf-c",
            TermMeasure::FOCapi => "f-ocapi",
            TermMeasure::LidfValue => "lidf-value",
            TermMeasure::TerGraph => "tergraph",
        }
    }
}

impl std::fmt::Display for TermMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scored candidate term.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTerm {
    /// Index into the extractor's [`CandidateSet`].
    pub candidate: usize,
    /// Surface form.
    pub surface: String,
    /// The measure's score.
    pub score: f64,
}

/// Step-I extractor: owns the candidate set and index for one corpus.
///
/// ```
/// use boe_core::termex::{TermExtractor, TermMeasure};
/// use boe_core::termex::candidates::CandidateOptions;
/// use boe_corpus::corpus::CorpusBuilder;
/// use boe_textkit::Language;
///
/// let mut b = CorpusBuilder::new(Language::English);
/// b.add_text("corneal injuries heal. corneal injuries persist.");
/// let corpus = b.build();
/// let extractor = TermExtractor::new(&corpus, CandidateOptions::default());
/// let top = extractor.top(&corpus, TermMeasure::LidfValue, 1);
/// assert_eq!(top[0].surface, "corneal injuries");
/// ```
#[derive(Debug)]
pub struct TermExtractor {
    candidates: CandidateSet,
    index: InvertedIndex,
    patterns: PatternSet,
}

impl TermExtractor {
    /// Build the extractor (extracts candidates eagerly).
    pub fn new(corpus: &Corpus, opts: CandidateOptions) -> Self {
        Self::try_new(corpus, opts, &|| false).expect("never-stop predicate cannot interrupt")
    }

    /// [`new`](Self::new) with cooperative cancellation: `should_stop`
    /// is threaded into candidate extraction (see
    /// [`try_extract_candidates`]) so a resource governor can interrupt
    /// a long Step I mid-scan. Returns `None` when interrupted — the
    /// deterministic "no extractor" outcome, identical at any thread
    /// count for a monotonic predicate.
    pub fn try_new<S>(corpus: &Corpus, opts: CandidateOptions, should_stop: &S) -> Option<Self>
    where
        S: Fn() -> bool + Sync,
    {
        let candidates = try_extract_candidates(corpus, opts, should_stop)?;
        Some(TermExtractor {
            candidates,
            index: InvertedIndex::build(corpus),
            patterns: PatternSet::for_language(corpus.language()),
        })
    }

    /// The underlying candidate set.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// The inverted index (shared with later steps).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Rank all candidates by `measure`, descending (surface breaks ties
    /// for determinism). `corpus` must be the corpus the extractor was
    /// built from (needed only by the graph-based measure).
    pub fn rank(&self, corpus: &Corpus, measure: TermMeasure) -> Vec<RankedTerm> {
        // Each batch scorer fans its per-candidate loop out on `boe_par`
        // (independent read-only scores, in-order reassembly): scores are
        // bit-identical to the serial maps at any thread count.
        let scores: Vec<f64> = match measure {
            TermMeasure::CValue => c_values(&self.candidates),
            TermMeasure::TfIdf => phrase_tf_idfs(&self.index, &self.candidates),
            TermMeasure::Okapi => {
                phrase_okapis(&self.index, &self.candidates, Bm25Params::default())
            }
            TermMeasure::FTfIdfC => f_tfidf_cs(&self.index, &self.candidates),
            TermMeasure::FOCapi => f_ocapis(&self.index, &self.candidates),
            TermMeasure::LidfValue => lidf_values(&self.index, &self.patterns, &self.candidates),
            TermMeasure::TerGraph => {
                let graph = term_cooccurrence_graph(corpus, &self.candidates);
                let tg = tergraph_scores(&graph);
                lidf_values(&self.index, &self.patterns, &self.candidates)
                    .into_iter()
                    .zip(&tg)
                    .map(|(l, g)| l * g)
                    .collect()
            }
        };
        let mut ranked: Vec<RankedTerm> = self
            .candidates
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| RankedTerm {
                candidate: i,
                surface: t.surface.clone(),
                score: scores[i],
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.surface.cmp(&b.surface))
        });
        ranked
    }

    /// The top `n` terms under `measure`.
    pub fn top(&self, corpus: &Corpus, measure: TermMeasure, n: usize) -> Vec<RankedTerm> {
        let mut r = self.rank(corpus, measure);
        r.truncate(n);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        b.add_text(
            "corneal injuries damage the epithelium. corneal injuries require amniotic membrane grafts.",
        );
        b.add_text("the epithelium heals after corneal injuries. treatment helps recovery.");
        b.add_text("amniotic membrane grafts support the epithelium during treatment.");
        b.build()
    }

    #[test]
    fn every_measure_produces_a_full_ranking() {
        let c = corpus();
        let ex = TermExtractor::new(&c, CandidateOptions::default());
        for m in TermMeasure::ALL {
            let r = ex.rank(&c, m);
            assert_eq!(r.len(), ex.candidates().len(), "{m}");
            assert!(
                r.windows(2).all(|w| w[0].score >= w[1].score),
                "{m} not sorted"
            );
            assert!(r.iter().all(|t| t.score.is_finite()), "{m} non-finite");
        }
    }

    #[test]
    fn multiword_domain_terms_rank_high_under_lidf() {
        let c = corpus();
        let ex = TermExtractor::new(&c, CandidateOptions::default());
        let top: Vec<String> = ex
            .top(&c, TermMeasure::LidfValue, 5)
            .into_iter()
            .map(|t| t.surface)
            .collect();
        assert!(
            top.iter().any(|t| t == "corneal injuries"),
            "top-5 was {top:?}"
        );
    }

    #[test]
    fn top_truncates() {
        let c = corpus();
        let ex = TermExtractor::new(&c, CandidateOptions::default());
        assert_eq!(ex.top(&c, TermMeasure::CValue, 3).len(), 3);
    }

    #[test]
    fn deterministic_ranking() {
        let c = corpus();
        let ex = TermExtractor::new(&c, CandidateOptions::default());
        let a = ex.rank(&c, TermMeasure::TerGraph);
        let b = ex.rank(&c, TermMeasure::TerGraph);
        assert_eq!(a, b);
    }

    #[test]
    fn measure_names() {
        assert_eq!(TermMeasure::LidfValue.to_string(), "lidf-value");
        assert_eq!(TermMeasure::ALL.len(), 7);
    }
}
