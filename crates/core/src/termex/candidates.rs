//! Candidate-term extraction via linguistic patterns.

use boe_corpus::doc::DocId;
use boe_corpus::Corpus;
use boe_textkit::pattern::PatternSet;
use boe_textkit::TokenId;
use std::collections::HashMap;

/// One candidate term: a token-id sequence with its corpus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateTerm {
    /// The token-id sequence.
    pub tokens: Vec<TokenId>,
    /// Joined lower-case surface form.
    pub surface: String,
    /// Index of the matching pattern in the language's [`PatternSet`].
    pub pattern: usize,
    /// Total occurrence count.
    pub freq: u32,
    /// Number of distinct documents containing the candidate.
    pub doc_freq: u32,
    /// Number of occurrences nested inside a *longer* candidate.
    pub nested_freq: u32,
    /// Number of distinct longer candidates containing this one.
    pub containers: u32,
}

impl CandidateTerm {
    /// Number of words.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the candidate has no tokens (never true after extraction).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The candidate inventory of a corpus.
#[derive(Debug)]
pub struct CandidateSet {
    /// Candidates in first-seen order.
    pub terms: Vec<CandidateTerm>,
    by_tokens: HashMap<Vec<TokenId>, usize>,
}

impl CandidateSet {
    /// Find a candidate by its token sequence.
    pub fn get(&self, tokens: &[TokenId]) -> Option<&CandidateTerm> {
        self.by_tokens.get(tokens).map(|&i| &self.terms[i])
    }

    /// Find a candidate by its surface form.
    pub fn get_surface(&self, surface: &str) -> Option<&CandidateTerm> {
        self.terms.iter().find(|t| t.surface == surface)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Extraction options.
#[derive(Debug, Clone, Copy)]
pub struct CandidateOptions {
    /// Minimum total frequency to keep a candidate.
    pub min_freq: u32,
    /// Maximum candidate length in words (patterns are shorter anyway).
    pub max_len: usize,
    /// Drop candidates whose first or last word is a stopword.
    pub stopword_boundary_filter: bool,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        CandidateOptions {
            min_freq: 2,
            max_len: 5,
            stopword_boundary_filter: true,
        }
    }
}

/// Per-candidate occurrence statistics accumulated by the scan passes.
struct Raw {
    pattern: usize,
    freq: u32,
    docs: Vec<DocId>,
    /// (doc, sentence, start, len) of each occurrence.
    occs: Vec<(u32, u32, u32, u32)>,
}

/// One pattern match found by a per-document scan.
struct ScanOcc {
    tokens: Vec<TokenId>,
    pattern: usize,
    sentence: u32,
    start: u32,
    len: u32,
}

/// Extract the candidate set of `corpus` using its language's pattern
/// inventory. Nested occurrences are tracked (C-value needs them).
///
/// The per-document pattern scan and the per-candidate nesting pass run
/// on `boe_par` (contiguous chunks, in-order merge), and nesting uses a
/// sentence-local interval index instead of the quadratic all-pairs scan
/// — the output is bit-identical to [`extract_candidates_serial`] at
/// any thread count (equality-tested in
/// `tests/step1_parallel_equality.rs`).
pub fn extract_candidates(corpus: &Corpus, opts: CandidateOptions) -> CandidateSet {
    try_extract_candidates(corpus, opts, &|| false).expect("never-stop predicate cannot interrupt")
}

/// [`extract_candidates`] with cooperative cancellation: `should_stop`
/// is polled before every document of the scan and every candidate of
/// the nesting pass. Once it returns `true` the extraction winds down
/// and `None` is returned — partial candidate statistics would be
/// corpus-prefix-dependent, so an interrupted extraction yields no set
/// at all rather than a misleading one. The predicate must be monotonic
/// (once `true`, stay `true`).
pub fn try_extract_candidates<S>(
    corpus: &Corpus,
    opts: CandidateOptions,
    should_stop: &S,
) -> Option<CandidateSet>
where
    S: Fn() -> bool + Sync,
{
    boe_chaos::inject(boe_chaos::sites::TERMEX_CANDIDATES);
    let patterns = PatternSet::for_language(corpus.language());
    // Phase 1 (parallel): scan each document for pattern matches. Every
    // worker only reads the corpus; results come back in document order.
    let scan = boe_par::try_par_map(corpus.docs(), should_stop, |doc| {
        let mut occs = Vec::new();
        for (si, s) in doc.sentences.iter().enumerate() {
            for m in patterns.matches(&s.tags) {
                if m.len > opts.max_len {
                    continue;
                }
                let tokens = &s.tokens[m.start..m.start + m.len];
                if opts.stopword_boundary_filter {
                    let first = tokens[0];
                    let last = tokens[m.len - 1];
                    if corpus.is_stopword(first) || corpus.is_stopword(last) {
                        continue;
                    }
                }
                occs.push(ScanOcc {
                    tokens: tokens.to_vec(),
                    pattern: m.pattern,
                    sentence: si as u32,
                    start: m.start as u32,
                    len: m.len as u32,
                });
            }
        }
        occs
    });
    if scan.is_interrupted() {
        return None;
    }
    // Phase 2 (serial, in document order): merge into per-candidate
    // stats. Replaying matches in reading order keeps first-seen pattern
    // assignment and occurrence order identical to the serial scan.
    let mut raw: HashMap<Vec<TokenId>, Raw> = HashMap::new();
    for (doc, occs) in corpus.docs().iter().zip(scan.into_results()) {
        for o in occs {
            let entry = raw.entry(o.tokens).or_insert_with(|| Raw {
                pattern: o.pattern,
                freq: 0,
                docs: Vec::new(),
                occs: Vec::new(),
            });
            entry.freq += 1;
            entry.docs.push(doc.id);
            entry.occs.push((doc.id.0, o.sentence, o.start, o.len));
        }
    }
    // Keep candidates above the frequency threshold, in a stable order.
    let mut kept: Vec<(Vec<TokenId>, Raw)> = raw
        .into_iter()
        .filter(|(_, r)| r.freq >= opts.min_freq)
        .collect();
    kept.sort_by(|a, b| a.0.cmp(&b.0));
    if should_stop() {
        return None;
    }
    // Sentence-local interval index: every kept occurrence span, keyed by
    // its exact coordinates. A span identifies its candidate uniquely
    // (identical tokens hash to the same candidate), so the map needs no
    // per-key lists. A container of occurrence (d,s,st,ln) is a kept
    // occurrence (d,s,ost,oln) with oln > ln, ost ≤ st and
    // ost+oln ≥ st+ln — at most max_len² candidate spans, probed
    // directly instead of scanning every occurrence in the sentence.
    let mut span_index: HashMap<(u32, u32, u32, u32), usize> =
        HashMap::with_capacity(kept.iter().map(|(_, r)| r.occs.len()).sum());
    for (idx, (_, r)) in kept.iter().enumerate() {
        for &occ in &r.occs {
            span_index.insert(occ, idx);
        }
    }
    let max_ln = kept.iter().map(|(t, _)| t.len() as u32).max().unwrap_or(0);
    // Phase 3 (parallel): per-candidate nesting counts and assembly.
    // Workers only read `kept` and the span index.
    let kept_ref = &kept;
    let span_ref = &span_index;
    let built = boe_par::try_par_map_indexed(kept.len(), should_stop, |idx| {
        let (tokens, r) = &kept_ref[idx];
        let mut nested_freq = 0u32;
        let mut containers: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &(d, s, st, ln) in &r.occs {
            let mut is_nested = false;
            for oln in (ln + 1)..=max_ln {
                for ost in (st + ln).saturating_sub(oln)..=st {
                    if let Some(&oidx) = span_ref.get(&(d, s, ost, oln)) {
                        is_nested = true;
                        containers.insert(oidx);
                    }
                }
            }
            if is_nested {
                nested_freq += 1;
            }
        }
        let mut docs = r.docs.clone();
        docs.sort_unstable();
        docs.dedup();
        let surface = tokens
            .iter()
            .map(|&t| corpus.text(t))
            .collect::<Vec<_>>()
            .join(" ");
        CandidateTerm {
            tokens: tokens.clone(),
            surface,
            pattern: r.pattern,
            freq: r.freq,
            doc_freq: docs.len() as u32,
            nested_freq,
            containers: containers.len() as u32,
        }
    });
    if built.is_interrupted() {
        return None;
    }
    let terms = built.into_results();
    let by_tokens = kept
        .iter()
        .enumerate()
        .map(|(i, (tokens, _))| (tokens.clone(), i))
        .collect();
    Some(CandidateSet { terms, by_tokens })
}

/// The original single-threaded extraction with the quadratic
/// all-pairs nesting scan, kept callable as the reference
/// implementation for the serial-vs-parallel equality suite.
pub fn extract_candidates_serial(corpus: &Corpus, opts: CandidateOptions) -> CandidateSet {
    boe_chaos::inject(boe_chaos::sites::TERMEX_CANDIDATES);
    let patterns = PatternSet::for_language(corpus.language());
    // First pass: collect occurrences keyed by token sequence.
    let mut raw: HashMap<Vec<TokenId>, Raw> = HashMap::new();
    for doc in corpus.docs() {
        for (si, s) in doc.sentences.iter().enumerate() {
            for m in patterns.matches(&s.tags) {
                if m.len > opts.max_len {
                    continue;
                }
                let tokens = &s.tokens[m.start..m.start + m.len];
                if opts.stopword_boundary_filter {
                    let first = tokens[0];
                    let last = tokens[m.len - 1];
                    if corpus.is_stopword(first) || corpus.is_stopword(last) {
                        continue;
                    }
                }
                let entry = raw.entry(tokens.to_vec()).or_insert_with(|| Raw {
                    pattern: m.pattern,
                    freq: 0,
                    docs: Vec::new(),
                    occs: Vec::new(),
                });
                entry.freq += 1;
                entry.docs.push(doc.id);
                entry
                    .occs
                    .push((doc.id.0, si as u32, m.start as u32, m.len as u32));
            }
        }
    }
    // Keep candidates above the frequency threshold, in a stable order.
    let mut kept: Vec<(Vec<TokenId>, Raw)> = raw
        .into_iter()
        .filter(|(_, r)| r.freq >= opts.min_freq)
        .collect();
    kept.sort_by(|a, b| a.0.cmp(&b.0));
    // Nesting: occurrence (d,s,start,len) of t is nested if some kept
    // longer candidate has an occurrence (d,s,start',len') covering it.
    type SentenceOccs = Vec<(u32, u32, usize)>; // (start, len, candidate idx)
    let mut occ_index: HashMap<(u32, u32), SentenceOccs> = HashMap::new();
    for (idx, (_, r)) in kept.iter().enumerate() {
        for &(d, s, st, ln) in &r.occs {
            occ_index.entry((d, s)).or_default().push((st, ln, idx));
        }
    }
    let mut terms = Vec::with_capacity(kept.len());
    let mut by_tokens = HashMap::with_capacity(kept.len());
    for (idx, (tokens, r)) in kept.iter().enumerate() {
        let mut nested_freq = 0u32;
        let mut containers: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &(d, s, st, ln) in &r.occs {
            let mut is_nested = false;
            if let Some(list) = occ_index.get(&(d, s)) {
                for &(ost, oln, oidx) in list {
                    if oidx != idx && oln > ln && ost <= st && ost + oln >= st + ln {
                        is_nested = true;
                        containers.insert(oidx);
                    }
                }
            }
            if is_nested {
                nested_freq += 1;
            }
        }
        let mut docs = r.docs.clone();
        docs.sort_unstable();
        docs.dedup();
        let surface = tokens
            .iter()
            .map(|&t| corpus.text(t))
            .collect::<Vec<_>>()
            .join(" ");
        let term = CandidateTerm {
            tokens: tokens.clone(),
            surface,
            pattern: r.pattern,
            freq: r.freq,
            doc_freq: docs.len() as u32,
            nested_freq,
            containers: containers.len() as u32,
        };
        by_tokens.insert(tokens.clone(), terms.len());
        terms.push(term);
    }
    CandidateSet { terms, by_tokens }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn corpus(texts: &[&str]) -> Corpus {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        b.build()
    }

    #[test]
    fn extracts_adjective_noun_candidates() {
        let c = corpus(&[
            "acute corneal injuries require treatment.",
            "acute corneal injuries heal slowly.",
        ]);
        let set = extract_candidates(&c, CandidateOptions::default());
        let t = set.get_surface("corneal injuries").expect("extracted");
        assert_eq!(t.freq, 2);
        assert_eq!(t.doc_freq, 2);
        assert!(set.get_surface("acute corneal injuries").is_some());
    }

    #[test]
    fn nested_occurrences_are_counted() {
        let c = corpus(&[
            "acute corneal injuries require treatment.",
            "acute corneal injuries heal slowly.",
            "corneal injuries persist.",
        ]);
        let set = extract_candidates(&c, CandidateOptions::default());
        let inner = set.get_surface("corneal injuries").expect("extracted");
        assert_eq!(inner.freq, 3);
        assert_eq!(inner.nested_freq, 2, "two occurrences inside the ANN");
        assert_eq!(inner.containers, 1);
        let outer = set.get_surface("acute corneal injuries").expect("kept");
        assert_eq!(outer.nested_freq, 0);
    }

    #[test]
    fn min_freq_filters_hapaxes() {
        let c = corpus(&["rare singleton phrase.", "different text entirely."]);
        let set = extract_candidates(&c, CandidateOptions::default());
        assert!(set.get_surface("singleton phrase").is_none());
        let relaxed = extract_candidates(
            &c,
            CandidateOptions {
                min_freq: 1,
                ..Default::default()
            },
        );
        assert!(relaxed.len() > set.len());
    }

    #[test]
    fn candidates_are_looked_up_by_tokens() {
        let c = corpus(&["corneal injuries heal.", "corneal injuries persist."]);
        let set = extract_candidates(&c, CandidateOptions::default());
        let ids = c.phrase_ids("corneal injuries").expect("known");
        let t = set.get(&ids).expect("by tokens");
        assert_eq!(t.surface, "corneal injuries");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unigram_nouns_are_candidates() {
        let c = corpus(&["cornea heals.", "cornea scars."]);
        let set = extract_candidates(&c, CandidateOptions::default());
        assert!(set.get_surface("cornea").is_some());
    }

    #[test]
    fn deterministic_order() {
        let c = corpus(&["corneal injuries heal.", "corneal injuries persist."]);
        let a = extract_candidates(&c, CandidateOptions::default());
        let b = extract_candidates(&c, CandidateOptions::default());
        let sa: Vec<&str> = a.terms.iter().map(|t| t.surface.as_str()).collect();
        let sb: Vec<&str> = b.terms.iter().map(|t| t.surface.as_str()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let c = corpus(&[
            "acute corneal injuries require treatment. corneal injuries persist.",
            "acute corneal injuries heal slowly. the cornea heals.",
            "corneal injuries persist. cornea scars badly.",
        ]);
        let serial = extract_candidates_serial(&c, CandidateOptions::default());
        for threads in [1usize, 8] {
            boe_par::set_threads(Some(threads));
            let par = extract_candidates(&c, CandidateOptions::default());
            boe_par::set_threads(None);
            assert_eq!(par.terms, serial.terms, "at {threads} thread(s)");
            for t in &serial.terms {
                assert_eq!(par.get(&t.tokens).expect("lookup"), t);
            }
        }
    }

    #[test]
    fn interrupted_extraction_yields_none() {
        let c = corpus(&["corneal injuries heal.", "corneal injuries persist."]);
        assert!(try_extract_candidates(&c, CandidateOptions::default(), &|| true).is_none());
        assert!(try_extract_candidates(&c, CandidateOptions::default(), &|| false).is_some());
    }
}
