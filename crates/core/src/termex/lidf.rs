//! LIDF-value (Linguistic patterns + IDF + C-value), the flagship BIOTEX
//! measure of the IRJ-2016 companion paper:
//!
//! `LIDF-value(t) = P(pattern(t)) × IDF(t) × C-value(t)`
//!
//! where `P(pattern(t))` is the prior probability of the term's linguistic
//! pattern among reference-ontology terms (from
//! [`boe_textkit::pattern::PatternSet`]) and IDF uses exact phrase
//! document frequency.

use crate::termex::candidates::CandidateTerm;
use crate::termex::measures::c_value;
use boe_corpus::index::InvertedIndex;
use boe_textkit::pattern::PatternSet;

/// LIDF-value of one candidate.
pub fn lidf_value(index: &InvertedIndex, patterns: &PatternSet, term: &CandidateTerm) -> f64 {
    let p_pattern = patterns.weight(term.pattern);
    let df = index.phrase_matches(&term.tokens).len() as f64;
    let n = index.doc_count() as f64;
    let idf = ((n + 1.0) / (df + 1.0)).ln() + 1.0;
    p_pattern * idf * c_value(term)
}

/// LIDF-values for a whole candidate set (index-aligned). Each score is
/// an independent read-only computation, so the loop runs on `boe_par`
/// (bit-identical to the serial map at any thread count).
pub fn lidf_values(
    index: &InvertedIndex,
    patterns: &PatternSet,
    set: &crate::termex::candidates::CandidateSet,
) -> Vec<f64> {
    boe_par::par_map_min(&set.terms, 64, |t| lidf_value(index, patterns, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termex::candidates::{extract_candidates, CandidateOptions, CandidateSet};
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn setup(texts: &[&str]) -> (InvertedIndex, CandidateSet, PatternSet) {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let ix = InvertedIndex::build(&c);
        let set = extract_candidates(&c, CandidateOptions::default());
        (ix, set, PatternSet::for_language(Language::English))
    }

    #[test]
    fn lidf_is_positive_and_combines_factors() {
        let (ix, set, ps) = setup(&[
            "corneal injuries heal. corneal injuries persist.",
            "corneal injuries worsen.",
        ]);
        let t = set.get_surface("corneal injuries").expect("kept");
        let v = lidf_value(&ix, &ps, t);
        assert!(v > 0.0);
        // Manual recomputation of each factor.
        let df = ix.phrase_matches(&t.tokens).len() as f64;
        let n = ix.doc_count() as f64;
        let idf = ((n + 1.0) / (df + 1.0)).ln() + 1.0;
        let manual = ps.weight(t.pattern) * idf * c_value(t);
        assert!((v - manual).abs() < 1e-12);
    }

    #[test]
    fn common_pattern_beats_rare_pattern_at_equal_stats() {
        let (ix, set, ps) = setup(&[
            "corneal injuries heal. injuries cornea overlap.",
            "corneal injuries persist. injuries cornea mix.",
        ]);
        // "corneal injuries" matches A N (high prior); "injuries cornea"
        // matches N N (lower prior); both freq 2, len 2.
        let an = set.get_surface("corneal injuries").expect("kept");
        let nn = set.get_surface("injuries cornea").expect("kept");
        assert!(ps.weight(an.pattern) > ps.weight(nn.pattern));
        assert!(lidf_value(&ix, &ps, an) > lidf_value(&ix, &ps, nn));
    }
}
