//! TeRGraph — graph-based term re-ranking (IRJ 2016, §5).
//!
//! BIOTEX's TeRGraph scores a term by the *specificity of its
//! neighbourhood* in the term co-occurrence graph: a genuine domain term
//! co-occurs with other specific terms (low-degree neighbours), while a
//! general word sits next to hubs. We implement the published formula
//!
//! `TeRGraph(t) = log2( 1.5 + Σ_{n ∈ N(t)} (1 / |N(n)|) / |N(t)| )`
//!
//! over the candidate co-occurrence graph (candidates co-occurring in the
//! same sentence are linked).

use crate::termex::candidates::CandidateSet;
use boe_corpus::Corpus;
use boe_graph::{Graph, NodeId};
use std::collections::HashMap;

/// The term co-occurrence graph over a candidate set: node = candidate
/// index, edge weight = number of sentences where both candidates occur.
pub fn term_cooccurrence_graph(corpus: &Corpus, set: &CandidateSet) -> Graph {
    let mut g = Graph::with_nodes(set.len());
    // Map from first token to candidate indices, for fast sentence scans.
    let mut by_first: HashMap<boe_textkit::TokenId, Vec<usize>> = HashMap::new();
    for (i, t) in set.terms.iter().enumerate() {
        by_first.entry(t.tokens[0]).or_default().push(i);
    }
    let mut pair_counts: HashMap<(usize, usize), u32> = HashMap::new();
    let mut present: Vec<usize> = Vec::new();
    for doc in corpus.docs() {
        for s in &doc.sentences {
            present.clear();
            for start in 0..s.tokens.len() {
                if let Some(cands) = by_first.get(&s.tokens[start]) {
                    for &ci in cands {
                        let t = &set.terms[ci];
                        if start + t.tokens.len() <= s.tokens.len()
                            && s.tokens[start..start + t.tokens.len()] == t.tokens[..]
                        {
                            present.push(ci);
                        }
                    }
                }
            }
            present.sort_unstable();
            present.dedup();
            for i in 0..present.len() {
                for j in (i + 1)..present.len() {
                    *pair_counts.entry((present[i], present[j])).or_insert(0) += 1;
                }
            }
        }
    }
    let mut pairs: Vec<((usize, usize), u32)> = pair_counts.into_iter().collect();
    pairs.sort_unstable();
    for ((a, b), w) in pairs {
        g.add_edge(NodeId(a as u32), NodeId(b as u32), f64::from(w));
    }
    g
}

/// TeRGraph scores for every candidate (index-aligned with the set).
/// Isolated candidates score `log2(1.5)` (empty neighbourhood sum).
pub fn tergraph_scores(graph: &Graph) -> Vec<f64> {
    graph
        .nodes()
        .map(|v| {
            let nbs = graph.neighbours(v);
            if nbs.is_empty() {
                return 1.5f64.log2();
            }
            let sum: f64 = nbs
                .iter()
                .map(|&(u, _)| 1.0 / graph.degree(u).max(1) as f64)
                .sum();
            (1.5 + sum / nbs.len() as f64).log2()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termex::candidates::{extract_candidates, CandidateOptions};
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn setup(texts: &[&str]) -> (Corpus, CandidateSet) {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let set = extract_candidates(&c, CandidateOptions::default());
        (c, set)
    }

    #[test]
    fn cooccurring_candidates_are_linked() {
        let (c, set) = setup(&[
            "corneal injuries damage epithelium badly.",
            "corneal injuries damage epithelium severely.",
        ]);
        let g = term_cooccurrence_graph(&c, &set);
        let ci = set
            .terms
            .iter()
            .position(|t| t.surface == "corneal injuries")
            .expect("kept");
        let ep = set
            .terms
            .iter()
            .position(|t| t.surface == "epithelium")
            .expect("kept");
        let w = g.edge_weight(NodeId(ci as u32), NodeId(ep as u32));
        assert_eq!(w, Some(2.0));
    }

    #[test]
    fn different_sentences_do_not_link() {
        let (c, set) = setup(&[
            "cornea heals. epithelium grows.",
            "cornea scars. epithelium thins.",
        ]);
        let g = term_cooccurrence_graph(&c, &set);
        let a = set
            .terms
            .iter()
            .position(|t| t.surface == "cornea")
            .expect("kept");
        let b = set
            .terms
            .iter()
            .position(|t| t.surface == "epithelium")
            .expect("kept");
        assert!(!g.has_edge(NodeId(a as u32), NodeId(b as u32)));
    }

    #[test]
    fn specific_neighbourhood_scores_higher() {
        // Star: "hub" co-occurs with many; leaves co-occur only with hub.
        // A leaf's neighbourhood (just the hub, high degree) is less
        // specific than the hub's (all low-degree leaves): the hub scores
        // higher — and both beat nothing. Verify ordering holds.
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), 1.0);
        }
        let scores = tergraph_scores(&g);
        // Hub: avg(1/1 ×4)/4 = 1 → log2(2.5). Leaf: (1/4)/1 → log2(1.75).
        assert!((scores[0] - 2.5f64.log2()).abs() < 1e-12);
        assert!((scores[1] - 1.75f64.log2()).abs() < 1e-12);
        assert!(scores[0] > scores[1]);
    }

    #[test]
    fn isolated_candidate_gets_floor_score() {
        let g = Graph::with_nodes(1);
        let scores = tergraph_scores(&g);
        assert!((scores[0] - 1.5f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn nested_candidates_both_detected_in_sentence() {
        let (c, set) = setup(&[
            "acute corneal injuries worsen.",
            "acute corneal injuries persist.",
        ]);
        let g = term_cooccurrence_graph(&c, &set);
        let inner = set
            .terms
            .iter()
            .position(|t| t.surface == "corneal injuries")
            .expect("kept");
        let outer = set
            .terms
            .iter()
            .position(|t| t.surface == "acute corneal injuries")
            .expect("kept");
        // Both present in the same sentences → linked with weight 2.
        assert_eq!(
            g.edge_weight(NodeId(inner as u32), NodeId(outer as u32)),
            Some(2.0)
        );
    }
}
