//! TeRGraph — graph-based term re-ranking (IRJ 2016, §5).
//!
//! BIOTEX's TeRGraph scores a term by the *specificity of its
//! neighbourhood* in the term co-occurrence graph: a genuine domain term
//! co-occurs with other specific terms (low-degree neighbours), while a
//! general word sits next to hubs. We implement the published formula
//!
//! `TeRGraph(t) = log2( 1.5 + Σ_{n ∈ N(t)} (1 / |N(n)|) / |N(t)| )`
//!
//! over the candidate co-occurrence graph (candidates co-occurring in the
//! same sentence are linked).

use crate::termex::candidates::CandidateSet;
use boe_corpus::Corpus;
use boe_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Per-sentence candidate scan: the (sorted, deduped) co-occurrence pair
/// counts of one document, as a canonically ordered list.
fn doc_pair_counts(
    doc: &boe_corpus::doc::Document,
    set: &CandidateSet,
    by_first: &HashMap<boe_textkit::TokenId, Vec<usize>>,
) -> Vec<((usize, usize), u32)> {
    let mut counts: HashMap<(usize, usize), u32> = HashMap::new();
    let mut present: Vec<usize> = Vec::new();
    for s in &doc.sentences {
        present.clear();
        for start in 0..s.tokens.len() {
            if let Some(cands) = by_first.get(&s.tokens[start]) {
                for &ci in cands {
                    let t = &set.terms[ci];
                    if start + t.tokens.len() <= s.tokens.len()
                        && s.tokens[start..start + t.tokens.len()] == t.tokens[..]
                    {
                        present.push(ci);
                    }
                }
            }
        }
        present.sort_unstable();
        present.dedup();
        for i in 0..present.len() {
            for j in (i + 1)..present.len() {
                *counts.entry((present[i], present[j])).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<((usize, usize), u32)> = counts.into_iter().collect();
    pairs.sort_unstable();
    pairs
}

/// The term co-occurrence graph over a candidate set: node = candidate
/// index, edge weight = number of sentences where both candidates occur.
///
/// Per-document edge multisets are built in parallel (`boe_par`) and
/// reduced serially in document order; edge weights are integer counts,
/// so the result is bit-identical to
/// [`term_cooccurrence_graph_serial`] at any thread count.
pub fn term_cooccurrence_graph(corpus: &Corpus, set: &CandidateSet) -> Graph {
    let mut g = Graph::with_nodes(set.len());
    // Map from first token to candidate indices, for fast sentence scans.
    let mut by_first: HashMap<boe_textkit::TokenId, Vec<usize>> = HashMap::new();
    for (i, t) in set.terms.iter().enumerate() {
        by_first.entry(t.tokens[0]).or_default().push(i);
    }
    let per_doc: Vec<Vec<((usize, usize), u32)>> =
        boe_par::par_map(corpus.docs(), |doc| doc_pair_counts(doc, set, &by_first));
    // Serial in-order reduction; the final sort canonicalizes edge order
    // exactly as the serial single-map accumulation does.
    let mut pair_counts: HashMap<(usize, usize), u32> = HashMap::new();
    for doc_pairs in per_doc {
        for (pair, w) in doc_pairs {
            *pair_counts.entry(pair).or_insert(0) += w;
        }
    }
    let mut pairs: Vec<((usize, usize), u32)> = pair_counts.into_iter().collect();
    pairs.sort_unstable();
    for ((a, b), w) in pairs {
        g.add_edge(NodeId(a as u32), NodeId(b as u32), f64::from(w));
    }
    g
}

/// The original single-threaded co-occurrence graph build, kept callable
/// as the reference implementation for the equality suite.
pub fn term_cooccurrence_graph_serial(corpus: &Corpus, set: &CandidateSet) -> Graph {
    let mut g = Graph::with_nodes(set.len());
    let mut by_first: HashMap<boe_textkit::TokenId, Vec<usize>> = HashMap::new();
    for (i, t) in set.terms.iter().enumerate() {
        by_first.entry(t.tokens[0]).or_default().push(i);
    }
    let mut pair_counts: HashMap<(usize, usize), u32> = HashMap::new();
    for doc in corpus.docs() {
        for (pair, w) in doc_pair_counts(doc, set, &by_first) {
            *pair_counts.entry(pair).or_insert(0) += w;
        }
    }
    let mut pairs: Vec<((usize, usize), u32)> = pair_counts.into_iter().collect();
    pairs.sort_unstable();
    for ((a, b), w) in pairs {
        g.add_edge(NodeId(a as u32), NodeId(b as u32), f64::from(w));
    }
    g
}

/// TeRGraph scores for every candidate (index-aligned with the set).
/// Isolated candidates score `log2(1.5)` (empty neighbourhood sum).
///
/// Each node's score is independent and its neighbourhood sum follows
/// adjacency order, so the parallel map is bit-identical to
/// [`tergraph_scores_serial`] at any thread count.
pub fn tergraph_scores(graph: &Graph) -> Vec<f64> {
    let nodes: Vec<NodeId> = graph.nodes().collect();
    boe_par::par_map_min(&nodes, 64, |&v| node_score(graph, v))
}

/// Single-threaded reference for [`tergraph_scores`].
pub fn tergraph_scores_serial(graph: &Graph) -> Vec<f64> {
    graph.nodes().map(|v| node_score(graph, v)).collect()
}

/// The TeRGraph formula for one node.
fn node_score(graph: &Graph, v: NodeId) -> f64 {
    let nbs = graph.neighbours(v);
    if nbs.is_empty() {
        return 1.5f64.log2();
    }
    let sum: f64 = nbs
        .iter()
        .map(|&(u, _)| 1.0 / graph.degree(u).max(1) as f64)
        .sum();
    (1.5 + sum / nbs.len() as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termex::candidates::{extract_candidates, CandidateOptions};
    use boe_corpus::corpus::CorpusBuilder;
    use boe_textkit::Language;

    fn setup(texts: &[&str]) -> (Corpus, CandidateSet) {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let set = extract_candidates(&c, CandidateOptions::default());
        (c, set)
    }

    #[test]
    fn cooccurring_candidates_are_linked() {
        let (c, set) = setup(&[
            "corneal injuries damage epithelium badly.",
            "corneal injuries damage epithelium severely.",
        ]);
        let g = term_cooccurrence_graph(&c, &set);
        let ci = set
            .terms
            .iter()
            .position(|t| t.surface == "corneal injuries")
            .expect("kept");
        let ep = set
            .terms
            .iter()
            .position(|t| t.surface == "epithelium")
            .expect("kept");
        let w = g.edge_weight(NodeId(ci as u32), NodeId(ep as u32));
        assert_eq!(w, Some(2.0));
    }

    #[test]
    fn different_sentences_do_not_link() {
        let (c, set) = setup(&[
            "cornea heals. epithelium grows.",
            "cornea scars. epithelium thins.",
        ]);
        let g = term_cooccurrence_graph(&c, &set);
        let a = set
            .terms
            .iter()
            .position(|t| t.surface == "cornea")
            .expect("kept");
        let b = set
            .terms
            .iter()
            .position(|t| t.surface == "epithelium")
            .expect("kept");
        assert!(!g.has_edge(NodeId(a as u32), NodeId(b as u32)));
    }

    #[test]
    fn specific_neighbourhood_scores_higher() {
        // Star: "hub" co-occurs with many; leaves co-occur only with hub.
        // A leaf's neighbourhood (just the hub, high degree) is less
        // specific than the hub's (all low-degree leaves): the hub scores
        // higher — and both beat nothing. Verify ordering holds.
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), 1.0);
        }
        let scores = tergraph_scores(&g);
        // Hub: avg(1/1 ×4)/4 = 1 → log2(2.5). Leaf: (1/4)/1 → log2(1.75).
        assert!((scores[0] - 2.5f64.log2()).abs() < 1e-12);
        assert!((scores[1] - 1.75f64.log2()).abs() < 1e-12);
        assert!(scores[0] > scores[1]);
    }

    #[test]
    fn isolated_candidate_gets_floor_score() {
        let g = Graph::with_nodes(1);
        let scores = tergraph_scores(&g);
        assert!((scores[0] - 1.5f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn parallel_graph_and_scores_match_serial() {
        let (c, set) = setup(&[
            "corneal injuries damage epithelium badly. cornea heals.",
            "corneal injuries damage epithelium severely. cornea scars.",
            "acute corneal injuries worsen. epithelium thins.",
            "acute corneal injuries persist. cornea heals again.",
        ]);
        let gs = term_cooccurrence_graph_serial(&c, &set);
        let ss = tergraph_scores_serial(&gs);
        for threads in [1usize, 8] {
            boe_par::set_threads(Some(threads));
            let gp = term_cooccurrence_graph(&c, &set);
            let sp = tergraph_scores(&gp);
            boe_par::set_threads(None);
            assert_eq!(gp.node_count(), gs.node_count(), "at {threads} thread(s)");
            let es: Vec<_> = gs.edges().collect();
            let ep: Vec<_> = gp.edges().collect();
            assert_eq!(ep, es, "edges diverge at {threads} thread(s)");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&sp),
                bits(&ss),
                "scores diverge at {threads} thread(s)"
            );
        }
    }

    #[test]
    fn nested_candidates_both_detected_in_sentence() {
        let (c, set) = setup(&[
            "acute corneal injuries worsen.",
            "acute corneal injuries persist.",
        ]);
        let g = term_cooccurrence_graph(&c, &set);
        let inner = set
            .terms
            .iter()
            .position(|t| t.surface == "corneal injuries")
            .expect("kept");
        let outer = set
            .terms
            .iter()
            .position(|t| t.surface == "acute corneal injuries")
            .expect("kept");
        // Both present in the same sentences → linked with weight 2.
        assert_eq!(
            g.edge_weight(NodeId(inner as u32), NodeId(outer as u32)),
            Some(2.0)
        );
    }
}
