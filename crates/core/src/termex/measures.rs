//! Termhood measures: C-value, phrase-level TF-IDF/Okapi, and the
//! harmonic fusions F-TFIDF-C and F-OCapi (IRJ 2016, §4).

use crate::termex::candidates::{CandidateSet, CandidateTerm};
use boe_corpus::index::InvertedIndex;
use boe_corpus::weighting::{self, Bm25Params};

/// C-value (Frantzi et al. 2000, as used by BIOTEX):
///
/// * non-nested term: `log2(|t| + 1) × freq(t)`
/// * nested term: `log2(|t| + 1) × (freq(t) − nested_freq(t)/containers(t))`
///
/// where `|t|` is the length in words (the `+1` keeps unigrams scored).
pub fn c_value(term: &CandidateTerm) -> f64 {
    let len_factor = ((term.len() as f64) + 1.0).log2();
    let freq = f64::from(term.freq);
    if term.containers == 0 {
        len_factor * freq
    } else {
        len_factor * (freq - f64::from(term.nested_freq) / f64::from(term.containers))
    }
}

/// Phrase-level TF-IDF: max over documents of
/// `(1 + ln tf_d) × ln((N+1)/(df+1)) + 1` using exact phrase counts.
pub fn phrase_tf_idf(index: &InvertedIndex, term: &CandidateTerm) -> f64 {
    let matches = index.phrase_matches(&term.tokens);
    let n = index.doc_count() as f64;
    let df = matches.len() as f64;
    let idf = ((n + 1.0) / (df + 1.0)).ln() + 1.0;
    matches
        .iter()
        .map(|&(_, tf)| (1.0 + f64::from(tf).ln()) * idf)
        .fold(0.0, f64::max)
}

/// Phrase-level Okapi BM25: max over documents of the BM25 score with
/// exact phrase counts.
pub fn phrase_okapi(index: &InvertedIndex, term: &CandidateTerm, params: Bm25Params) -> f64 {
    let matches = index.phrase_matches(&term.tokens);
    let n = index.doc_count() as f64;
    let df = matches.len() as f64;
    let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
    matches
        .iter()
        .map(|&(doc, tf)| {
            let tf = f64::from(tf);
            let dl = f64::from(index.doc_len(doc));
            let avg = index.avg_doc_len().max(1e-9);
            let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avg);
            idf * tf * (params.k1 + 1.0) / denom
        })
        .fold(0.0, f64::max)
}

/// Harmonic fusion of two non-negative scores (the F in F-TFIDF-C /
/// F-OCapi): `2ab / (a + b)`, 0 when both are 0.
pub fn harmonic(a: f64, b: f64) -> f64 {
    if a + b <= 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

/// F-TFIDF-C: harmonic mean of phrase TF-IDF and C-value.
pub fn f_tfidf_c(index: &InvertedIndex, term: &CandidateTerm) -> f64 {
    harmonic(phrase_tf_idf(index, term), c_value(term))
}

/// F-OCapi: harmonic mean of phrase Okapi and C-value.
pub fn f_ocapi(index: &InvertedIndex, term: &CandidateTerm) -> f64 {
    harmonic(
        phrase_okapi(index, term, Bm25Params::default()),
        c_value(term),
    )
}

/// Mean single-token IDF of a candidate (used as a weak fallback signal
/// and exposed for feature extraction).
pub fn mean_token_idf(index: &InvertedIndex, term: &CandidateTerm) -> f64 {
    if term.tokens.is_empty() {
        return 0.0;
    }
    term.tokens
        .iter()
        .map(|&t| weighting::idf(index, t))
        .sum::<f64>()
        / term.tokens.len() as f64
}

/// Convenience: C-values for a whole candidate set (index-aligned).
/// Scores are independent per candidate, so the loop runs on `boe_par`
/// (bit-identical to the serial map at any thread count); the high
/// serial threshold reflects how cheap one C-value is.
pub fn c_values(set: &CandidateSet) -> Vec<f64> {
    boe_par::par_map_min(&set.terms, 512, c_value)
}

/// Phrase TF-IDF for a whole candidate set (index-aligned), on `boe_par`.
pub fn phrase_tf_idfs(index: &InvertedIndex, set: &CandidateSet) -> Vec<f64> {
    boe_par::par_map_min(&set.terms, 64, |t| phrase_tf_idf(index, t))
}

/// Phrase Okapi BM25 for a whole candidate set (index-aligned), on
/// `boe_par`.
pub fn phrase_okapis(index: &InvertedIndex, set: &CandidateSet, params: Bm25Params) -> Vec<f64> {
    boe_par::par_map_min(&set.terms, 64, |t| phrase_okapi(index, t, params))
}

/// F-TFIDF-C for a whole candidate set (index-aligned), on `boe_par`.
pub fn f_tfidf_cs(index: &InvertedIndex, set: &CandidateSet) -> Vec<f64> {
    boe_par::par_map_min(&set.terms, 64, |t| f_tfidf_c(index, t))
}

/// F-OCapi for a whole candidate set (index-aligned), on `boe_par`.
pub fn f_ocapis(index: &InvertedIndex, set: &CandidateSet) -> Vec<f64> {
    boe_par::par_map_min(&set.terms, 64, |t| f_ocapi(index, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termex::candidates::{extract_candidates, CandidateOptions};
    use boe_corpus::corpus::CorpusBuilder;
    use boe_corpus::Corpus;
    use boe_textkit::Language;

    fn setup(texts: &[&str]) -> (Corpus, InvertedIndex, CandidateSet) {
        let mut b = CorpusBuilder::new(Language::English);
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let ix = InvertedIndex::build(&c);
        let set = extract_candidates(&c, CandidateOptions::default());
        (c, ix, set)
    }

    #[test]
    fn c_value_rewards_length_and_frequency() {
        let (_, _, set) = setup(&[
            "corneal injuries heal. corneal injuries persist.",
            "corneal injuries worsen. cornea heals. cornea scars.",
        ]);
        let bigram = set.get_surface("corneal injuries").expect("kept");
        let unigram = set.get_surface("cornea").expect("kept");
        // Same order of magnitude of freq, but bigram gets log2(3) vs
        // log2(2) and higher freq: C-value must rank it above.
        assert!(c_value(bigram) > c_value(unigram));
    }

    #[test]
    fn c_value_discounts_nested_terms() {
        let (_, _, set) = setup(&[
            "acute corneal injuries require care. acute corneal injuries recur.",
            "acute corneal injuries persist. corneal injuries heal.",
        ]);
        let inner = set.get_surface("corneal injuries").expect("kept");
        // freq 4, nested 3, containers 1 → log2(3) × (4 − 3).
        assert!((c_value(inner) - 3.0f64.log2() * (4.0 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn phrase_tfidf_prefers_concentrated_terms() {
        let (_, ix, set) = setup(&[
            "corneal injuries heal. corneal injuries persist. corneal injuries recur.",
            "hepatic lesions grow. liver tissue scars.",
            "hepatic lesions shrink. renal damage spreads.",
        ]);
        let concentrated = set.get_surface("corneal injuries").expect("kept");
        let spread = set.get_surface("hepatic lesions").expect("kept");
        assert!(phrase_tf_idf(&ix, concentrated) > phrase_tf_idf(&ix, spread));
    }

    #[test]
    fn fusions_are_harmonic() {
        assert_eq!(harmonic(0.0, 0.0), 0.0);
        assert!((harmonic(2.0, 2.0) - 2.0).abs() < 1e-12);
        assert!(harmonic(4.0, 1.0) < 4.0);
        assert!(harmonic(4.0, 1.0) > 1.0);
    }

    #[test]
    fn f_measures_are_positive_for_real_candidates() {
        let (_, ix, set) = setup(&[
            "corneal injuries heal. corneal injuries persist.",
            "corneal injuries worsen quickly.",
        ]);
        let t = set.get_surface("corneal injuries").expect("kept");
        assert!(f_tfidf_c(&ix, t) > 0.0);
        assert!(f_ocapi(&ix, t) > 0.0);
    }

    #[test]
    fn mean_token_idf_behaviour() {
        let (c, ix, set) = setup(&[
            "corneal injuries heal. corneal injuries persist.",
            "injuries happen. injuries recur.",
        ]);
        let t = set.get_surface("corneal injuries").expect("kept");
        let idf_corneal = weighting::idf(&ix, c.vocab().get("corneal").expect("id"));
        let idf_injuries = weighting::idf(&ix, c.vocab().get("injuries").expect("id"));
        assert!((mean_token_idf(&ix, t) - (idf_corneal + idf_injuries) / 2.0).abs() < 1e-12);
    }
}
