//! The aligned synthetic world for the linkage experiments (E5/E6).
//!
//! Reproduces the paper's §3(ii) protocol with synthetic stand-ins
//! (DESIGN.md §2, substitution #6):
//!
//! 1. generate a MeSH-like ontology *with* the future terms;
//! 2. record each held-out term's gold positions (its synonyms plus all
//!    terms of its fathers/sons — the paradigmatic relations of Table 4);
//! 3. delete the held-out concepts, producing the "2009" ontology;
//! 4. generate a PubMed-like corpus in which every concept — including
//!    the held-out ones — is written about, with pair sentences that make
//!    related terms co-occur;
//! 5. ask the linker to re-place each held-out term in the reduced
//!    ontology and judge propositions against the gold positions.

use boe_corpus::corpus::CorpusBuilder;
use boe_corpus::synth::topic::{mention_tokens, AbstractGenerator, ConceptProfile, TaggedWord};
use boe_corpus::synth::vocabgen::LexiconPools;
use boe_corpus::Corpus;
use boe_ontology::synth::mesh::{MeshConfig, MeshGenerator};
use boe_ontology::{query, ConceptId, Ontology, OntologyBuilder};
use boe_rng::StdRng;
use boe_textkit::pos::PosTag;
use boe_textkit::Language;

/// World-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Language.
    pub lang: Language,
    /// Ontology size (concepts, including held-out ones).
    pub n_concepts: usize,
    /// Number of held-out "new" terms (the paper uses 60).
    pub n_holdout: usize,
    /// Abstracts generated per concept.
    pub abstracts_per_concept: usize,
    /// Exclusive topic nouns per concept.
    pub topic_nouns: usize,
    /// Exclusive topic adjectives per concept.
    pub topic_adjectives: usize,
    /// Number of *polysemic ontology terms*: shared synonyms planted on
    /// two unrelated concepts each (this is the weak supervision Step II
    /// trains on — UMLS-style polysemy inside the terminology).
    pub n_shared_synonyms: usize,
    /// Number of *ambiguous new terms*: surfaces absent from the ontology
    /// that are written about in two unrelated concepts' contexts (Step
    /// II should flag them, Step III should induce k = 2).
    pub n_ambiguous_new: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            lang: Language::English,
            n_concepts: 300,
            n_holdout: 60,
            abstracts_per_concept: 6,
            topic_nouns: 10,
            topic_adjectives: 5,
            n_shared_synonyms: 0,
            n_ambiguous_new: 0,
            seed: 0xB0E_2016,
        }
    }
}

/// One held-out term with its gold evaluation data.
#[derive(Debug, Clone)]
pub struct HeldOutTerm {
    /// The term to re-place (preferred label of the removed concept).
    pub surface: String,
    /// Concept id in the *full* ontology.
    pub concept: ConceptId,
    /// Normalized terms counting as correct positions (synonyms +
    /// father/son terms; paper's paradigmatic criterion).
    pub gold_terms: Vec<String>,
}

/// An ambiguous new term: a surface absent from the ontology written
/// about in two unrelated concepts' contexts.
#[derive(Debug, Clone)]
pub struct AmbiguousNewTerm {
    /// The ambiguous surface (single token).
    pub surface: String,
    /// The two concepts whose contexts it appears in.
    pub concepts: [ConceptId; 2],
}

/// The generated world.
#[derive(Debug)]
pub struct World {
    /// Ontology including the held-out concepts ("MeSH 2015").
    pub full_ontology: Ontology,
    /// Ontology with held-out concepts removed ("MeSH 2009").
    pub reduced_ontology: Ontology,
    /// The PubMed-like corpus.
    pub corpus: Corpus,
    /// The held-out terms.
    pub holdout: Vec<HeldOutTerm>,
    /// Concept topic profiles (full-ontology concept id order).
    pub profiles: Vec<ConceptProfile>,
    /// Planted polysemic ontology terms (shared synonyms), if any.
    pub shared_synonyms: Vec<String>,
    /// Planted ambiguous new terms, if any.
    pub ambiguous_new: Vec<AmbiguousNewTerm>,
}

impl World {
    /// Generate a world under `config`.
    pub fn generate(config: &WorldConfig) -> World {
        assert!(
            config.n_holdout < config.n_concepts / 2,
            "holdout too large"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (full, parts) = MeshGenerator::new(
            config.lang,
            MeshConfig {
                n_concepts: config.n_concepts,
                synonyms: 1.4,
                seed: config.seed ^ 0x5117,
                ..Default::default()
            },
        )
        .generate();
        // Plant shared synonyms: the same surface attached to two distant
        // concepts, making the term polysemic *inside* the terminology.
        let (full, shared_synonyms) = plant_shared_synonyms(full, config, &mut rng);

        // Topic profiles: exclusive pools, plus the parent's pools so that
        // hierarchically related terms have overlapping contexts.
        let pools = LexiconPools::generate(config.lang);
        let mut profiles: Vec<ConceptProfile> = full
            .concepts()
            .iter()
            .map(|c| {
                let (adj, noun) = &parts[c.id.index()];
                let mut p = ConceptProfile::with_exclusive_pools(
                    c.id.index(),
                    c.id.index(),
                    mention_tokens(config.lang, adj, noun),
                    &pools,
                    config.topic_nouns,
                    config.topic_adjectives,
                );
                p.synonyms = c
                    .synonyms
                    .iter()
                    .map(|s| tag_label(config.lang, s))
                    .collect();
                p
            })
            .collect();
        // Share half the parent's pools (context relatedness along is-a).
        let own: Vec<(Vec<String>, Vec<String>)> = profiles
            .iter()
            .map(|p| (p.nouns.clone(), p.adjectives.clone()))
            .collect();
        for c in full.concepts() {
            if let Some(&parent) = c.parents.first() {
                let (pn, pa) = &own[parent.index()];
                let p = &mut profiles[c.id.index()];
                p.nouns.extend(pn.iter().take(pn.len() / 2).cloned());
                p.adjectives.extend(pa.iter().take(pa.len() / 2).cloned());
            }
        }

        // Hold out leaves with a parent and at least one synonym.
        let mut holdout_ids: Vec<ConceptId> = full
            .leaves()
            .into_iter()
            .filter(|&c| {
                !full.concept(c).parents.is_empty() && !full.concept(c).synonyms.is_empty()
            })
            .collect();
        holdout_ids.truncate(config.n_holdout);
        let holdout: Vec<HeldOutTerm> = holdout_ids
            .iter()
            .map(|&c| HeldOutTerm {
                surface: full.concept(c).preferred.clone(),
                concept: c,
                gold_terms: query::gold_position_terms(&full, c),
            })
            .collect();

        // Reduced ontology (held-out concepts and their terms removed).
        let reduced = remove_concepts(&full, &holdout_ids);

        // Ambiguous new terms: each lives in two distant concepts'
        // contexts and is absent from the ontology.
        let ambiguous_new: Vec<AmbiguousNewTerm> = (0..config.n_ambiguous_new)
            .map(|i| {
                let a = rng.gen_range(0..full.len());
                let b = (a + full.len() / 2) % full.len();
                AmbiguousNewTerm {
                    surface: format!("ambinew{i}x"),
                    concepts: [ConceptId(a as u32), ConceptId(b as u32)],
                }
            })
            .collect();
        let mut ambiguous_by_concept: std::collections::HashMap<usize, Vec<&str>> =
            std::collections::HashMap::new();
        for t in &ambiguous_new {
            for &c in &t.concepts {
                ambiguous_by_concept
                    .entry(c.index())
                    .or_default()
                    .push(&t.surface);
            }
        }

        // Corpus: abstracts about every concept; each abstract includes a
        // pair sentence tying the concept to a hierarchical relative.
        let generator = AbstractGenerator::new(config.lang);
        let mut builder = CorpusBuilder::new(config.lang);
        for c in full.concepts() {
            let profile = &profiles[c.id.index()];
            let relatives: Vec<ConceptId> =
                c.parents.iter().chain(c.children.iter()).copied().collect();
            for _ in 0..config.abstracts_per_concept {
                let mut sentences = Vec::new();
                let n_sents = rng.gen_range(3..=6);
                for _ in 0..n_sents {
                    let mention = if rng.gen_bool(0.45) {
                        let surfaces: Vec<&Vec<TaggedWord>> = profile.surfaces().collect();
                        Some(surfaces[rng.gen_range(0..surfaces.len())].clone())
                    } else {
                        None
                    };
                    sentences.push(generator.sentence(&mut rng, profile, mention.as_deref()));
                }
                if !relatives.is_empty() {
                    let rel = relatives[rng.gen_range(0..relatives.len())];
                    let rel_profile = &profiles[rel.index()];
                    sentences.push(generator.pair_sentence(
                        &mut rng,
                        profile,
                        &profile.mention,
                        &rel_profile.mention,
                    ));
                    // Synonyms need contexts as rich as the preferred
                    // term's (the paper's Table-3 winners are synonyms):
                    // pair one with the relative and write about it solo.
                    if !profile.synonyms.is_empty() {
                        let syn = &profile.synonyms[rng.gen_range(0..profile.synonyms.len())];
                        if rng.gen_bool(0.9) {
                            sentences.push(generator.pair_sentence(
                                &mut rng,
                                profile,
                                syn,
                                &rel_profile.mention,
                            ));
                        }
                        if rng.gen_bool(0.7) {
                            sentences.push(generator.sentence(&mut rng, profile, Some(syn)));
                        }
                    }
                }
                // Ambiguous new terms hosted by this concept get mention
                // sentences in *this* concept's topic context.
                if let Some(hosted) = ambiguous_by_concept.get(&c.id.index()) {
                    for surface in hosted {
                        let mention: Vec<TaggedWord> = vec![((*surface).to_owned(), PosTag::Noun)];
                        for _ in 0..2 {
                            sentences.push(generator.sentence(&mut rng, profile, Some(&mention)));
                        }
                    }
                }
                builder.add_tokenized(sentences);
            }
        }
        World {
            full_ontology: full,
            reduced_ontology: reduced,
            corpus: builder.build(),
            holdout,
            profiles,
            shared_synonyms,
            ambiguous_new,
        }
    }
}

/// Attach `n_shared_synonyms` fresh single-token synonyms, each to two
/// distant concepts, making those terms polysemic inside the terminology.
/// Rebuilds the ontology (it is immutable).
fn plant_shared_synonyms(
    onto: Ontology,
    config: &WorldConfig,
    rng: &mut StdRng,
) -> (Ontology, Vec<String>) {
    if config.n_shared_synonyms == 0 {
        return (onto, Vec::new());
    }
    let n = onto.len();
    let mut extra: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut surfaces = Vec::with_capacity(config.n_shared_synonyms);
    for i in 0..config.n_shared_synonyms {
        let surface = format!("sharedpoly{i}x");
        let a = rng.gen_range(0..n);
        let b = (a + n / 2) % n;
        extra[a].push(surface.clone());
        extra[b].push(surface.clone());
        surfaces.push(surface);
    }
    let mut b = OntologyBuilder::new(onto.name().to_owned(), onto.language());
    for c in onto.concepts() {
        let mut syns = c.synonyms.clone();
        syns.extend(extra[c.id.index()].iter().cloned());
        b.add_concept(c.preferred.clone(), syns);
    }
    for c in onto.concepts() {
        for &p in &c.parents {
            b.add_is_a(c.id, p);
        }
    }
    (
        b.build().expect("synonym planting preserves structure"),
        surfaces,
    )
}

/// Tag a two-word generated label in the language's NP order.
fn tag_label(lang: Language, label: &str) -> Vec<TaggedWord> {
    let words: Vec<&str> = label.split_whitespace().collect();
    match (lang, words.as_slice()) {
        (Language::English, [adj, noun]) => vec![
            ((*adj).to_owned(), PosTag::Adjective),
            ((*noun).to_owned(), PosTag::Noun),
        ],
        (Language::French | Language::Spanish, [noun, adj]) => vec![
            ((*noun).to_owned(), PosTag::Noun),
            ((*adj).to_owned(), PosTag::Adjective),
        ],
        _ => words
            .iter()
            .map(|w| ((*w).to_owned(), PosTag::Noun))
            .collect(),
    }
}

/// Rebuild `onto` without the given concepts (assumed to be leaves).
fn remove_concepts(onto: &Ontology, remove: &[ConceptId]) -> Ontology {
    let removed: std::collections::HashSet<ConceptId> = remove.iter().copied().collect();
    let mut b = OntologyBuilder::new(onto.name().to_owned(), onto.language());
    let mut new_id = vec![None; onto.len()];
    for c in onto.concepts() {
        if removed.contains(&c.id) {
            continue;
        }
        let id = b.add_concept(c.preferred.clone(), c.synonyms.clone());
        new_id[c.id.index()] = Some(id);
    }
    for c in onto.concepts() {
        let Some(child) = new_id[c.id.index()] else {
            continue;
        };
        for &p in &c.parents {
            if let Some(parent) = new_id[p.index()] {
                b.add_is_a(child, parent);
            }
        }
    }
    b.build().expect("removing leaves preserves acyclicity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> World {
        World::generate(&WorldConfig {
            n_concepts: 60,
            n_holdout: 8,
            abstracts_per_concept: 3,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn holdout_terms_are_removed_from_reduced() {
        let w = small();
        assert_eq!(w.holdout.len(), 8);
        assert_eq!(w.reduced_ontology.len(), w.full_ontology.len() - 8);
        for h in &w.holdout {
            assert!(w.full_ontology.contains_term(&h.surface));
            assert!(!w.reduced_ontology.contains_term(&h.surface));
        }
    }

    #[test]
    fn gold_terms_include_father_terms() {
        let w = small();
        for h in &w.holdout {
            let fathers = query::fathers(&w.full_ontology, h.concept);
            assert!(!fathers.is_empty());
            let father_term =
                boe_textkit::normalize::match_key(&w.full_ontology.concept(fathers[0]).preferred);
            assert!(h.gold_terms.contains(&father_term), "{}", h.surface);
        }
    }

    #[test]
    fn holdout_terms_occur_in_corpus() {
        let w = small();
        for h in &w.holdout {
            let ids = w
                .corpus
                .phrase_ids(&h.surface)
                .unwrap_or_else(|| panic!("{} not interned", h.surface));
            let occs = boe_corpus::context::find_occurrences_naive(&w.corpus, &ids);
            assert!(!occs.is_empty(), "{} never occurs", h.surface);
        }
    }

    #[test]
    fn father_terms_occur_in_corpus() {
        let w = small();
        let mut found = 0;
        for h in &w.holdout {
            let fathers = query::fathers(&w.full_ontology, h.concept);
            let father = &w.full_ontology.concept(fathers[0]).preferred;
            if let Some(ids) = w.corpus.phrase_ids(father) {
                if !boe_corpus::context::find_occurrences_naive(&w.corpus, &ids).is_empty() {
                    found += 1;
                }
            }
        }
        assert!(found >= 6, "only {found}/8 fathers occur in corpus");
    }

    #[test]
    fn related_profiles_share_vocabulary() {
        let w = small();
        let child = w
            .full_ontology
            .concepts()
            .iter()
            .find(|c| !c.parents.is_empty())
            .expect("non-root exists");
        let parent = child.parents[0];
        let pc = &w.profiles[child.id.index()];
        let pp = &w.profiles[parent.index()];
        let shared = pc.nouns.iter().filter(|n| pp.nouns.contains(n)).count();
        assert!(shared > 0, "no vocabulary sharing along is-a");
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.corpus.token_count(), b.corpus.token_count());
        assert_eq!(
            a.holdout.iter().map(|h| &h.surface).collect::<Vec<_>>(),
            b.holdout.iter().map(|h| &h.surface).collect::<Vec<_>>()
        );
    }

    fn poly_world() -> World {
        World::generate(&WorldConfig {
            n_concepts: 60,
            n_holdout: 6,
            abstracts_per_concept: 4,
            n_shared_synonyms: 5,
            n_ambiguous_new: 4,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn shared_synonyms_are_polysemic_ontology_terms() {
        let w = poly_world();
        assert_eq!(w.shared_synonyms.len(), 5);
        for s in &w.shared_synonyms {
            assert_eq!(
                w.full_ontology.concepts_of_term(s).len(),
                2,
                "{s} should sit on two concepts"
            );
        }
        let stats = boe_ontology::polysemy::PolysemyStats::compute(&w.full_ontology);
        assert!(stats.count(2) >= 5);
    }

    #[test]
    fn ambiguous_new_terms_occur_in_both_concepts_contexts() {
        let w = poly_world();
        assert_eq!(w.ambiguous_new.len(), 4);
        for t in &w.ambiguous_new {
            assert!(
                !w.full_ontology.contains_term(&t.surface),
                "{} leaked into the ontology",
                t.surface
            );
            let ids = w.corpus.phrase_ids(&t.surface).expect("interned");
            let occs = boe_corpus::context::find_occurrences_naive(&w.corpus, &ids);
            // 2 concepts × abstracts × 2 mention sentences.
            assert!(occs.len() >= 8, "{}: {} occurrences", t.surface, occs.len());
        }
    }

    #[test]
    fn ambiguous_contexts_are_separable() {
        use boe_corpus::context::{contexts, ContextOptions, ContextScope};
        let w = poly_world();
        let t = &w.ambiguous_new[0];
        let ids = w.corpus.phrase_ids(&t.surface).expect("interned");
        let opts = ContextOptions {
            window: None,
            stemmed: true,
            scope: ContextScope::Sentence,
        };
        let stems = boe_corpus::context::StemMap::build(&w.corpus);
        let ctxs = contexts(&w.corpus, &ids, opts, Some(&stems));
        // Cluster into 2: external quality against concept-of-origin
        // cannot be computed without doc→concept labels, but the two
        // concept profiles are topically distinct, so a 2-way clustering
        // should have much higher ISIM than a 1-way.
        use boe_cluster::{Algorithm, ClusterSolution, InternalIndex};
        let unit: Vec<boe_corpus::SparseVector> = ctxs
            .iter()
            .map(boe_corpus::SparseVector::normalized)
            .collect();
        let two = Algorithm::Direct.cluster(&ctxs, 2, 1);
        let one = ClusterSolution::new(vec![0; ctxs.len()], 1);
        let ak2 = InternalIndex::Ak.score(&two, &unit);
        let ak1 = InternalIndex::Ak.score(&one, &unit);
        assert!(ak2 > ak1 + 0.1, "2-way {ak2} vs 1-way {ak1}");
    }
}
