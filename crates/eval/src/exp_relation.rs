//! Experiment E7 — the paper's future-work extension (§4): relation
//! typing from linking verbs.
//!
//! "A perspective of this work is to extract the type of relations …
//! performed with the linguistic patterns (e.g. the verbs used between
//! two terms)". We measure how accurately the verb-pattern extractor
//! recovers planted relations: term pairs are written about with verbs
//! drawn from one relation family, plus distractor sentences.

use crate::table::{f3, Table};
use boe_core::relation::{extract_relation, RelationType};
use boe_corpus::corpus::CorpusBuilder;
use boe_corpus::Corpus;
use boe_rng::StdRng;
use boe_textkit::Language;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct RelationExpConfig {
    /// Term pairs per relation type.
    pub pairs_per_type: usize,
    /// Evidence sentences per pair.
    pub sentences_per_pair: usize,
    /// Probability of an off-type distractor verb per extra sentence.
    pub distractor_prob: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for RelationExpConfig {
    fn default() -> Self {
        RelationExpConfig {
            pairs_per_type: 25,
            sentences_per_pair: 4,
            distractor_prob: 0.25,
            seed: 0x7E1A,
        }
    }
}

const CAUSAL_VERBS: &[&str] = &["causes", "caused", "induces", "induced"];
const TREATMENT_VERBS: &[&str] = &["treats", "treated", "heals", "cures"];
const TAXONOMIC_VERBS: &[&str] = &["is", "are", "remains"];
const ASSOCIATION_VERBS: &[&str] = &["involves", "affects", "suggests", "indicates"];

fn verbs_of(r: RelationType) -> &'static [&'static str] {
    match r {
        RelationType::Causal => CAUSAL_VERBS,
        RelationType::Treatment => TREATMENT_VERBS,
        RelationType::Taxonomic => TAXONOMIC_VERBS,
        RelationType::Association => ASSOCIATION_VERBS,
        RelationType::Unknown => &[],
    }
}

/// The planted relation types.
pub const TYPES: [RelationType; 4] = [
    RelationType::Causal,
    RelationType::Treatment,
    RelationType::Taxonomic,
    RelationType::Association,
];

/// The generated dataset: corpus + (term a, term b, gold type).
pub fn generate(config: &RelationExpConfig) -> (Corpus, Vec<(String, String, RelationType)>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = CorpusBuilder::new(Language::English);
    let mut pairs = Vec::new();
    for (ti, &rtype) in TYPES.iter().enumerate() {
        for p in 0..config.pairs_per_type {
            let a = format!("relterm{ti}x{p}a");
            let b = format!("relterm{ti}x{p}b");
            let gold_verbs = verbs_of(rtype);
            for s in 0..config.sentences_per_pair {
                // The first sentence always carries an on-type verb; later
                // sentences may use a distractor from another family.
                let verb = if s > 0 && rng.gen_bool(config.distractor_prob) {
                    let other = TYPES[(ti + 1 + rng.gen_range(0usize..3)) % 4];
                    verbs_of(other)[rng.gen_range(0..verbs_of(other).len())]
                } else {
                    gold_verbs[rng.gen_range(0..gold_verbs.len())]
                };
                builder.add_text(&format!("the {a} {verb} the {b} in tissue."));
            }
            pairs.push((a, b, rtype));
        }
    }
    (builder.build(), pairs)
}

/// Per-type accuracy plus overall.
#[derive(Debug, Clone)]
pub struct RelationResult {
    /// `(type, correct, total)` per planted type.
    pub per_type: Vec<(RelationType, usize, usize)>,
    /// Overall accuracy.
    pub accuracy: f64,
}

/// Run E7.
pub fn run(config: &RelationExpConfig) -> RelationResult {
    let (corpus, pairs) = generate(config);
    let occ = boe_corpus::occurrence::OccurrenceIndex::build(&corpus);
    let mut per_type: Vec<(RelationType, usize, usize)> =
        TYPES.iter().map(|&t| (t, 0, 0)).collect();
    let mut correct_total = 0usize;
    for (a, b, gold) in &pairs {
        let ta = corpus.phrase_ids(a).expect("interned");
        let tb = corpus.phrase_ids(b).expect("interned");
        let predicted = extract_relation(&corpus, &occ, &ta, &tb)
            .map(|ev| ev.relation)
            .unwrap_or(RelationType::Unknown);
        let slot = per_type
            .iter_mut()
            .find(|(t, _, _)| t == gold)
            .expect("gold type listed");
        slot.2 += 1;
        if predicted == *gold {
            slot.1 += 1;
            correct_total += 1;
        }
    }
    RelationResult {
        per_type,
        accuracy: correct_total as f64 / pairs.len() as f64,
    }
}

/// Render the per-type accuracy table.
pub fn render(result: &RelationResult) -> String {
    let mut t = Table::new(&["relation", "correct", "total", "accuracy"]);
    for (rtype, correct, total) in &result.per_type {
        t.row(vec![
            rtype.name().to_owned(),
            correct.to_string(),
            total.to_string(),
            f3(*correct as f64 / (*total).max(1) as f64),
        ]);
    }
    format!(
        "E7 (future work): relation typing from linking verbs\n{}overall accuracy: {}\n",
        t.render(),
        f3(result.accuracy)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typing_recovers_planted_relations() {
        let r = run(&RelationExpConfig::default());
        assert!(r.accuracy > 0.8, "accuracy {}", r.accuracy);
        for (t, correct, total) in &r.per_type {
            assert_eq!(*total, 25);
            assert!(
                *correct as f64 / *total as f64 > 0.6,
                "{}: {correct}/{total}",
                t.name()
            );
        }
    }

    #[test]
    fn distractors_hurt_but_do_not_destroy() {
        let clean = run(&RelationExpConfig {
            distractor_prob: 0.0,
            ..Default::default()
        });
        let noisy = run(&RelationExpConfig {
            distractor_prob: 0.45,
            ..Default::default()
        });
        assert!(clean.accuracy >= noisy.accuracy);
        assert!(clean.accuracy > 0.95, "clean accuracy {}", clean.accuracy);
    }

    #[test]
    fn render_lists_all_types() {
        let r = run(&RelationExpConfig {
            pairs_per_type: 4,
            ..Default::default()
        });
        let s = render(&r);
        for t in TYPES {
            assert!(s.contains(t.name()), "missing {}", t.name());
        }
    }
}
