//! Experiment E4 — §2(II): polysemy detection with 23 features.
//!
//! Builds a balanced labelled term set from a synthetic corpus (polysemic
//! terms genuinely occur in k ≥ 2 disjoint context families, monosemic in
//! one), extracts the 23 features, and reports stratified 10-fold CV
//! precision/recall/F-measure per classifier family — the paper reports
//! an overall F-measure of 98%. An ablation compares direct-only,
//! graph-only and full feature sets.

use crate::table::{f3, Table};
use boe_core::polysemy::detector::{FeatureContext, PolysemyModel};
use boe_corpus::corpus::CorpusBuilder;
use boe_corpus::synth::topic::{AbstractGenerator, ConceptProfile};
use boe_corpus::synth::vocabgen::LexiconPools;
use boe_corpus::Corpus;
use boe_ml::dataset::Dataset;
use boe_ml::eval::{cross_validate, Confusion};
use boe_rng::StdRng;
use boe_textkit::pos::PosTag;
use boe_textkit::Language;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct PolysemyExpConfig {
    /// Number of polysemic terms (and equally many monosemic).
    pub n_terms_per_class: usize,
    /// Context snippets per sense.
    pub snippets_per_sense: usize,
    /// CV folds.
    pub folds: usize,
    /// Classifier families to evaluate.
    pub models: Vec<PolysemyModel>,
    /// Seed.
    pub seed: u64,
}

impl Default for PolysemyExpConfig {
    fn default() -> Self {
        PolysemyExpConfig {
            n_terms_per_class: 60,
            snippets_per_sense: 20,
            folds: 10,
            models: PolysemyModel::ALL.to_vec(),
            seed: 0xF00D,
        }
    }
}

impl PolysemyExpConfig {
    /// A scaled-down configuration for debug builds.
    pub fn quick() -> Self {
        PolysemyExpConfig {
            n_terms_per_class: 20,
            snippets_per_sense: 10,
            folds: 5,
            models: vec![PolysemyModel::Forest, PolysemyModel::LogReg],
            seed: 0xF00D,
        }
    }
}

/// Which feature subset to use (ablation A-features).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSubset {
    /// Only the 11 direct features.
    DirectOnly,
    /// Only the 12 graph features.
    GraphOnly,
    /// All 23.
    All,
}

impl FeatureSubset {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureSubset::DirectOnly => "direct-11",
            FeatureSubset::GraphOnly => "graph-12",
            FeatureSubset::All => "all-23",
        }
    }

    fn select(self, full: &[f64]) -> Vec<f64> {
        match self {
            FeatureSubset::DirectOnly => full[..11].to_vec(),
            FeatureSubset::GraphOnly => full[11..].to_vec(),
            FeatureSubset::All => full.to_vec(),
        }
    }
}

/// The labelled term set: corpus + (surface, is_polysemic) pairs.
pub fn generate_term_set(config: &PolysemyExpConfig) -> (Corpus, Vec<(String, bool)>) {
    let lang = Language::English;
    let pools = LexiconPools::generate(lang);
    let generator = AbstractGenerator::new(lang);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = CorpusBuilder::new(lang);
    let mut terms = Vec::new();
    for i in 0..config.n_terms_per_class {
        // Polysemic term: two sense profiles sharing one surface.
        let poly_surface = format!("polyx{i}gram");
        for sense in 0..2 {
            let mut p = ConceptProfile::with_exclusive_pools(
                i * 3 + sense,
                i * 3 + sense,
                vec![(poly_surface.clone(), PosTag::Noun)],
                &pools,
                10,
                5,
            );
            p.mention = vec![(poly_surface.clone(), PosTag::Noun)];
            for _ in 0..config.snippets_per_sense {
                let n = rng.gen_range(1..=2);
                let mut sents = vec![generator.sentence(&mut rng, &p, Some(&p.mention))];
                for _ in 1..n {
                    sents.push(generator.sentence(&mut rng, &p, None));
                }
                builder.add_tokenized(sents);
            }
        }
        terms.push((poly_surface, true));
        // Monosemic term: one profile, twice the snippets (same total
        // frequency as the polysemic terms, so frequency alone cannot
        // separate the classes).
        let mono_surface = format!("monox{i}gram");
        let mut p = ConceptProfile::with_exclusive_pools(
            i * 3 + 2,
            i * 3 + 2,
            vec![(mono_surface.clone(), PosTag::Noun)],
            &pools,
            10,
            5,
        );
        p.mention = vec![(mono_surface.clone(), PosTag::Noun)];
        for _ in 0..2 * config.snippets_per_sense {
            let n = rng.gen_range(1..=2);
            let mut sents = vec![generator.sentence(&mut rng, &p, Some(&p.mention))];
            for _ in 1..n {
                sents.push(generator.sentence(&mut rng, &p, None));
            }
            builder.add_tokenized(sents);
        }
        terms.push((mono_surface, false));
    }
    (builder.build(), terms)
}

/// One model's cross-validated result.
#[derive(Debug, Clone)]
pub struct ModelResult {
    /// The classifier family.
    pub model: PolysemyModel,
    /// Feature subset used.
    pub subset: FeatureSubset,
    /// Pooled CV confusion matrix.
    pub confusion: Confusion,
}

/// Run the experiment for the given subset.
pub fn run_subset(config: &PolysemyExpConfig, subset: FeatureSubset) -> Vec<ModelResult> {
    let (corpus, terms) = generate_term_set(config);
    let features = FeatureContext::build(&corpus);
    let rows: Vec<Vec<f64>> = terms
        .iter()
        .map(|(t, _)| {
            let ids = corpus.phrase_ids(t).expect("term interned");
            subset.select(&features.features(&ids, t))
        })
        .collect();
    let labels: Vec<bool> = terms.iter().map(|(_, l)| *l).collect();
    let data = Dataset::new(rows, labels);
    let scaler = boe_ml::scale::StandardScaler::fit(&data);
    let scaled = scaler.transform(&data);
    config
        .models
        .iter()
        .map(|&model| {
            let confusion = match model {
                PolysemyModel::LogReg => cross_validate(
                    &scaled,
                    config.folds,
                    boe_ml::logreg::LogisticRegression::new,
                ),
                PolysemyModel::NaiveBayes => {
                    cross_validate(&scaled, config.folds, boe_ml::naive_bayes::GaussianNb::new)
                }
                PolysemyModel::Tree => {
                    cross_validate(&scaled, config.folds, boe_ml::tree::DecisionTree::new)
                }
                PolysemyModel::Forest => {
                    cross_validate(&scaled, config.folds, boe_ml::forest::RandomForest::new)
                }
                PolysemyModel::Knn => {
                    cross_validate(&scaled, config.folds, || boe_ml::knn::KNearest::new(5))
                }
                PolysemyModel::Svm => {
                    cross_validate(&scaled, config.folds, boe_ml::svm::LinearSvm::new)
                }
                PolysemyModel::Boost => {
                    cross_validate(&scaled, config.folds, boe_ml::boost::AdaBoost::new)
                }
            };
            ModelResult {
                model,
                subset,
                confusion,
            }
        })
        .collect()
}

/// Run with all 23 features (the paper's setting).
pub fn run(config: &PolysemyExpConfig) -> Vec<ModelResult> {
    run_subset(config, FeatureSubset::All)
}

/// Best F-measure across models.
pub fn best_f1(results: &[ModelResult]) -> f64 {
    results.iter().map(|r| r.confusion.f1()).fold(0.0, f64::max)
}

/// Render per-model P/R/F1.
pub fn render(results: &[ModelResult]) -> String {
    let mut t = Table::new(&["model", "features", "precision", "recall", "F-measure"]);
    for r in results {
        t.row(vec![
            r.model.name().to_owned(),
            r.subset.name().to_owned(),
            f3(r.confusion.precision()),
            f3(r.confusion.recall()),
            f3(r.confusion.f1()),
        ]);
    }
    format!(
        "Polysemy detection, stratified CV (paper: F-measure 98%)\n{}\nbest F-measure: {}\n",
        t.render(),
        f3(best_f1(results))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_reaches_high_f_measure() {
        let cfg = PolysemyExpConfig::quick();
        let results = run(&cfg);
        let best = best_f1(&results);
        assert!(best > 0.85, "best F1 {best}");
    }

    #[test]
    fn full_features_beat_or_match_single_families() {
        let cfg = PolysemyExpConfig {
            n_terms_per_class: 16,
            snippets_per_sense: 8,
            folds: 4,
            models: vec![PolysemyModel::Forest],
            seed: 5,
        };
        let all = best_f1(&run_subset(&cfg, FeatureSubset::All));
        let direct = best_f1(&run_subset(&cfg, FeatureSubset::DirectOnly));
        let graph = best_f1(&run_subset(&cfg, FeatureSubset::GraphOnly));
        assert!(all + 0.1 >= direct, "all {all} vs direct {direct}");
        assert!(all + 0.1 >= graph, "all {all} vs graph {graph}");
    }

    #[test]
    fn term_set_is_balanced_and_interned() {
        let cfg = PolysemyExpConfig::quick();
        let (corpus, terms) = generate_term_set(&cfg);
        let pos = terms.iter().filter(|(_, l)| *l).count();
        assert_eq!(pos * 2, terms.len());
        for (t, _) in &terms {
            assert!(corpus.phrase_ids(t).is_some(), "{t} missing");
        }
    }

    #[test]
    fn render_lists_models() {
        let cfg = PolysemyExpConfig::quick();
        let results = run(&cfg);
        let s = render(&results);
        assert!(s.contains("F-measure"));
        assert!(s.contains("forest"));
    }
}
