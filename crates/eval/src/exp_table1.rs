//! Experiment E1 — **Table 1**: polysemic-term statistics of UMLS and
//! MeSH for EN/FR/ES.
//!
//! The real releases are licensed; the generators are calibrated to the
//! paper's published counts and this experiment verifies that the
//! statistics machinery regenerates them exactly (and that the shape —
//! sharp decay in k, EN ≫ ES ≫ FR, ≈1/200 polysemy ratio in English
//! UMLS — holds).

use crate::table::Table;
use boe_ontology::polysemy::PolysemyStats;
use boe_ontology::synth::umls::{PolysemyProfile, UmlsGenerator};
use boe_textkit::Language;

/// One source's row block: counts per k for each language.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Block {
    /// "UMLS" or "MeSH".
    pub source: &'static str,
    /// Rows `[k2, k3, k4, k5+]` per language (EN, FR, ES).
    pub rows: [[usize; 4]; 3],
    /// English polysemic ratio (the paper's "1 in 200" remark).
    pub en_ratio: f64,
}

/// Run E1: generate UMLS-like (scaled by `umls_divisor`) and MeSH-like
/// terminologies per language, compute [`PolysemyStats`], return both
/// blocks.
pub fn run(umls_divisor: usize) -> (Table1Block, Table1Block) {
    let mut umls_rows = [[0usize; 4]; 3];
    let mut en_ratio = 0.0;
    for (i, lang) in Language::ALL.iter().enumerate() {
        let profile = PolysemyProfile::umls(*lang, umls_divisor);
        let onto = UmlsGenerator::new(*lang, profile).generate();
        let stats = PolysemyStats::compute(&onto);
        umls_rows[i] = stats.table1_row();
        if *lang == Language::English {
            en_ratio = stats.polysemic_ratio();
        }
    }
    let mut mesh_rows = [[0usize; 4]; 3];
    for (i, lang) in Language::ALL.iter().enumerate() {
        let profile = PolysemyProfile::mesh(*lang);
        let onto = UmlsGenerator::new(*lang, profile).generate();
        let stats = PolysemyStats::compute(&onto);
        mesh_rows[i] = stats.table1_row();
    }
    (
        Table1Block {
            source: "UMLS",
            rows: umls_rows,
            en_ratio,
        },
        Table1Block {
            source: "MeSH",
            rows: mesh_rows,
            en_ratio: 0.0,
        },
    )
}

/// Render both blocks in the paper's layout.
pub fn render(umls: &Table1Block, mesh: &Table1Block) -> String {
    let mut t = Table::new(&[
        "# senses k",
        "UMLS EN",
        "UMLS FR",
        "UMLS ES",
        "MeSH EN",
        "MeSH FR",
        "MeSH ES",
    ]);
    let k_names = ["2", "3", "4", "5+"];
    for (ki, kname) in k_names.iter().enumerate() {
        t.row(vec![
            (*kname).to_owned(),
            umls.rows[0][ki].to_string(),
            umls.rows[1][ki].to_string(),
            umls.rows[2][ki].to_string(),
            mesh.rows[0][ki].to_string(),
            mesh.rows[1][ki].to_string(),
            mesh.rows[2][ki].to_string(),
        ]);
    }
    format!(
        "Table 1: polysemic terms in UMLS-like and MeSH-like terminologies\n{}\nEnglish UMLS polysemic ratio: 1 in {:.0}\n",
        t.render(),
        1.0 / umls.en_ratio.max(1e-12)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_counts_match_paper_targets() {
        let (umls, mesh) = run(100);
        // Paper counts / 100 (integer division).
        assert_eq!(umls.rows[0], [542, 77, 18, 16], "UMLS EN /100");
        assert_eq!(umls.rows[1], [12, 0, 0, 0], "UMLS FR /100");
        assert_eq!(umls.rows[2], [109, 4, 0, 0], "UMLS ES /100");
        assert_eq!(mesh.rows[0], [178, 1, 0, 0], "MeSH EN");
        assert_eq!(mesh.rows[1], [11, 0, 0, 0], "MeSH FR");
        assert_eq!(mesh.rows[2], [0, 0, 0, 0], "MeSH ES");
    }

    #[test]
    fn shape_decays_in_k_and_en_dominates() {
        let (umls, _) = run(100);
        for rows in &umls.rows {
            assert!(rows[0] >= rows[1] && rows[1] >= rows[2]);
        }
        assert!(umls.rows[0][0] > umls.rows[2][0]);
        assert!(umls.rows[2][0] > umls.rows[1][0]);
    }

    #[test]
    fn english_ratio_is_about_one_in_two_hundred() {
        let (umls, _) = run(100);
        let inv = 1.0 / umls.en_ratio;
        assert!((100.0..=400.0).contains(&inv), "1 in {inv:.0}");
    }

    #[test]
    fn render_contains_counts() {
        let (umls, mesh) = run(200);
        let s = render(&umls, &mesh);
        assert!(s.contains("Table 1"));
        assert!(s.contains("5+"));
    }
}
