//! Experiment E3 — §3(i): prediction of the sense number.
//!
//! The paper clusters each MSH-WSD entity's contexts for k ∈ \[2,5\] with
//! five CLUTO algorithms under two corpus representations, scores each k
//! with the Table-2 indexes, and reports accuracy of the predicted k
//! (best: 93.1% with max(f_k)). This experiment regenerates the full
//! accuracy matrix on the MSH-WSD-like dataset, plus the majority-k=2
//! baseline the skewed sense distribution implies.

use crate::table::{pct, Table};
use boe_cluster::{Algorithm, ClusterSolution, InternalIndex};
use boe_core::senses::{build_representation, Representation};
use boe_corpus::context::{ContextScope, StemMap};
use boe_corpus::occurrence::OccurrenceIndex;
use boe_corpus::synth::mshwsd::{MshWsdConfig, MshWsdDataset};
use boe_corpus::SparseVector;
use boe_textkit::Language;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct SenseNumberConfig {
    /// MSH-WSD-like generator parameters.
    pub dataset: MshWsdConfig,
    /// Cap on contexts per entity (keeps agglo/graph tractable; MSH WSD
    /// itself has ~100 per sense).
    pub max_contexts: usize,
    /// Algorithms to sweep.
    pub algorithms: Vec<Algorithm>,
    /// Representations to sweep.
    pub representations: Vec<Representation>,
    /// Indexes to evaluate.
    pub indexes: Vec<InternalIndex>,
    /// Clustering seed.
    pub seed: u64,
}

impl Default for SenseNumberConfig {
    fn default() -> Self {
        SenseNumberConfig {
            dataset: MshWsdConfig::default(),
            max_contexts: 120,
            algorithms: Algorithm::ALL.to_vec(),
            representations: Representation::ALL.to_vec(),
            indexes: InternalIndex::ALL.to_vec(),
            seed: 7,
        }
    }
}

impl SenseNumberConfig {
    /// A scaled-down configuration that finishes quickly in debug builds.
    pub fn quick() -> Self {
        SenseNumberConfig {
            dataset: MshWsdConfig {
                n_entities: 24,
                snippets_per_sense: 25,
                ..Default::default()
            },
            max_contexts: 60,
            algorithms: vec![Algorithm::Direct, Algorithm::Rbr],
            representations: Representation::ALL.to_vec(),
            indexes: InternalIndex::ALL.to_vec(),
            seed: 7,
        }
    }
}

/// One cell of the accuracy matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCell {
    /// Clustering algorithm.
    pub algorithm: Algorithm,
    /// Corpus representation.
    pub representation: Representation,
    /// Internal index.
    pub index: InternalIndex,
    /// Fraction of entities whose k was predicted exactly.
    pub accuracy: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct SenseNumberResult {
    /// Every (algorithm × representation × index) cell.
    pub cells: Vec<AccuracyCell>,
    /// Accuracy of always predicting k = 2 (the skew baseline).
    pub majority_baseline: f64,
    /// Number of entities evaluated.
    pub n_entities: usize,
}

impl SenseNumberResult {
    /// The best cell.
    pub fn best(&self) -> &AccuracyCell {
        self.cells
            .iter()
            .max_by(|a, b| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty matrix")
    }

    /// Best accuracy for one index across algorithms/representations.
    pub fn best_for_index(&self, index: InternalIndex) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.index == index)
            .map(|c| c.accuracy)
            .fold(0.0, f64::max)
    }
}

/// Run the experiment.
pub fn run(config: &SenseNumberConfig) -> SenseNumberResult {
    let data = MshWsdDataset::generate(Language::English, &config.dataset);
    let stems = StemMap::build(&data.corpus);
    let occ = OccurrenceIndex::build(&data.corpus);
    let n = data.entities.len();
    let majority = data.entities.iter().filter(|e| e.k == 2).count() as f64 / n as f64;

    // Per entity × representation: context vectors (built once).
    let mut correct: std::collections::HashMap<(usize, usize, usize), usize> =
        std::collections::HashMap::new();
    for entity in &data.entities {
        let surface_id = data
            .corpus
            .vocab()
            .get(entity.surface_text())
            .expect("entity surface interned");
        for (ri, &repr) in config.representations.iter().enumerate() {
            let all = build_representation(
                &data.corpus,
                &occ,
                &[surface_id],
                repr,
                &stems,
                ContextScope::Document,
            );
            // Subsample with an even stride: contexts arrive grouped by
            // sense, so plain truncation would drop whole senses.
            let ctxs: Vec<SparseVector> = if all.len() > config.max_contexts {
                let stride = all.len() as f64 / config.max_contexts as f64;
                (0..config.max_contexts)
                    .map(|i| all[(i as f64 * stride) as usize].clone())
                    .collect()
            } else {
                all
            };
            if ctxs.len() < 2 {
                continue;
            }
            let unit: Vec<SparseVector> = ctxs.iter().map(SparseVector::normalized).collect();
            for (ai, &alg) in config.algorithms.iter().enumerate() {
                // Cluster once per k; score every index on the same
                // solutions.
                let hi = 5usize.min(ctxs.len());
                let solutions: Vec<(usize, ClusterSolution)> = (2..=hi)
                    .map(|k| (k, alg.cluster(&ctxs, k, config.seed ^ k as u64)))
                    .collect();
                for (ii, &index) in config.indexes.iter().enumerate() {
                    let mut best_k = 2;
                    let mut best_s = if index.maximize() {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    };
                    for (k, sol) in &solutions {
                        let s = index.score(sol, &unit);
                        let better = if index.maximize() {
                            s > best_s
                        } else {
                            s < best_s
                        };
                        if better {
                            best_s = s;
                            best_k = *k;
                        }
                    }
                    if best_k == entity.k {
                        *correct.entry((ai, ri, ii)).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let mut cells = Vec::new();
    for (ai, &alg) in config.algorithms.iter().enumerate() {
        for (ri, &repr) in config.representations.iter().enumerate() {
            for (ii, &index) in config.indexes.iter().enumerate() {
                let c = correct.get(&(ai, ri, ii)).copied().unwrap_or(0);
                cells.push(AccuracyCell {
                    algorithm: alg,
                    representation: repr,
                    index,
                    accuracy: c as f64 / n as f64,
                });
            }
        }
    }
    SenseNumberResult {
        cells,
        majority_baseline: majority,
        n_entities: n,
    }
}

/// External clustering quality at the *gold* k: how well do the produced
/// clusters match the gold senses? Reports mean purity / NMI / adjusted
/// Rand over all entities for one algorithm × representation (sanity
/// check of the clustering substrate; uses `boe_cluster::external`).
pub fn clustering_quality(
    config: &SenseNumberConfig,
    algorithm: Algorithm,
    representation: Representation,
) -> (f64, f64, f64) {
    let data = MshWsdDataset::generate(Language::English, &config.dataset);
    let stems = StemMap::build(&data.corpus);
    let occ = OccurrenceIndex::build(&data.corpus);
    let mut sums = (0.0, 0.0, 0.0);
    let mut n = 0usize;
    for entity in &data.entities {
        let surface_id = data
            .corpus
            .vocab()
            .get(entity.surface_text())
            .expect("entity surface interned");
        let all = build_representation(
            &data.corpus,
            &occ,
            &[surface_id],
            representation,
            &stems,
            ContextScope::Document,
        );
        // Contexts arrive in snippet order, so gold sense labels align
        // index-wise; subsample both with the same even stride.
        assert_eq!(all.len(), entity.snippets.len(), "one context per snippet");
        let gold_all: Vec<usize> = entity.snippets.iter().map(|&(_, s)| s).collect();
        let (ctxs, gold): (Vec<SparseVector>, Vec<usize>) = if all.len() > config.max_contexts {
            let stride = all.len() as f64 / config.max_contexts as f64;
            (0..config.max_contexts)
                .map(|i| {
                    let j = (i as f64 * stride) as usize;
                    (all[j].clone(), gold_all[j])
                })
                .unzip()
        } else {
            (all, gold_all)
        };
        if ctxs.len() < entity.k {
            continue;
        }
        let sol = algorithm.cluster(&ctxs, entity.k, config.seed);
        sums.0 += boe_cluster::external::purity(&sol, &gold);
        sums.1 += boe_cluster::external::nmi(&sol, &gold);
        sums.2 += boe_cluster::external::adjusted_rand(&sol, &gold);
        n += 1;
    }
    let nf = n.max(1) as f64;
    (sums.0 / nf, sums.1 / nf, sums.2 / nf)
}

/// Render the accuracy matrix (rows: algorithm × representation, columns:
/// indexes).
pub fn render(config: &SenseNumberConfig, result: &SenseNumberResult) -> String {
    let mut header: Vec<String> = vec!["algorithm".into(), "repr".into()];
    header.extend(config.indexes.iter().map(|i| i.name().to_owned()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for &alg in &config.algorithms {
        for &repr in &config.representations {
            let mut row = vec![alg.name().to_owned(), repr.name().to_owned()];
            for &index in &config.indexes {
                let cell = result
                    .cells
                    .iter()
                    .find(|c| c.algorithm == alg && c.representation == repr && c.index == index)
                    .expect("cell exists");
                row.push(pct(cell.accuracy));
            }
            t.row(row);
        }
    }
    let best = result.best();
    format!(
        "Sense-number prediction accuracy over {} entities (paper: 93.1% with max(fk))\n{}\nmajority (always k=2) baseline: {}\nbest: {} with {} / {} / {}\n",
        result.n_entities,
        t.render(),
        pct(result.majority_baseline),
        pct(best.accuracy),
        best.index.name(),
        best.algorithm.name(),
        best.representation.name(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (SenseNumberConfig, SenseNumberResult) {
        let cfg = SenseNumberConfig {
            dataset: MshWsdConfig {
                n_entities: 10,
                snippets_per_sense: 12,
                ..Default::default()
            },
            max_contexts: 40,
            algorithms: vec![Algorithm::Direct],
            representations: vec![Representation::BagOfWords],
            indexes: vec![InternalIndex::Ek, InternalIndex::Fk],
            seed: 3,
        };
        let res = run(&cfg);
        (cfg, res)
    }

    #[test]
    fn matrix_is_complete_and_bounded() {
        let (cfg, res) = tiny();
        assert_eq!(
            res.cells.len(),
            cfg.algorithms.len() * cfg.representations.len() * cfg.indexes.len()
        );
        for c in &res.cells {
            assert!((0.0..=1.0).contains(&c.accuracy));
        }
        assert_eq!(res.n_entities, 10);
    }

    #[test]
    fn ek_beats_majority_baseline() {
        let (_, res) = tiny();
        let ek = res.best_for_index(InternalIndex::Ek);
        assert!(
            ek >= res.majority_baseline,
            "ek {} < baseline {}",
            ek,
            res.majority_baseline
        );
        assert!(ek > 0.7, "ek accuracy {ek}");
    }

    #[test]
    fn clustering_quality_is_high_at_gold_k() {
        let cfg = SenseNumberConfig {
            dataset: MshWsdConfig {
                n_entities: 8,
                snippets_per_sense: 15,
                ..Default::default()
            },
            max_contexts: 40,
            algorithms: vec![Algorithm::Direct],
            representations: vec![Representation::BagOfWords],
            indexes: vec![InternalIndex::Ek],
            seed: 3,
        };
        let (purity, nmi, ari) =
            clustering_quality(&cfg, Algorithm::Direct, Representation::BagOfWords);
        assert!(purity > 0.85, "purity {purity}");
        assert!(nmi > 0.7, "nmi {nmi}");
        assert!(ari > 0.7, "ari {ari}");
    }

    #[test]
    fn render_mentions_best_cell() {
        let (cfg, res) = tiny();
        let s = render(&cfg, &res);
        assert!(s.contains("majority"));
        assert!(s.contains("direct"));
        assert!(s.contains("max(ek)"));
    }
}
