//! Experiment E5 — **Table 3**: the case-study table.
//!
//! The paper walks through re-placing "corneal injuries": its top-10
//! propositions mix the gold synonyms/fathers with plausible corpus terms
//! ("chemical burns", "wound"), 5 of 10 being correct. This experiment
//! reproduces the protocol for one held-out term of the synthetic world
//! and renders the same two-column table with correct rows marked.

use crate::table::{f3, Table};
use crate::world::World;
#[cfg(test)]
use crate::world::WorldConfig;
use boe_core::linkage::{LinkerConfig, Proposition, SemanticLinker};
use boe_core::termex::candidates::CandidateOptions;
use boe_core::termex::{TermExtractor, TermMeasure};
use boe_textkit::normalize::match_key;

/// The case-study result.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The candidate term examined.
    pub candidate: String,
    /// Its gold position terms.
    pub gold_terms: Vec<String>,
    /// The top-10 propositions with correctness flags.
    pub propositions: Vec<(Proposition, bool)>,
}

impl CaseStudy {
    /// Number of correct propositions in the list.
    pub fn correct_count(&self) -> usize {
        self.propositions.iter().filter(|(_, ok)| *ok).count()
    }
}

/// Run the case study on the `which`-th held-out term of a world.
pub fn run(world: &World, which: usize, top_candidates: usize) -> CaseStudy {
    let held = &world.holdout[which % world.holdout.len()];
    // Step-I candidates become proposable corpus terms (Table 3 proposes
    // non-MeSH terms too).
    let extractor = TermExtractor::new(&world.corpus, CandidateOptions::default());
    let candidates: Vec<String> = extractor
        .top(&world.corpus, TermMeasure::LidfValue, top_candidates)
        .into_iter()
        .map(|t| t.surface)
        .collect();
    let linker = SemanticLinker::with_candidates(
        &world.corpus,
        &world.reduced_ontology,
        LinkerConfig::default(),
        &candidates,
    );
    let props = linker.propose(&held.surface);
    let propositions = props
        .into_iter()
        .map(|p| {
            let ok = held.gold_terms.contains(&match_key(&p.term));
            (p, ok)
        })
        .collect();
    CaseStudy {
        candidate: held.surface.clone(),
        gold_terms: held.gold_terms.clone(),
        propositions,
    }
}

/// Render in Table-3 style.
pub fn render(case: &CaseStudy) -> String {
    let mut t = Table::new(&["No", "Where", "Cosine", "Correct"]);
    for (i, (p, ok)) in case.propositions.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            p.term.clone(),
            f3(p.cosine),
            if *ok { "yes".into() } else { String::new() },
        ]);
    }
    format!(
        "Table 3: propositions about where to add the term {:?} ({} of {} correct)\n{}",
        case.candidate,
        case.correct_count(),
        case.propositions.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(&WorldConfig {
            n_concepts: 80,
            n_holdout: 6,
            abstracts_per_concept: 5,
            seed: 21,
            ..Default::default()
        })
    }

    #[test]
    fn case_study_finds_correct_positions() {
        let w = world();
        // At least one of the held-out terms should get ≥1 correct
        // proposition in its top-10 (the paper's term got 5/10).
        let mut best = 0;
        for i in 0..w.holdout.len() {
            let case = run(&w, i, 150);
            best = best.max(case.correct_count());
        }
        assert!(best >= 1, "no correct proposition for any held-out term");
    }

    #[test]
    fn propositions_are_ranked_and_capped() {
        let w = world();
        let case = run(&w, 0, 150);
        assert!(case.propositions.len() <= 10);
        let cosines: Vec<f64> = case.propositions.iter().map(|(p, _)| p.cosine).collect();
        assert!(cosines.windows(2).all(|x| x[0] >= x[1]));
    }

    #[test]
    fn render_marks_correct_rows() {
        let w = world();
        let case = run(&w, 0, 150);
        let s = render(&case);
        assert!(s.contains("Table 3"));
        assert!(s.contains(&case.candidate));
    }
}
