//! Regenerate every table of the paper (scaled configurations; the
//! Criterion benches in `boe-bench` run the full-scale versions).
//!
//! ```text
//! cargo run --release -p boe-eval --bin run_experiments
//! ```

use boe_eval::world::{World, WorldConfig};
use boe_eval::{
    exp_linkage_case, exp_linkage_precision, exp_polysemy, exp_relation, exp_sense_number,
    exp_table1, exp_table2,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    println!("=== E1: Table 1 — polysemy statistics =========================\n");
    let divisor = if full { 10 } else { 100 };
    let (umls, mesh) = exp_table1::run(divisor);
    println!("{}", exp_table1::render(&umls, &mesh));

    println!("=== E2: Table 2 — internal index semantics ====================\n");
    let t2 = exp_table2::run(&exp_table2::Table2Config::default());
    println!("{}", exp_table2::render(&t2));

    println!("=== E3: sense-number prediction (paper: 93.1%) ================\n");
    let sn_cfg = if full {
        exp_sense_number::SenseNumberConfig::default()
    } else {
        exp_sense_number::SenseNumberConfig::quick()
    };
    let sn = exp_sense_number::run(&sn_cfg);
    println!("{}", exp_sense_number::render(&sn_cfg, &sn));
    let (purity, nmi, ari) = exp_sense_number::clustering_quality(
        &sn_cfg,
        boe_cluster::Algorithm::Rbr,
        boe_core::senses::Representation::BagOfWords,
    );
    println!(
        "clustering quality at gold k (rbr, bow): purity {purity:.3}  NMI {nmi:.3}  ARI {ari:.3}\n"
    );

    println!("=== E4: polysemy detection (paper: F-measure 98%) =============\n");
    let pd_cfg = if full {
        exp_polysemy::PolysemyExpConfig::default()
    } else {
        exp_polysemy::PolysemyExpConfig::quick()
    };
    let pd = exp_polysemy::run(&pd_cfg);
    println!("{}", exp_polysemy::render(&pd));

    println!("=== E5/E6: semantic linkage ===================================\n");
    let world_cfg = if full {
        WorldConfig::default()
    } else {
        WorldConfig {
            n_concepts: 120,
            n_holdout: 20,
            abstracts_per_concept: 5,
            ..Default::default()
        }
    };
    let world = World::generate(&world_cfg);
    let case = exp_linkage_case::run(&world, 0, 200);
    println!("{}", exp_linkage_case::render(&case));
    let precision = exp_linkage_precision::run(&world, 200, true);
    println!("{}", exp_linkage_precision::render(&precision));
    let no_hier = exp_linkage_precision::run(&world, 200, false);
    println!(
        "ablation — without hierarchy expansion: top-10 precision {:.3} (with: {:.3})\n",
        no_hier.at[3], precision.at[3]
    );

    println!("=== E7: relation typing (future work, §4) =====================\n");
    let rel = exp_relation::run(&exp_relation::RelationExpConfig::default());
    println!("{}", exp_relation::render(&rel));
}
