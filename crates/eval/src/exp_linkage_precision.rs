//! Experiment E6 — **Table 4**: linkage precision at top 1/2/5/10.
//!
//! For each of the held-out terms, ask the linker for propositions and
//! check whether at least one of the top-N is a gold position (synonym,
//! father or son of the term's true concept). The paper reports 0.333 /
//! 0.400 / 0.500 / 0.583 for N = 1, 2, 5, 10 over 60 terms; the shape to
//! reproduce is the monotone increase with a meaningful top-1. The
//! ablation sweeps the hierarchy expansion off to quantify its
//! contribution.

use crate::table::{f3, Table};
use crate::world::World;
use boe_core::linkage::{LinkerConfig, SemanticLinker};
use boe_core::termex::candidates::CandidateOptions;
use boe_core::termex::{TermExtractor, TermMeasure};
use boe_textkit::normalize::match_key;

/// The Table-4 result.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionAtN {
    /// Precision at top 1, 2, 5, 10.
    pub at: [f64; 4],
    /// Terms evaluated.
    pub n_terms: usize,
    /// Terms for which the linker produced no proposition at all.
    pub no_proposals: usize,
}

/// The N cut-offs of Table 4.
pub const CUTOFFS: [usize; 4] = [1, 2, 5, 10];

/// Run E6 over the world's hold-out set.
pub fn run(world: &World, top_candidates: usize, expand_hierarchy: bool) -> PrecisionAtN {
    let extractor = TermExtractor::new(&world.corpus, CandidateOptions::default());
    let candidates: Vec<String> = extractor
        .top(&world.corpus, TermMeasure::LidfValue, top_candidates)
        .into_iter()
        .map(|t| t.surface)
        .collect();
    let linker = SemanticLinker::with_candidates(
        &world.corpus,
        &world.reduced_ontology,
        LinkerConfig {
            expand_hierarchy,
            ..Default::default()
        },
        &candidates,
    );
    let mut hits = [0usize; 4];
    let mut no_proposals = 0usize;
    for held in &world.holdout {
        let props = linker.propose(&held.surface);
        if props.is_empty() {
            no_proposals += 1;
            continue;
        }
        for (ci, &cut) in CUTOFFS.iter().enumerate() {
            let hit = props
                .iter()
                .take(cut)
                .any(|p| held.gold_terms.contains(&match_key(&p.term)));
            if hit {
                hits[ci] += 1;
            }
        }
    }
    let n = world.holdout.len();
    PrecisionAtN {
        at: hits.map(|h| h as f64 / n as f64),
        n_terms: n,
        no_proposals,
    }
}

/// Render in Table-4 style, with the paper's row for comparison.
pub fn render(result: &PrecisionAtN) -> String {
    let mut t = Table::new(&["", "Top 1", "Top 2", "Top 5", "Top 10"]);
    t.row(vec![
        format!("measured (n={})", result.n_terms),
        f3(result.at[0]),
        f3(result.at[1]),
        f3(result.at[2]),
        f3(result.at[3]),
    ]);
    t.row(vec![
        "paper (n=60)".into(),
        "0.333".into(),
        "0.400".into(),
        "0.500".into(),
        "0.583".into(),
    ]);
    format!(
        "Table 4: precision of terms with at least 1 correct proposition\n{}{} terms had no proposition at all\n",
        t.render(),
        result.no_proposals
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig {
            n_concepts: 80,
            n_holdout: 10,
            abstracts_per_concept: 5,
            seed: 33,
            ..Default::default()
        })
    }

    #[test]
    fn precision_is_monotone_in_n() {
        let w = world();
        let r = run(&w, 150, true);
        assert!(r.at[0] <= r.at[1] + 1e-12);
        assert!(r.at[1] <= r.at[2] + 1e-12);
        assert!(r.at[2] <= r.at[3] + 1e-12);
        assert_eq!(r.n_terms, 10);
    }

    #[test]
    fn top10_precision_is_meaningful() {
        let w = world();
        let r = run(&w, 150, true);
        assert!(
            r.at[3] >= 0.3,
            "top-10 precision {} below paper-shape floor",
            r.at[3]
        );
    }

    #[test]
    fn hierarchy_expansion_does_not_hurt() {
        let w = world();
        let with = run(&w, 150, true);
        let without = run(&w, 150, false);
        assert!(
            with.at[3] + 1e-12 >= without.at[3],
            "expansion hurt: {} vs {}",
            with.at[3],
            without.at[3]
        );
    }

    #[test]
    fn render_includes_paper_row() {
        let w = world();
        let r = run(&w, 150, true);
        let s = render(&r);
        assert!(s.contains("0.583"));
        assert!(s.contains("Table 4"));
    }
}
