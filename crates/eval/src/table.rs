//! Minimal text-table rendering for experiment output.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimals (the paper's precision style).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["k", "count"]);
        t.row(vec!["2".into(), "54257".into()]);
        t.row(vec!["3".into(), "7770".into()]);
        let r = t.render();
        assert!(r.contains("k"));
        assert!(r.contains("54257"));
        assert_eq!(r.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.3333), "0.333");
        assert_eq!(pct(0.931), "93.1%");
    }
}
