//! # boe-eval
//!
//! Experiment harness regenerating every table of the EDBT-2016 paper
//! (see DESIGN.md §4 for the experiment index):
//!
//! * [`exp_table1`] — **Table 1**: polysemic-term statistics of
//!   UMLS/MeSH-like terminologies for EN/FR/ES;
//! * [`exp_sense_number`] — **§3(i)**: sense-number prediction accuracy
//!   matrix (5 algorithms × 2 representations × indexes; paper's best:
//!   93.1% with max(f_k));
//! * [`exp_polysemy`] — **§2(II)**: polysemy-detection F-measure with the
//!   23 features (paper: 98%);
//! * [`exp_linkage_case`] — **Table 3**: top-10 propositions for one
//!   held-out term (the paper's "corneal injuries" case study);
//! * [`exp_linkage_precision`] — **Table 4**: linkage precision at top
//!   1/2/5/10 over held-out terms (paper: 0.333/0.400/0.500/0.583).
//!
//! [`world`] builds the aligned synthetic world (ontology + corpus) the
//! linkage experiments run on; [`table`] renders paper-style tables.
//! Everything is seeded; `cargo run -p boe-eval --bin run_experiments`
//! regenerates every number in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_linkage_case;
pub mod exp_linkage_precision;
pub mod exp_polysemy;
pub mod exp_relation;
pub mod exp_sense_number;
pub mod exp_table1;
pub mod exp_table2;
pub mod table;
pub mod world;
