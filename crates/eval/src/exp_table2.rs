//! Experiment E2 — **Table 2**: the five new internal indexes.
//!
//! Table 2 is definitional, so the experiment validates *semantics* on a
//! controlled fixture: g planted orthogonal sense blobs, clustered for
//! every k ∈ \[2,5\], each solution scored by every index. The printed
//! score curves make each index's argmax visible — including the
//! structural k = 2 bias of the literal `f_k` that EXPERIMENTS.md
//! discusses.

use crate::table::{f3, Table};
use boe_cluster::{Algorithm, InternalIndex};
use boe_corpus::SparseVector;
use boe_rng::StdRng;

/// Fixture parameters.
#[derive(Debug, Clone, Copy)]
pub struct Table2Config {
    /// Number of planted senses (the gold k).
    pub gold_k: usize,
    /// Contexts per sense.
    pub per_sense: usize,
    /// Dimensions per sense vocabulary.
    pub dims_per_sense: u32,
    /// Active dimensions per context.
    pub active_dims: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            gold_k: 3,
            per_sense: 40,
            dims_per_sense: 30,
            active_dims: 8,
            seed: 0x7AB1E2,
        }
    }
}

/// Score curves: for each index, the score at every k in \[2,5\] plus the
/// argmax.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// `(index, [score at k=2..=5], chosen k)`.
    pub curves: Vec<(InternalIndex, [f64; 4], usize)>,
    /// The planted k.
    pub gold_k: usize,
}

/// Generate the fixture and sweep.
pub fn run(config: &Table2Config) -> Table2Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut vs = Vec::new();
    for sense in 0..config.gold_k as u32 {
        let base = sense * config.dims_per_sense;
        for _ in 0..config.per_sense {
            let pairs: Vec<(u32, f64)> = (0..config.active_dims)
                .map(|_| (base + rng.gen_range(0..config.dims_per_sense), 1.0))
                .collect();
            vs.push(SparseVector::from_pairs(pairs));
        }
    }
    let unit: Vec<SparseVector> = vs.iter().map(SparseVector::normalized).collect();
    let solutions: Vec<_> = (2..=5)
        .map(|k| Algorithm::Rbr.cluster(&vs, k, config.seed ^ k as u64))
        .collect();
    let curves = InternalIndex::ALL
        .iter()
        .map(|&index| {
            let mut scores = [0.0; 4];
            for (i, sol) in solutions.iter().enumerate() {
                scores[i] = index.score(sol, &unit);
            }
            let chosen = if index.maximize() {
                (0..4).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite"))
            } else {
                (0..4).min_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite"))
            }
            .expect("nonempty")
                + 2;
            (index, scores, chosen)
        })
        .collect();
    Table2Result {
        curves,
        gold_k: config.gold_k,
    }
}

/// Render the score curves.
pub fn render(result: &Table2Result) -> String {
    let mut t = Table::new(&["index", "k=2", "k=3", "k=4", "k=5", "argbest", "gold"]);
    for (index, scores, chosen) in &result.curves {
        t.row(vec![
            index.name().to_owned(),
            f3(scores[0]),
            f3(scores[1]),
            f3(scores[2]),
            f3(scores[3]),
            chosen.to_string(),
            if *chosen == result.gold_k {
                "✓".into()
            } else {
                String::new()
            },
        ]);
    }
    format!(
        "Table 2 semantics: index score curves on a {}-sense fixture\n{}",
        result.gold_k,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ek_and_baselines_recover_planted_k() {
        let r = run(&Table2Config::default());
        let chosen = |idx: InternalIndex| {
            r.curves
                .iter()
                .find(|(i, _, _)| *i == idx)
                .map(|(_, _, c)| *c)
                .expect("present")
        };
        assert_eq!(chosen(InternalIndex::Ek), 3);
        assert_eq!(chosen(InternalIndex::Silhouette), 3);
        assert_eq!(chosen(InternalIndex::CalinskiHarabasz), 3);
    }

    #[test]
    fn fk_shows_its_k2_bias_on_balanced_senses() {
        let r = run(&Table2Config::default());
        let fk = r
            .curves
            .iter()
            .find(|(i, _, _)| *i == InternalIndex::Fk)
            .expect("present");
        assert_eq!(fk.2, 2, "literal f_k should pick k = 2 here");
    }

    #[test]
    fn curves_are_finite_everywhere() {
        let r = run(&Table2Config {
            gold_k: 4,
            per_sense: 20,
            ..Default::default()
        });
        for (index, scores, chosen) in &r.curves {
            assert!((2..=5).contains(chosen), "{index}");
            assert!(scores.iter().all(|s| s.is_finite()), "{index}");
        }
    }

    #[test]
    fn render_marks_gold_hits() {
        let r = run(&Table2Config::default());
        let s = render(&r);
        assert!(s.contains("max(ek)"));
        assert!(s.contains("✓"));
    }
}
