//! # boe-chaos
//!
//! Deterministic fault injection for the enrichment workflow.
//!
//! Production code is instrumented with **named injection sites** —
//! cheap calls to [`inject`] / [`corruption`] at every pipeline stage
//! boundary and inside the `boe-par` worker loop. When no plan is
//! installed a site costs one relaxed atomic load; when a plan targets
//! the site it fires one of three fault modes:
//!
//! * [`FaultMode::Panic`] — panic with a recognizable message, so the
//!   `catch_unwind` guards and degradation paths can be exercised;
//! * [`FaultMode::Stall`] — sleep for a configured duration, so
//!   wall-clock and per-stage deadlines demonstrably trip;
//! * [`FaultMode::Corrupt`] — report a deterministic corruption verdict
//!   (NaN / empty) for intermediate vectors, decided purely from the
//!   plan seed, the site name and a caller-supplied key — never from
//!   call order — so outcomes are identical at any thread count.
//!
//! Plans come from the `BOE_CHAOS` environment variable
//! (`site=<name>,mode=<panic|stall|corrupt>[,stall_ms=N][,seed=N]`,
//! or `off`) or programmatically via [`install`], which always wins
//! over the environment. Benchmarks call [`is_enabled`] and refuse to
//! record numbers while injection is live.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// The catalogue of named injection sites the workspace instruments.
///
/// Every constant here is hit at least once per pipeline run on the
/// corresponding path; the chaos matrix test sweeps all of them.
pub mod sites {
    /// Before upfront input validation.
    pub const VALIDATE: &str = "pipeline.validate";
    /// Before Step I term extraction.
    pub const STEP1_EXTRACT: &str = "pipeline.step1";
    /// Inside Step I candidate extraction, at the entry of the
    /// per-document pattern scan (hit by both the parallel and the
    /// serial extraction path).
    pub const TERMEX_CANDIDATES: &str = "termex.candidates";
    /// Before Step II detector training.
    pub const STEP2_TRAIN: &str = "pipeline.step2.train";
    /// Before the Step III/IV inducer + linker construction.
    pub const STEP34_SETUP: &str = "pipeline.step34.setup";
    /// Before the per-term Steps II–IV fan-out.
    pub const FANOUT: &str = "pipeline.fanout";
    /// Inside the per-term Step II classification guard.
    pub const TERM_DETECT: &str = "term.detect";
    /// Inside the per-term Step III induction guard (supports
    /// [`corruption`](crate::corruption) of context vectors).
    pub const TERM_INDUCE: &str = "term.induce";
    /// Inside the per-term Step IV linkage guard.
    pub const TERM_LINK: &str = "term.link";
    /// Before final report assembly.
    pub const REPORT: &str = "pipeline.report";
    /// Inside the `boe-par` worker loop, before a worker starts its
    /// chunk (both the serial short-circuit and every spawned worker).
    pub const PAR_WORKER: &str = "par.worker";

    /// Every site, for matrix sweeps.
    pub const ALL: [&str; 11] = [
        VALIDATE,
        STEP1_EXTRACT,
        TERMEX_CANDIDATES,
        STEP2_TRAIN,
        STEP34_SETUP,
        FANOUT,
        TERM_DETECT,
        TERM_INDUCE,
        TERM_LINK,
        REPORT,
        PAR_WORKER,
    ];
}

/// What an armed injection site does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic with `"chaos: injected panic at <site>"`.
    Panic,
    /// Sleep for [`ChaosPlan::stall_ms`] milliseconds (to trip deadlines).
    Stall,
    /// Offer a deterministic [`Corruption`] verdict via [`corruption`];
    /// [`inject`] itself is a no-op in this mode.
    Corrupt,
}

impl FaultMode {
    /// All modes, for matrix sweeps.
    pub const ALL: [FaultMode; 3] = [FaultMode::Panic, FaultMode::Stall, FaultMode::Corrupt];

    /// Lower-case name as used in `BOE_CHAOS`.
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::Panic => "panic",
            FaultMode::Stall => "stall",
            FaultMode::Corrupt => "corrupt",
        }
    }
}

/// One armed fault: a target site plus a mode and its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The targeted injection site (one of [`sites`]).
    pub site: String,
    /// What to do when the site is hit.
    pub mode: FaultMode,
    /// Sleep duration for [`FaultMode::Stall`], in milliseconds.
    pub stall_ms: u64,
    /// Seed for the deterministic [`corruption`] decisions.
    pub seed: u64,
    /// When set, [`FaultMode::Stall`] fires only for hits whose key
    /// matches; `None` fires on every hit. Panic always fires on every
    /// hit; corruption is always keyed.
    pub key: Option<u64>,
}

impl ChaosPlan {
    /// A plan for `site` with `mode` and default parameters
    /// (50 ms stall, seed 0, fire on every hit).
    pub fn new(site: &str, mode: FaultMode) -> Self {
        ChaosPlan {
            site: site.to_owned(),
            mode,
            stall_ms: 50,
            seed: 0,
            key: None,
        }
    }
}

/// A deterministic corruption verdict for an intermediate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Replace the value's weights with NaN.
    MakeNan,
    /// Drop the value entirely (empty vector).
    MakeEmpty,
}

/// Fast-path state: 0 = undecided (env not parsed yet), 1 = disabled,
/// 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// The active plan. `None` inside the mutex means "explicitly disabled";
/// the mutex content is only consulted when `STATE == 2`.
static PLAN: Mutex<Option<ChaosPlan>> = Mutex::new(None);

/// Install a plan programmatically (tests, harnesses), replacing any
/// previous plan and overriding the `BOE_CHAOS` environment variable.
/// `None` disables injection entirely.
pub fn install(plan: Option<ChaosPlan>) {
    let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let enabled = plan.is_some();
    *guard = plan;
    STATE.store(if enabled { 2 } else { 1 }, Ordering::SeqCst);
}

/// Whether any injection plan is active (programmatic or `BOE_CHAOS`).
pub fn is_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => {
            init_from_env();
            STATE.load(Ordering::Relaxed) == 2
        }
        1 => false,
        _ => true,
    }
}

/// Parse `BOE_CHAOS` once and settle `STATE`. Malformed values disable
/// injection (printing one warning) rather than arming a garbled fault.
fn init_from_env() {
    let plan = match std::env::var("BOE_CHAOS") {
        Ok(v) => {
            let v = v.trim().to_owned();
            if v.is_empty() || v.eq_ignore_ascii_case("off") {
                None
            } else {
                match parse_env(&v) {
                    Ok(p) => Some(p),
                    Err(e) => {
                        eprintln!("boe-chaos: ignoring malformed BOE_CHAOS ({e})");
                        None
                    }
                }
            }
        }
        Err(_) => None,
    };
    // `install` also settles STATE, and a concurrent programmatic
    // install wins because it runs after this store.
    install(plan);
}

/// Parse `site=<name>,mode=<m>[,stall_ms=N][,seed=N][,key=N]`.
fn parse_env(v: &str) -> Result<ChaosPlan, String> {
    let mut site = None;
    let mut mode = None;
    let mut stall_ms = 50u64;
    let mut seed = 0u64;
    let mut key = None;
    for part in v.split(',') {
        let (k, val) = part
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
        match k.trim() {
            "site" => site = Some(val.trim().to_owned()),
            "mode" => {
                mode = Some(match val.trim() {
                    "panic" => FaultMode::Panic,
                    "stall" => FaultMode::Stall,
                    "corrupt" => FaultMode::Corrupt,
                    other => return Err(format!("unknown mode {other:?}")),
                })
            }
            "stall_ms" => stall_ms = val.trim().parse().map_err(|e| format!("stall_ms: {e}"))?,
            "seed" => seed = val.trim().parse().map_err(|e| format!("seed: {e}"))?,
            "key" => key = Some(val.trim().parse().map_err(|e| format!("key: {e}"))?),
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    Ok(ChaosPlan {
        site: site.ok_or("missing site=")?,
        mode: mode.ok_or("missing mode=")?,
        stall_ms,
        seed,
        key,
    })
}

/// Snapshot the plan if it targets `site`.
fn plan_for(site: &str) -> Option<ChaosPlan> {
    if !is_enabled() {
        return None;
    }
    let guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().filter(|p| p.site == site).cloned()
}

/// Hit an injection site with the default key 0.
///
/// Panics or stalls when an armed plan targets `site`; a no-op (one
/// relaxed atomic load) otherwise.
pub fn inject(site: &str) {
    inject_keyed(site, 0);
}

/// Hit an injection site with a caller-supplied key (e.g. a chunk start
/// index or a term hash). Panic fires on every hit; stall fires when the
/// plan's key filter matches (or is absent).
pub fn inject_keyed(site: &str, key: u64) {
    let Some(plan) = plan_for(site) else {
        return;
    };
    match plan.mode {
        FaultMode::Panic => panic!("chaos: injected panic at {site}"),
        FaultMode::Stall => {
            if plan.key.is_none_or(|k| k == key) {
                std::thread::sleep(std::time::Duration::from_millis(plan.stall_ms));
            }
        }
        FaultMode::Corrupt => {}
    }
}

/// A stable 64-bit key for a string (FNV-1a), for keying injection and
/// corruption by term surface rather than by call order.
pub fn key_for(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001B3);
    }
    h
}

/// The deterministic corruption verdict for `(site, key)` under the
/// armed plan, if any. The decision depends only on the plan seed, the
/// site name and the key — not on call order or thread count — so a
/// corrupted run is bit-identical at any parallelism. Roughly half of
/// all keys are corrupted; the rest pass through untouched.
pub fn corruption(site: &str, key: u64) -> Option<Corruption> {
    let plan = plan_for(site)?;
    if plan.mode != FaultMode::Corrupt {
        return None;
    }
    let mut h = plan.seed;
    for b in site.bytes() {
        h = h.wrapping_mul(0x100000001B3).wrapping_add(u64::from(b));
    }
    let mut rng = boe_rng::StdRng::seed_from_u64(h ^ key);
    match rng.next_u64() % 4 {
        0 => Some(Corruption::MakeNan),
        1 => Some(Corruption::MakeEmpty),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Plan state is process-global; serialize the tests that touch it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_by_default_and_after_uninstall() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(None);
        assert!(!is_enabled());
        inject(sites::VALIDATE); // must be a no-op
        assert!(corruption(sites::TERM_INDUCE, 7).is_none());
    }

    #[test]
    fn panic_mode_panics_with_site_name() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Some(ChaosPlan::new(sites::STEP1_EXTRACT, FaultMode::Panic)));
        let caught = std::panic::catch_unwind(|| inject(sites::STEP1_EXTRACT));
        install(None);
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("pipeline.step1"), "{msg}");
    }

    #[test]
    fn other_sites_are_untouched() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Some(ChaosPlan::new(sites::STEP1_EXTRACT, FaultMode::Panic)));
        inject(sites::STEP2_TRAIN); // different site: no panic
        install(None);
    }

    #[test]
    fn stall_respects_key_filter() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut plan = ChaosPlan::new(sites::PAR_WORKER, FaultMode::Stall);
        plan.stall_ms = 30;
        plan.key = Some(0);
        install(Some(plan));
        let t0 = std::time::Instant::now();
        inject_keyed(sites::PAR_WORKER, 1); // filtered out: fast
        assert!(t0.elapsed().as_millis() < 25);
        let t0 = std::time::Instant::now();
        inject_keyed(sites::PAR_WORKER, 0); // matches: sleeps
        assert!(t0.elapsed().as_millis() >= 25);
        install(None);
    }

    #[test]
    fn corruption_is_deterministic_and_keyed() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut plan = ChaosPlan::new(sites::TERM_INDUCE, FaultMode::Corrupt);
        plan.seed = 42;
        install(Some(plan));
        let verdicts: Vec<Option<Corruption>> =
            (0..64).map(|k| corruption(sites::TERM_INDUCE, k)).collect();
        // Same plan, same keys → same verdicts.
        for (k, v) in verdicts.iter().enumerate() {
            assert_eq!(*v, corruption(sites::TERM_INDUCE, k as u64));
        }
        // Some keys corrupted, some clean: the hit rate is ~50%.
        assert!(verdicts.iter().any(Option::is_some));
        assert!(verdicts.iter().any(Option::is_none));
        // Wrong site never corrupts; inject is a no-op in corrupt mode.
        assert!(corruption(sites::TERM_LINK, 0).is_none());
        inject(sites::TERM_INDUCE);
        install(None);
    }

    #[test]
    fn env_grammar_parses_and_rejects() {
        let p = parse_env("site=par.worker,mode=stall,stall_ms=10,seed=7,key=3").expect("valid");
        assert_eq!(p.site, "par.worker");
        assert_eq!(p.mode, FaultMode::Stall);
        assert_eq!(p.stall_ms, 10);
        assert_eq!(p.seed, 7);
        assert_eq!(p.key, Some(3));
        assert!(parse_env("mode=panic").is_err(), "missing site");
        assert!(parse_env("site=x").is_err(), "missing mode");
        assert!(parse_env("site=x,mode=explode").is_err(), "unknown mode");
        assert!(parse_env("gibberish").is_err());
    }
}
