//! Cluster labelling (Step III-b).
//!
//! "For each cluster it selects the most important features, which
//! represent the induced concept": the top-weighted dimensions of each
//! cluster centroid, i.e. the context words that characterize the sense.

use crate::solution::ClusterSolution;
use boe_corpus::SparseVector;

/// The `top_n` most important features per cluster, as `(dimension,
/// centroid weight)` sorted by decreasing weight (dimension id breaks
/// ties).
pub fn top_features(
    solution: &ClusterSolution,
    vectors: &[SparseVector],
    top_n: usize,
) -> Vec<Vec<(u32, f64)>> {
    solution
        .centroids(vectors)
        .into_iter()
        .map(|centroid| {
            let mut entries: Vec<(u32, f64)> = centroid.iter().collect();
            entries.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            entries.truncate(top_n);
            entries
        })
        .collect()
}

/// An induced concept: the representative features of one sense cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct InducedConcept {
    /// Cluster index within the solution.
    pub cluster: usize,
    /// Number of supporting contexts.
    pub support: usize,
    /// Top features `(dimension, weight)`.
    pub features: Vec<(u32, f64)>,
}

/// Build [`InducedConcept`]s for every cluster of a solution.
pub fn induce_concepts(
    solution: &ClusterSolution,
    vectors: &[SparseVector],
    top_n: usize,
) -> Vec<InducedConcept> {
    let sizes = solution.sizes();
    top_features(solution, vectors, top_n)
        .into_iter()
        .enumerate()
        .map(|(cluster, features)| InducedConcept {
            cluster,
            support: sizes[cluster],
            features,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_features_are_cluster_specific() {
        let vs = vec![
            SparseVector::from_pairs([(1, 5.0), (9, 0.1)]),
            SparseVector::from_pairs([(1, 4.0), (8, 0.1)]),
            SparseVector::from_pairs([(2, 5.0)]),
        ];
        let sol = ClusterSolution::new(vec![0, 0, 1], 2);
        let feats = top_features(&sol, &vs, 1);
        assert_eq!(feats[0][0].0, 1);
        assert_eq!(feats[1][0].0, 2);
    }

    #[test]
    fn features_sorted_by_weight() {
        let vs = vec![SparseVector::from_pairs([(0, 1.0), (1, 3.0), (2, 2.0)])];
        let sol = ClusterSolution::new(vec![0], 1);
        let feats = top_features(&sol, &vs, 3);
        let dims: Vec<u32> = feats[0].iter().map(|(d, _)| *d).collect();
        assert_eq!(dims, vec![1, 2, 0]);
    }

    #[test]
    fn top_n_truncates() {
        let vs = vec![SparseVector::from_pairs([(0, 1.0), (1, 3.0), (2, 2.0)])];
        let sol = ClusterSolution::new(vec![0], 1);
        assert_eq!(top_features(&sol, &vs, 2)[0].len(), 2);
    }

    #[test]
    fn induced_concepts_carry_support() {
        let vs = vec![
            SparseVector::from_pairs([(1, 1.0)]),
            SparseVector::from_pairs([(1, 1.0)]),
            SparseVector::from_pairs([(2, 1.0)]),
        ];
        let sol = ClusterSolution::new(vec![0, 0, 1], 2);
        let concepts = induce_concepts(&sol, &vs, 5);
        assert_eq!(concepts.len(), 2);
        assert_eq!(concepts[0].support, 2);
        assert_eq!(concepts[1].support, 1);
        assert_eq!(concepts[1].features[0].0, 2);
    }
}
