//! kNN-graph partitioning — the `graph` method.
//!
//! CLUTO's graph method clusters the kNN similarity graph of the objects
//! rather than the objects directly. We build the mutual-kNN graph with
//! cosine edge weights and agglomeratively merge the cluster pair with
//! the highest *average connecting edge weight* until `k` clusters
//! remain; disconnected leftovers merge last by composite similarity.
//! Inter-cluster edge totals are maintained incrementally, so the whole
//! merge phase is O(n³) worst case (n ≤ a few hundred in Step III).

use crate::solution::ClusterSolution;
use boe_corpus::SparseVector;

/// Cluster unit vectors into `k` clusters via the kNN graph
/// (`neighbours` = list size per object).
pub fn knn_graph_partition(unit: &[SparseVector], k: usize, neighbours: usize) -> ClusterSolution {
    let n = unit.len();
    assert!(k >= 1 && k <= n);
    if k == n {
        return ClusterSolution::new((0..n).collect(), n);
    }
    let m = neighbours.min(n.saturating_sub(1)).max(1);
    // Pairwise similarities once (flat, parallel, each dot computed a
    // single time), then per-object kNN lists in parallel.
    let sim = crate::similarity::similarity_matrix(unit);
    let knn: Vec<Vec<(usize, f64)>> = boe_par::par_map_indexed_min(n, 32, |i| {
        let mut sims: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, sim.get(i, j)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(m);
        sims
    });
    // kNN edges (directed), symmetrized by union, as dense matrices of
    // inter-cluster edge weight totals and edge counts.
    let mut weight = vec![vec![0.0f64; n]; n];
    let mut count = vec![vec![0u32; n]; n];
    for (i, sims) in knn.iter().enumerate() {
        for &(j, s) in sims {
            if s > 0.0 && count[i][j] == 0 {
                weight[i][j] = s;
                weight[j][i] = s;
                count[i][j] = 1;
                count[j][i] = 1;
            }
        }
    }
    // Cluster state: representative index per object, composites for the
    // disconnected fallback.
    let mut active = vec![true; n];
    let mut label: Vec<usize> = (0..n).collect();
    let mut composites: Vec<SparseVector> = unit.to_vec();
    let mut clusters = n;
    while clusters > k {
        // Best connected pair by average edge weight.
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..n {
            if !active[a] {
                continue;
            }
            for b in (a + 1)..n {
                if !active[b] || count[a][b] == 0 {
                    continue;
                }
                let score = weight[a][b] / f64::from(count[a][b]);
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((a, b, score));
                }
            }
        }
        let (a, b) = match best {
            Some((a, b, _)) => (a, b),
            None => fallback_pair(&composites, &active),
        };
        // Merge b into a.
        for c in 0..n {
            if c == a || c == b || !active[c] {
                continue;
            }
            weight[a][c] += weight[b][c];
            weight[c][a] = weight[a][c];
            count[a][c] += count[b][c];
            count[c][a] = count[a][c];
        }
        let moved = std::mem::take(&mut composites[b]);
        composites[a].add_assign(&moved);
        active[b] = false;
        for l in label.iter_mut() {
            if *l == b {
                *l = a;
            }
        }
        clusters -= 1;
    }
    // Densify labels.
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    let assignments: Vec<usize> = label
        .iter()
        .map(|&l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect();
    ClusterSolution::new(assignments, k)
}

/// When the kNN graph leaves clusters disconnected, merge the pair with
/// the most similar composites.
fn fallback_pair(composites: &[SparseVector], active: &[bool]) -> (usize, usize) {
    let reps: Vec<usize> = (0..active.len()).filter(|&i| active[i]).collect();
    let mut best = (reps[0], reps[1]);
    let mut best_s = f64::NEG_INFINITY;
    for (i, &a) in reps.iter().enumerate() {
        for &b in reps.iter().skip(i + 1) {
            let s = composites[a].cosine(&composites[b]);
            if s > best_s {
                best_s = s;
                best = (a, b);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, k: usize) -> (Vec<SparseVector>, Vec<usize>) {
        let mut vs = Vec::new();
        let mut gold = Vec::new();
        for c in 0..k as u32 {
            for i in 0..per as u32 {
                let v = SparseVector::from_pairs([(c * 100, 10.0), (c * 100 + 1 + i, 1.0)]);
                vs.push(v.normalized());
                gold.push(c as usize);
            }
        }
        (vs, gold)
    }

    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let (mut agree, mut total) = (0, 0);
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_blobs() {
        let (vs, gold) = blobs(6, 3);
        let sol = knn_graph_partition(&vs, 3, 5);
        assert!(rand_index(sol.assignments(), &gold) > 0.95);
    }

    #[test]
    fn handles_disconnected_graph() {
        // Orthogonal singleton-ish blobs with tiny kNN lists still merge
        // down to k via the fallback.
        let (vs, _) = blobs(2, 4);
        let sol = knn_graph_partition(&vs, 2, 1);
        assert_eq!(sol.k(), 2);
        assert!(sol.sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn k_extremes() {
        let (vs, _) = blobs(3, 2);
        assert_eq!(knn_graph_partition(&vs, 1, 3).sizes(), vec![6]);
        assert_eq!(knn_graph_partition(&vs, 6, 3).sizes(), vec![1; 6]);
    }

    #[test]
    fn deterministic() {
        let (vs, _) = blobs(4, 3);
        let a = knn_graph_partition(&vs, 3, 4);
        let b = knn_graph_partition(&vs, 3, 4);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn merge_bookkeeping_matches_bruteforce_on_mixed_data() {
        // Three loose topical groups with shared dimensions: the
        // incremental inter-cluster totals must keep producing valid
        // partitions (exact recovery not required, invariants are).
        let mut vs = Vec::new();
        for c in 0..3u32 {
            for i in 0..7u32 {
                vs.push(
                    SparseVector::from_pairs([
                        (c * 10, 3.0),
                        (c * 10 + 1 + (i % 3), 1.0),
                        (99, 0.5), // shared background dimension
                    ])
                    .normalized(),
                );
            }
        }
        for k in 1..=6 {
            let sol = knn_graph_partition(&vs, k, 6);
            assert_eq!(sol.k(), k);
            assert_eq!(sol.sizes().iter().sum::<usize>(), 21);
            assert!(sol.sizes().iter().all(|&s| s > 0));
        }
    }
}
